//! The multicore network processor: several cores with per-core execution
//! observers, round-robin packet dispatch, and the paper's recovery policy
//! (detect → drop packet → reset core → continue with the next packet),
//! optionally escalated by the [`crate::supervisor`] — the structural
//! strike ladder (redeploy after repeated recoveries, quarantine after
//! repeated redeploys) plus the adaptive graded response table (alert →
//! throttle a core's dispatch share → quarantine → zeroize its wrapped key
//! and latch NP lockdown), with timed parole restoring throttled and
//! quarantined cores after clean batches and a bounded per-core forensic
//! ring flushed as `supervisor.forensic` events on escalation.

use crate::core::{Core, RETIRE_BLOCK};
use crate::cpu::{ExecutionObserver, NullObserver};
use crate::engine::{
    dispatch_slots, shard_spans, steal_plan, IngressQueues, ShardStats, WorkerPool,
};
use crate::runtime::{HaltReason, PacketOutcome};
use crate::supervisor::{CoreHealth, Parole, SupervisorAction, SupervisorPolicy};
use sdmmon_obs::trace::{self, TraceContext};
use sdmmon_obs::{metrics, Counter, Event, EventBus, Gauge, Hist};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Aggregate counters over all packets the NP has processed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NpStats {
    /// Packets handed to a core.
    pub processed: u64,
    /// Packets forwarded to an output port.
    pub forwarded: u64,
    /// Packets dropped (policy drops and recovery drops alike).
    pub dropped: u64,
    /// Runs stopped by the execution observer (hardware monitor).
    pub violations: u64,
    /// Runs stopped by a processor trap.
    pub faults: u64,
    /// Core resets performed as recovery.
    pub recoveries: u64,
    /// Supervisor redeploys (last-known-good re-flashes) across all cores.
    pub redeploys: u64,
    /// Cores currently quarantined out of dispatch.
    pub quarantined_cores: u64,
}

impl fmt::Display for NpStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "processed {} / forwarded {} / dropped {} / violations {} / faults {} / \
             recoveries {} / redeploys {} / quarantined {}",
            self.processed,
            self.forwarded,
            self.dropped,
            self.violations,
            self.faults,
            self.recoveries,
            self.redeploys,
            self.quarantined_cores
        )
    }
}

impl NpStats {
    /// Renders the counters as one line of JSON with a fixed key order —
    /// the shared formatting `sdmmon stats` and `perf_report` print
    /// (hand-rolled; the workspace has no serialization dependency).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"processed\":{},\"forwarded\":{},\"dropped\":{},\"violations\":{},\
             \"faults\":{},\"recoveries\":{},\"redeploys\":{},\"quarantined_cores\":{}}}",
            self.processed,
            self.forwarded,
            self.dropped,
            self.violations,
            self.faults,
            self.recoveries,
            self.redeploys,
            self.quarantined_cores
        )
    }

    /// Folds one packet outcome into the counters (recovery is implied by
    /// any unclean halt — see [`Slot::run`]).
    fn record(&mut self, outcome: &PacketOutcome) {
        self.processed += 1;
        match outcome.halt {
            HaltReason::Completed => {}
            HaltReason::MonitorViolation => self.violations += 1,
            HaltReason::Fault(_) | HaltReason::StepLimit => self.faults += 1,
        }
        if outcome.halt.is_clean() {
            match outcome.verdict {
                crate::runtime::Verdict::Drop => self.dropped += 1,
                crate::runtime::Verdict::Forward(_) => self.forwarded += 1,
            }
        } else {
            self.dropped += 1;
            self.recoveries += 1;
        }
    }
}

/// One settled packet remembered by the forensic ring.
#[derive(Debug, Clone, Copy)]
struct ForensicEntry {
    /// The packet's batch-wide ordinal (its event clock).
    at: u64,
    /// How the run halted: `clean`, `violation`, or `fault`.
    halt: &'static str,
    /// Retired instructions.
    steps: u64,
}

/// One settled packet remembered by the flight recorder for retroactive
/// trace promotion (see [`sdmmon_obs::trace`]). Unlike [`ForensicEntry`]
/// it is keyed by flow, so promotion lifts exactly the flagged flow's
/// recent packets out of the ring.
#[derive(Debug, Clone, Copy)]
struct FlightRecord {
    /// The packet's batch-wide ordinal (its event clock).
    at: u64,
    /// Flow-affinity hash — the promotion key.
    flow: u64,
    /// Position in the core's run queue (the queueing cost).
    delay: u64,
    /// Retired instructions.
    steps: u64,
    /// How the run halted: `clean`, `violation`, or `fault`.
    halt: &'static str,
}

/// Halt label used by forensic events.
fn halt_label(halt: &HaltReason) -> &'static str {
    match halt {
        HaltReason::Completed => "clean",
        HaltReason::MonitorViolation => "violation",
        HaltReason::Fault(_) | HaltReason::StepLimit => "fault",
    }
}

/// One core, its attached observer, its supervisor ledger, and the bounded
/// forensic ring of recently settled packets.
struct Slot {
    core: Core,
    observer: Box<dyn ExecutionObserver + Send>,
    health: CoreHealth,
    /// Pre-detection window, capacity `AdaptiveConfig::forensic_window`.
    /// Touched only by the core's owning thread, so the captured window is
    /// identical at every shard count.
    forensics: VecDeque<ForensicEntry>,
    /// Flight recorder: recent *unsampled* packet records, capacity
    /// [`TraceContext::flight_window`]. Same single-owner discipline as
    /// `forensics`, so promotions replay identically at every shard count.
    flight: VecDeque<FlightRecord>,
}

impl Slot {
    /// Runs one packet on this core, applying the recovery policy (reset
    /// after any unclean halt) and the supervisor ladder, but not touching
    /// the NP-wide stats. This is the reference per-instruction-dispatch
    /// path (one virtual `observe` call per retired instruction); the batch
    /// engine goes through [`Slot::run_fused`] instead.
    fn run(
        &mut self,
        packet: &[u8],
        policy: &SupervisorPolicy,
    ) -> (PacketOutcome, Option<SupervisorAction>) {
        let outcome = self.core.process_packet(packet, self.observer.as_mut());
        self.settle(outcome, policy)
    }

    /// Like [`Slot::run`] but dispatches the whole packet through
    /// [`ExecutionObserver::run_packet`]: one virtual call per packet, so
    /// observers with a monomorphized fast path (the hardware monitor) run
    /// it. Outcomes are identical to [`Slot::run`] by the trait's contract;
    /// the determinism tests and testkit differentials pin that.
    fn run_fused(
        &mut self,
        packet: &[u8],
        policy: &SupervisorPolicy,
    ) -> (PacketOutcome, Option<SupervisorAction>) {
        let outcome = self.observer.run_packet(&mut self.core, packet);
        self.settle(outcome, policy)
    }

    /// Shared post-packet bookkeeping for both dispatch paths. Returns the
    /// supervisor's verdict on an unclean halt (`None` for clean packets)
    /// so the NP can turn ladder escalations into events; the process-wide
    /// metrics are recorded here — a few relaxed atomic adds per packet,
    /// all commutative, so worker-thread interleaving cannot perturb a
    /// snapshot.
    fn settle(
        &mut self,
        outcome: PacketOutcome,
        policy: &SupervisorPolicy,
    ) -> (PacketOutcome, Option<SupervisorAction>) {
        let m = metrics();
        m.inc(Counter::NpPackets);
        m.add(Counter::NpInstructionsRetired, outcome.steps);
        if outcome.halt.is_clean() {
            self.health.record_clean(policy);
            return (outcome, None);
        }
        if matches!(outcome.halt, HaltReason::MonitorViolation) {
            m.inc(Counter::NpViolations);
            m.observe(Hist::DetectionLatencySteps, outcome.steps);
        } else {
            m.inc(Counter::NpFaults);
        }
        m.inc(Counter::NpRecoveries);
        // Recovery: drop the packet and reset the core so the next
        // packet starts from a pristine image. A supervisor-ordered
        // redeploy re-flashes the same last-known-good image — here
        // `reset()` already restores exactly that, so escalation only
        // changes the book-keeping (and, at the top, quarantines).
        self.core.reset();
        let action = self.health.record_unclean(policy, outcome.steps);
        match action {
            SupervisorAction::Recover => {}
            SupervisorAction::Alert => m.inc(Counter::NpAlerts),
            SupervisorAction::Throttle => m.inc(Counter::NpThrottles),
            SupervisorAction::Redeploy => m.inc(Counter::NpRedeploys),
            SupervisorAction::Quarantine => m.inc(Counter::NpQuarantines),
            SupervisorAction::Zeroize => m.inc(Counter::NpZeroizes),
        }
        (outcome, Some(action))
    }

    /// Remembers one settled packet in the forensic ring (no-op when the
    /// window is zero).
    fn note_forensic(&mut self, at: u64, outcome: &PacketOutcome, window: usize) {
        if window == 0 {
            return;
        }
        while self.forensics.len() >= window {
            self.forensics.pop_front();
        }
        self.forensics.push_back(ForensicEntry {
            at,
            halt: halt_label(&outcome.halt),
            steps: outcome.steps,
        });
    }

    /// Drains the forensic ring into `supervisor.forensic` events — the
    /// pre-detection window, oldest first, all stamped with the escalating
    /// packet's clock (their own ordinals ride in the `at` field, so the
    /// clock-sorted merge keeps the flush contiguous at every shard
    /// count).
    fn flush_forensics(&mut self, clock: u64, core: usize, events: &mut Vec<Event>) {
        for (index, entry) in self.forensics.drain(..).enumerate() {
            events.push(
                Event::new("supervisor.forensic", clock)
                    .field("core", core)
                    .field("window_index", index)
                    .field("at", entry.at)
                    .field("halt", entry.halt)
                    .field("steps", entry.steps),
            );
        }
    }

    /// Per-packet causal record for trace-enabled runs. Sampled flows
    /// emit `span.dispatch` + `span.verify` directly (and `span.respond`
    /// when the supervisor escalates past plain recovery); unsampled
    /// flows are remembered in the bounded flight ring and retroactively
    /// promoted to `supervisor.flight` events — stamped at the detection
    /// clock, own ordinals riding in `at`, mirroring the forensic flush —
    /// the moment the monitor flags the flow or the supervisor escalates
    /// on it. Sampling, ids, and ring contents are pure functions of
    /// `(seed, flow, packet ordinal)`, so the emitted spans are identical
    /// at every shard count.
    #[allow(clippy::too_many_arguments)]
    fn note_trace(
        &mut self,
        tc: &TraceContext,
        packet: &[u8],
        clock: u64,
        core: usize,
        qpos: u64,
        outcome: &PacketOutcome,
        action: Option<SupervisorAction>,
        events: &mut Vec<Event>,
    ) {
        let flow = flow_hash(packet);
        let trace_id = tc.trace_id(flow);
        let halt = halt_label(&outcome.halt);
        let escalated = action.is_some_and(|a| a > SupervisorAction::Recover);
        let m = metrics();
        if tc.sampled(flow) {
            m.add(Counter::TraceSpans, 2);
            events.push(
                Event::new(trace::KIND_SPAN_DISPATCH, clock)
                    .field("trace", trace_id)
                    .field("core", core)
                    .field("qpos", qpos),
            );
            events.push(
                Event::new(trace::KIND_SPAN_VERIFY, clock)
                    .field("trace", trace_id)
                    .field("core", core)
                    .field("steps", outcome.steps)
                    .field("blocks", outcome.steps / RETIRE_BLOCK as u64)
                    .field("halt", halt),
            );
        } else if tc.flight_window > 0 {
            while self.flight.len() >= tc.flight_window {
                self.flight.pop_front();
            }
            self.flight.push_back(FlightRecord {
                at: clock,
                flow,
                delay: qpos,
                steps: outcome.steps,
                halt,
            });
            if !outcome.halt.is_clean() || escalated {
                // Promote the flagged flow's remembered packets
                // (including this one) out of the ring.
                m.inc(Counter::TraceFlightPromotions);
                let mut promoted: Vec<FlightRecord> = Vec::new();
                self.flight.retain(|r| {
                    if r.flow == flow {
                        promoted.push(*r);
                        false
                    } else {
                        true
                    }
                });
                for (index, r) in promoted.iter().enumerate() {
                    events.push(
                        Event::new(trace::KIND_FLIGHT, clock)
                            .field("trace", trace_id)
                            .field("core", core)
                            .field("flow", r.flow)
                            .field("window_index", index)
                            .field("at", r.at)
                            .field("delay", r.delay)
                            .field("steps", r.steps)
                            .field("halt", r.halt),
                    );
                }
            }
        }
        if escalated {
            let action = action.expect("escalated implies an action");
            m.inc(Counter::TraceSpans);
            events.push(
                Event::new(trace::KIND_SPAN_RESPOND, clock)
                    .field("trace", trace_id)
                    .field("core", core)
                    .field("action", action.name())
                    .field("level", self.health.threat.name()),
            );
        }
    }
}

impl fmt::Debug for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Slot")
            .field("core", &self.core)
            .field("observer", &"<dyn ExecutionObserver>")
            .finish()
    }
}

/// A multiprocessor network processor, as in the paper's MPSoC model.
///
/// # Examples
///
/// ```
/// use sdmmon_npu::{np::NetworkProcessor, programs, runtime::Verdict};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = programs::ipv4_forward()?;
/// let mut np = NetworkProcessor::new(4);
/// np.install_all(&program.to_bytes(), program.base, |_core| {
///     Box::new(sdmmon_npu::cpu::NullObserver)
/// });
/// let packet = programs::testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 5], 64, b"x");
/// let (core_id, outcome) = np.process(&packet);
/// assert_eq!(core_id, 0);
/// assert_eq!(outcome.verdict, Verdict::Forward(5));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetworkProcessor {
    slots: Vec<Slot>,
    next: usize,
    stats: NpStats,
    policy: SupervisorPolicy,
    /// Desired batch-engine shard count (clamped to the core count at
    /// dispatch time). One shard executes inline on the caller thread.
    shards: usize,
    /// Persistent shard workers, spawned lazily at the first multi-shard
    /// batch and kept across batches (the PR 1 regression was spawning
    /// per batch). `None` until then, or while `shards == 1`.
    pool: Option<WorkerPool>,
    /// Cache-padded per-shard outcome counters, one per pool worker.
    shard_stats: Vec<ShardStats>,
    /// Optional structured-event sink (see [`sdmmon_obs::EventBus`]).
    /// `None` — the default — is the no-op sink: no event is constructed
    /// anywhere on the packet path.
    bus: Option<Arc<EventBus>>,
    /// Optional causal span/trace context (see [`sdmmon_obs::trace`]).
    /// Only consulted while a bus is attached; `Copy`, so the batch and
    /// stream workers carry it by value.
    trace: Option<TraceContext>,
    /// Latched when any core receives a zeroize order (threat Critical):
    /// the control-plane signal that the NP should be pulled from service.
    /// Dispatch itself keeps working on the surviving cores — honoring the
    /// lockdown is the caller's decision — and an operator re-install of
    /// the zeroized core clears it.
    lockdown: bool,
}

/// Builds the event for one supervisor escalation. Plain recoveries
/// (strikes) are metrics-only — they fire on every unclean halt and would
/// swamp the stream; the *transitions* (graded responses and ladder steps)
/// are the events. Every event carries the threat level and score that
/// drove it (`level` is `none` when the structural ladder escalated on its
/// own).
fn supervisor_event(
    action: SupervisorAction,
    clock: u64,
    core: usize,
    health: &CoreHealth,
) -> Option<Event> {
    let kind = match action {
        SupervisorAction::Recover => return None,
        SupervisorAction::Alert => "supervisor.alert",
        SupervisorAction::Throttle => "supervisor.throttle",
        SupervisorAction::Redeploy => "supervisor.redeploy",
        SupervisorAction::Quarantine => "supervisor.quarantine",
        SupervisorAction::Zeroize => "supervisor.zeroize",
    };
    Some(
        Event::new(kind, clock)
            .field("core", core)
            .field("redeploys", health.redeploys)
            .field("unclean_halts", health.unclean_halts)
            .field("level", health.threat.name())
            .field("score", health.threat_score()),
    )
}

impl NetworkProcessor {
    /// Creates an NP with `cores` unprogrammed cores, null observers, and
    /// the paper's original reset-only recovery
    /// ([`SupervisorPolicy::never`] — no redeploy, no quarantine). Use
    /// [`NetworkProcessor::with_policy`] to enable the escalation ladder.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: usize) -> NetworkProcessor {
        NetworkProcessor::with_policy(cores, SupervisorPolicy::never())
    }

    /// Creates an NP whose recovery escalates per `policy` (see
    /// [`crate::supervisor`]).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn with_policy(cores: usize, policy: SupervisorPolicy) -> NetworkProcessor {
        assert!(cores > 0, "a network processor needs at least one core");
        let slots = (0..cores)
            .map(|_| Slot {
                core: Core::new(),
                observer: Box::new(NullObserver) as Box<dyn ExecutionObserver + Send>,
                health: CoreHealth::default(),
                forensics: VecDeque::new(),
                flight: VecDeque::new(),
            })
            .collect();
        NetworkProcessor {
            slots,
            next: 0,
            stats: NpStats::default(),
            policy,
            shards: default_shards(cores),
            pool: None,
            shard_stats: Vec::new(),
            bus: None,
            trace: None,
            lockdown: false,
        }
    }

    /// Attaches (or detaches, with `None`) a structured-event sink. Events
    /// carry the NP's packet ordinal as their logical clock; on the batch
    /// paths they are buffered per shard and merged in packet order, so
    /// the stream is byte-identical per workload for *any* shard count.
    pub fn set_event_bus(&mut self, bus: Option<Arc<EventBus>>) {
        self.bus = bus;
    }

    /// Attaches (or detaches, with `None`) the deterministic span/trace
    /// layer. Spans are emitted only while an event bus is attached;
    /// sampling and id derivation are pure functions of `(seed, flow)` —
    /// see [`TraceContext`] — so the span stream is byte-identical at any
    /// shard count and across the sharded / serial-oracle paths.
    pub fn set_trace(&mut self, trace: Option<TraceContext>) {
        self.trace = trace;
    }

    /// The active trace context, if any.
    pub fn trace_context(&self) -> Option<TraceContext> {
        self.trace
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.slots.len()
    }

    /// The supervisor policy in force.
    pub fn policy(&self) -> SupervisorPolicy {
        self.policy
    }

    /// Replaces the supervisor policy. Existing per-core ledgers stand —
    /// the new thresholds apply from the next packet on.
    pub fn set_policy(&mut self, policy: SupervisorPolicy) {
        self.policy = policy;
    }

    /// The supervisor ledger of one core.
    pub fn core_health(&self, index: usize) -> CoreHealth {
        self.slots[index].health
    }

    /// Whether a core is quarantined out of dispatch.
    pub fn is_quarantined(&self, index: usize) -> bool {
        self.slots[index].health.quarantined
    }

    /// Whether a core's dispatch share is currently halved by the graded
    /// supervisor.
    pub fn is_throttled(&self, index: usize) -> bool {
        self.slots[index].health.throttled
    }

    /// Whether the NP is in lockdown: some core's threat reached Critical
    /// and its key-zeroize order was issued. Dispatch keeps degraded
    /// service on the surviving cores; pulling the NP from the data plane
    /// is the caller's (fleet controller's) decision.
    pub fn is_locked_down(&self) -> bool {
        self.lockdown
    }

    /// Drains outstanding zeroize orders: core indices whose threat
    /// reached Critical since the last call. The control plane (e.g.
    /// `RouterDevice::process_batch` in `sdmmon-core`) destroys each
    /// core's wrapped key material and calls
    /// [`NetworkProcessor::decommission`]; each order is returned once.
    pub fn take_zeroize_orders(&mut self) -> Vec<usize> {
        let mut orders = Vec::new();
        for (index, slot) in self.slots.iter_mut().enumerate() {
            if slot.health.zeroize_ordered && !slot.health.zeroize_taken {
                slot.health.zeroize_taken = true;
                orders.push(index);
            }
        }
        orders
    }

    /// Wipes a zeroized core down to an unprogrammed state: fresh core,
    /// null observer, forensic ring cleared. The supervisor ledger stands
    /// (still quarantined, zeroize on record) so the core stays out of
    /// dispatch until an operator re-installs a bundle on it.
    pub fn decommission(&mut self, core: usize) {
        let slot = &mut self.slots[core];
        slot.core = Core::new();
        slot.observer = Box::new(NullObserver);
        slot.forensics.clear();
        slot.health.quarantined = true;
    }

    /// Indices of the cores still in dispatch (not quarantined), in order.
    pub fn active_cores(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.health.quarantined)
            .map(|(i, _)| i)
            .collect()
    }

    /// Quarantines a core by operator decree (the harness hook; the
    /// supervisor normally quarantines through the ladder). Reversed by
    /// installing a bundle on the core.
    pub fn quarantine_core(&mut self, index: usize) {
        self.slots[index].health.quarantined = true;
    }

    /// Installs a program and observer on one core (what the SDMMon control
    /// processor does after verifying a package for that core). Installing
    /// rehabilitates the core: its supervisor ledger — strikes, redeploys,
    /// quarantine — is wiped and it rejoins dispatch.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn install(
        &mut self,
        core: usize,
        image: &[u8],
        base: u32,
        observer: Box<dyn ExecutionObserver + Send>,
    ) {
        let slot = &mut self.slots[core];
        slot.core.install(image, base);
        slot.observer = observer;
        slot.health.reinstated();
        slot.forensics.clear();
        // Lockdown lifts once no core has an outstanding zeroize on
        // record — the operator vouched for the re-installed core.
        self.lockdown = self.slots.iter().any(|s| s.health.zeroize_ordered);
    }

    /// Installs the same program on every core, with a per-core observer
    /// built by `make_observer` (each core gets its *own* monitor instance,
    /// and — in the SDMMon design — its own hash parameter).
    pub fn install_all(
        &mut self,
        image: &[u8],
        base: u32,
        mut make_observer: impl FnMut(usize) -> Box<dyn ExecutionObserver + Send>,
    ) {
        for i in 0..self.slots.len() {
            self.install(i, image, base, make_observer(i));
        }
    }

    /// Immutable access to a core (for inspection in tests/benches).
    pub fn core(&self, index: usize) -> &Core {
        &self.slots[index].core
    }

    /// Mutable access to a core — the hook the fault-injection harness
    /// uses to corrupt instruction memory of a live core.
    pub fn core_mut(&mut self, index: usize) -> &mut Core {
        &mut self.slots[index].core
    }

    /// Forces a recovery reset of one core outside the normal violation
    /// path (models an operator-commanded or fault-injected mid-run reset).
    /// Counted in [`NpStats::recoveries`] like any other recovery cycle.
    pub fn reset_core(&mut self, index: usize) {
        self.slots[index].core.reset();
        self.stats.recoveries += 1;
    }

    /// Processes one packet on the next round-robin core, applying the
    /// recovery policy on unclean halts. Quarantined cores are skipped
    /// (degraded mode). Returns the core index used and the outcome.
    ///
    /// # Panics
    ///
    /// Panics if the selected core has no program installed, or if every
    /// core is quarantined.
    pub fn process(&mut self, packet: &[u8]) -> (usize, PacketOutcome) {
        let cores = self.slots.len();
        assert!(
            self.slots.iter().any(|s| !s.health.quarantined),
            "all cores quarantined: the NP cannot dispatch"
        );
        let mut index = self.next;
        while self.slots[index].health.quarantined {
            index = (index + 1) % cores;
        }
        self.next = (index + 1) % cores;
        let outcome = self.process_on(index, packet);
        (index, outcome)
    }

    /// Processes a packet on the core its *flow* hashes to, so packets of
    /// one conversation share a core (and its per-core state, e.g. the
    /// CM counters) — the dispatch real NPs use to keep flow affinity.
    ///
    /// The flow key is (src, dst, protocol) plus the first payload word
    /// (the L4 ports for UDP/TCP) when present; non-IPv4 runts hash over
    /// their raw bytes. The hash maps into the weighted dispatch table
    /// over the *active* (non-quarantined) cores — a throttled core holds
    /// half the slots of a healthy one. With nothing quarantined or
    /// throttled the table collapses to one slot per core, identical to
    /// hashing over all cores; in degraded mode flows of a quarantined
    /// core redistribute over the survivors.
    ///
    /// # Panics
    ///
    /// Panics if the selected core has no program installed, or if every
    /// core is quarantined.
    pub fn process_flow(&mut self, packet: &[u8]) -> (usize, PacketOutcome) {
        let index = self.core_for(packet);
        (index, self.process_on(index, packet))
    }

    /// The weighted flow-dispatch slot table over the active cores:
    /// healthy cores weigh 2, throttled cores 1 (half the share). Uniform
    /// weights collapse to one slot per core — bit-identical to the
    /// pre-graded `active[hash % active.len()]` mapping.
    fn dispatch_table(&self) -> Vec<usize> {
        let weighted: Vec<(usize, u32)> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.health.quarantined)
            .map(|(i, s)| (i, if s.health.throttled { 1 } else { 2 }))
            .collect();
        assert!(
            !weighted.is_empty(),
            "all cores quarantined: the NP cannot dispatch"
        );
        dispatch_slots(&weighted)
    }

    /// The core `packet`'s flow currently dispatches to (the exact mapping
    /// of [`NetworkProcessor::process_flow`] and the batch partition,
    /// against current core health). Public so harnesses modelling
    /// per-core capacity (the frontier sweep) can reproduce the engine's
    /// packet→core assignment without dispatching.
    ///
    /// # Panics
    ///
    /// Panics if every core is quarantined.
    pub fn core_for(&self, packet: &[u8]) -> usize {
        let table = self.dispatch_table();
        table[(flow_hash(packet) % table.len() as u64) as usize]
    }

    /// Processes one packet on a specific core (flow-pinned dispatch).
    /// This is the explicit-pin escape hatch: it dispatches even to a
    /// quarantined core (tests and the fault harness use it to poke
    /// specific cores); the quarantine-respecting paths are
    /// [`NetworkProcessor::process`], [`NetworkProcessor::process_flow`],
    /// and [`NetworkProcessor::process_batch`].
    pub fn process_on(&mut self, index: usize, packet: &[u8]) -> PacketOutcome {
        let policy = self.policy;
        let clock = self.stats.processed;
        let (outcome, action) = self.slots[index].run(packet, &policy);
        self.stats.record(&outcome);
        self.slots[index].note_forensic(clock, &outcome, policy.adaptive.forensic_window);
        if let Some(action) = action {
            if self.bus.is_some() {
                let mut events = Vec::new();
                if action >= SupervisorAction::Quarantine {
                    self.slots[index].flush_forensics(clock, index, &mut events);
                }
                events.extend(supervisor_event(
                    action,
                    clock,
                    index,
                    &self.slots[index].health,
                ));
                if let Some(bus) = &self.bus {
                    bus.extend(events);
                }
            }
            if action == SupervisorAction::Zeroize {
                self.latch_lockdown(clock);
            }
        }
        outcome
    }

    /// Latches NP lockdown (once) and emits the `supervisor.lockdown`
    /// event.
    fn latch_lockdown(&mut self, clock: u64) {
        if self.lockdown {
            return;
        }
        self.lockdown = true;
        metrics().inc(Counter::NpLockdowns);
        if let Some(bus) = &self.bus {
            let zeroized = self
                .slots
                .iter()
                .filter(|s| s.health.zeroize_ordered)
                .count();
            bus.record(Event::new("supervisor.lockdown", clock).field("cores_zeroized", zeroized));
        }
    }

    /// The batch engine's shard count (see
    /// [`NetworkProcessor::set_shards`]).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Sets the batch-engine shard count. Each shard owns a disjoint,
    /// contiguous block of cores and runs their queues on one persistent
    /// worker; one shard means the batch runs inline on the caller thread.
    /// The count is clamped to `[1, num_cores]` at dispatch time.
    ///
    /// Shard count is a *throughput* knob only: packet→core assignment is
    /// the flow mapping of [`NetworkProcessor::process_flow`] regardless of
    /// `shards`, so outcomes and statistics are byte-identical for every
    /// shard count (and to [`NetworkProcessor::process_batch_serial`]).
    pub fn set_shards(&mut self, shards: usize) {
        assert!(shards > 0, "at least one shard");
        if shards != self.shards {
            self.shards = shards;
            // Tear the pool down now; the next batch respawns at the new
            // width. (Dropping joins the workers.)
            self.pool = None;
            self.shard_stats = Vec::new();
        }
    }

    /// Partitions `packets` into per-core queues by flow affinity — the
    /// exact mapping of [`NetworkProcessor::process_flow`], applied against
    /// the active-core set at entry. Queue order preserves input order, so
    /// per-flow order is preserved (a flow never changes cores mid-batch).
    fn partition(&self, packets: &[Vec<u8>]) -> Vec<Vec<usize>> {
        let table = self.dispatch_table();
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); self.slots.len()];
        for (i, packet) in packets.iter().enumerate() {
            queues[table[(flow_hash(packet) % table.len() as u64) as usize]].push(i);
        }
        queues
    }

    /// Folds each active core's queue depth at batch entry into its
    /// baseline (the third graded-supervisor signal). Runs on the dispatch
    /// thread before any core executes, so the baselines are identical at
    /// every shard count.
    fn note_queue_depths(&mut self, queues: &[Vec<usize>]) {
        let policy = self.policy;
        if !policy.adaptive.enabled {
            return;
        }
        for (core, queue) in queues.iter().enumerate() {
            let health = &mut self.slots[core].health;
            if !health.quarantined {
                health.note_queue_depth(queue.len() as u64, &policy);
            }
        }
    }

    /// Processes a batch of packets on the sharded data-plane engine.
    ///
    /// Packets are partitioned by flow (same mapping as
    /// [`NetworkProcessor::process_flow`]), the cores are split into
    /// [`NetworkProcessor::shards`] disjoint contiguous shards, and each
    /// shard works through its cores' queues on a persistent worker thread
    /// (spawned once, reused across batches, joined on drop — see
    /// [`crate::engine`]). Per-shard counters accumulate in cache-padded
    /// atomics and are rolled up into [`NpStats`] by shard index after the
    /// batch barrier. The merged result preserves the input order.
    ///
    /// Because flow→core assignment is independent of the shard count and
    /// each core's queue runs in input order on exactly one worker,
    /// outcomes and statistics are byte-identical to
    /// [`NetworkProcessor::process_batch_serial`] — and to calling
    /// `process_flow` on each packet in turn when core health does not
    /// change mid-batch — for any seed and any shard count. Only the wall
    /// clock differs: shard workers dispatch whole packets through
    /// [`ExecutionObserver::run_packet`], the monomorphized per-packet
    /// fast path.
    ///
    /// Packets are partitioned against the active-core set *at entry*: a
    /// core the supervisor quarantines mid-batch still finishes its share
    /// (quarantine gates dispatch, not execution, and degrades only the
    /// owning shard) and drops out of the next batch's partitioning.
    ///
    /// # Panics
    ///
    /// Panics if a selected core has no program installed, or if every
    /// core is quarantined.
    pub fn process_batch(&mut self, packets: &[Vec<u8>]) -> Vec<(usize, PacketOutcome)> {
        let queues = self.partition(packets);
        let shards = self.shards.clamp(1, self.slots.len());
        self.note_queue_depths(&queues);
        self.record_batch_telemetry(packets.len(), &queues, shards);
        if shards == 1 || packets.is_empty() {
            let merged = self.run_queues_inline(packets, &queues, DispatchPath::Fused);
            self.finish_batch();
            return merged;
        }

        if self.pool.as_ref().is_none_or(|p| p.len() != shards) {
            self.pool = Some(WorkerPool::new(shards));
            self.shard_stats = (0..shards).map(|_| ShardStats::default()).collect();
        }
        let pool = self.pool.as_ref().expect("pool just ensured");
        let spans = shard_spans(self.slots.len(), shards);
        let policy = self.policy;
        let base_clock = self.stats.processed;
        let record_events = self.bus.is_some();
        let trace = if record_events { self.trace } else { None };
        let shard_stats = &self.shard_stats;

        // One result buffer per shard; workers never share a buffer, and
        // input indices are globally unique, so the merge below is
        // order-independent across shards.
        let mut results: Vec<Vec<(usize, usize, PacketOutcome)>> = spans
            .iter()
            .map(|span| {
                let load: usize = queues[span.start..span.end].iter().map(Vec::len).sum();
                Vec::with_capacity(load)
            })
            .collect();
        // Per-shard event buffers, absorbed in packet order after the
        // barrier — the event-stream twin of the ShardStats rollup.
        let mut shard_events: Vec<Vec<Event>> = (0..shards).map(|_| Vec::new()).collect();
        {
            // Split the slot array into per-shard disjoint chunks.
            let mut rest: &mut [Slot] = &mut self.slots;
            let mut chunks: Vec<&mut [Slot]> = Vec::with_capacity(shards);
            let mut consumed = 0;
            for span in &spans {
                let (chunk, tail) = rest.split_at_mut(span.end - consumed);
                chunks.push(chunk);
                rest = tail;
                consumed = span.end;
            }
            let queues = &queues;
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
                .into_iter()
                .zip(&spans)
                .zip(results.iter_mut().zip(shard_events.iter_mut()))
                .enumerate()
                .map(|(shard_index, ((chunk, span), (out, events)))| {
                    let span = *span;
                    let stats = &shard_stats[shard_index];
                    Box::new(move || {
                        for (local, slot) in chunk.iter_mut().enumerate() {
                            let core_index = span.start + local;
                            for (qpos, &i) in queues[core_index].iter().enumerate() {
                                let (outcome, action) = slot.run_fused(&packets[i], &policy);
                                stats.record(&outcome);
                                // Clock = the packet's batch-wide ordinal,
                                // independent of sharding.
                                let clock = base_clock + i as u64;
                                slot.note_forensic(
                                    clock,
                                    &outcome,
                                    policy.adaptive.forensic_window,
                                );
                                if record_events {
                                    if let Some(action) = action {
                                        if action >= SupervisorAction::Quarantine {
                                            slot.flush_forensics(clock, core_index, events);
                                        }
                                        events.extend(supervisor_event(
                                            action,
                                            clock,
                                            core_index,
                                            &slot.health,
                                        ));
                                    }
                                }
                                if let Some(tc) = &trace {
                                    slot.note_trace(
                                        tc,
                                        &packets[i],
                                        clock,
                                        core_index,
                                        qpos as u64,
                                        &outcome,
                                        action,
                                        events,
                                    );
                                }
                                out.push((i, core_index, outcome));
                            }
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_batch(jobs);
        }
        if let Some(bus) = &self.bus {
            // Merge by logical clock (= input index, globally unique), so
            // the stream is identical for every shard count — and to the
            // inline/serial paths.
            let mut events: Vec<Event> = shard_events.into_iter().flatten().collect();
            events.sort_by_key(|e| e.clock);
            bus.extend(events);
        }

        // Merge outcomes back into input order (indices are globally
        // unique, so cross-shard iteration order cannot matter), then roll
        // the padded per-shard counters up by shard index.
        let mut merged: Vec<Option<(usize, PacketOutcome)>> = vec![None; packets.len()];
        for outcomes in &results {
            for &(i, core_index, outcome) in outcomes {
                merged[i] = Some((core_index, outcome));
            }
        }
        self.rollup_shard_stats();
        self.finish_batch();
        merged
            .into_iter()
            .map(|m| m.expect("every packet was dispatched"))
            .collect()
    }

    /// The serial oracle for [`NetworkProcessor::process_batch`]: identical
    /// partition-at-entry semantics, executed entirely on the caller thread
    /// through the reference per-instruction dispatch path (one virtual
    /// `observe` call per retired instruction, no worker pool, no fused
    /// fast path). The determinism tests and the `sharded_engine` testkit
    /// differential pin `process_batch` to this function byte-for-byte.
    ///
    /// # Panics
    ///
    /// Same contract as [`NetworkProcessor::process_batch`].
    pub fn process_batch_serial(&mut self, packets: &[Vec<u8>]) -> Vec<(usize, PacketOutcome)> {
        let queues = self.partition(packets);
        self.note_queue_depths(&queues);
        let merged = self.run_queues_inline(packets, &queues, DispatchPath::Reference);
        self.finish_batch();
        merged
    }

    /// Runs pre-partitioned queues on the caller thread, in core-index
    /// order, and merges back to input order.
    fn run_queues_inline(
        &mut self,
        packets: &[Vec<u8>],
        queues: &[Vec<usize>],
        path: DispatchPath,
    ) -> Vec<(usize, PacketOutcome)> {
        let policy = self.policy;
        let base_clock = self.stats.processed;
        let record_events = self.bus.is_some();
        let trace = if record_events { self.trace } else { None };
        let mut events: Vec<Event> = Vec::new();
        let mut merged: Vec<Option<(usize, PacketOutcome)>> = vec![None; packets.len()];
        for (core_index, queue) in queues.iter().enumerate() {
            let slot = &mut self.slots[core_index];
            for (qpos, &i) in queue.iter().enumerate() {
                let (outcome, action) = match path {
                    DispatchPath::Fused => slot.run_fused(&packets[i], &policy),
                    DispatchPath::Reference => slot.run(&packets[i], &policy),
                };
                let clock = base_clock + i as u64;
                slot.note_forensic(clock, &outcome, policy.adaptive.forensic_window);
                if record_events {
                    if let Some(action) = action {
                        if action >= SupervisorAction::Quarantine {
                            slot.flush_forensics(clock, core_index, &mut events);
                        }
                        events.extend(supervisor_event(action, clock, core_index, &slot.health));
                    }
                }
                if let Some(tc) = &trace {
                    slot.note_trace(
                        tc,
                        &packets[i],
                        clock,
                        core_index,
                        qpos as u64,
                        &outcome,
                        action,
                        &mut events,
                    );
                }
                merged[i] = Some((core_index, outcome));
            }
        }
        if let Some(bus) = &self.bus {
            // Same packet-ordinal merge as the sharded path, so serial,
            // inline, and sharded runs emit one identical stream.
            events.sort_by_key(|e| e.clock);
            bus.extend(events);
        }
        let merged: Vec<(usize, PacketOutcome)> = merged
            .into_iter()
            .map(|m| m.expect("every packet was dispatched"))
            .collect();
        for (_, outcome) in &merged {
            self.stats.record(outcome);
        }
        merged
    }

    /// Records the per-batch gauges (shard queue depths, imbalance) and —
    /// when a bus is attached — one `np.batch` event. Shared by the
    /// sharded and inline batch paths.
    fn record_batch_telemetry(&self, packets: usize, queues: &[Vec<usize>], shards: usize) {
        let m = metrics();
        m.inc(Counter::NpBatches);
        m.set_gauge(Gauge::BatchShards, shards as u64);
        m.set_gauge(Gauge::BatchPackets, packets as u64);
        let spans = shard_spans(self.slots.len(), shards);
        let mut min_load = u64::MAX;
        let mut max_load = 0u64;
        for (shard, span) in spans.iter().enumerate() {
            let load: u64 = queues[span.start..span.end]
                .iter()
                .map(|q| q.len() as u64)
                .sum();
            m.set_shard_depth(shard, load);
            min_load = min_load.min(load);
            max_load = max_load.max(load);
        }
        let imbalance = max_load.saturating_sub(min_load);
        m.set_gauge(Gauge::ShardImbalance, imbalance);
        if let Some(bus) = &self.bus {
            bus.record(
                Event::new("np.batch", self.stats.processed)
                    .field("shards", shards)
                    .field("packets", packets)
                    .field("imbalance", imbalance),
            );
        }
    }

    /// Batch epilogue, shared by the sharded, inline, and serial paths and
    /// always run on the caller thread: ticks the per-core parole clocks
    /// (in core-index order, so the emitted `supervisor.parole` events are
    /// independent of the shard count) and latches fleet lockdown if any
    /// core was ordered zeroized during the batch. The parole/lockdown
    /// clock is the post-batch processed count, which is identical for
    /// every shard count.
    fn finish_batch(&mut self) {
        let policy = self.policy;
        let clock = self.stats.processed;
        let mut events: Vec<Event> = Vec::new();
        let record_events = self.bus.is_some();
        for (core_index, slot) in self.slots.iter_mut().enumerate() {
            let Some(parole) = slot.health.note_batch_end(&policy) else {
                continue;
            };
            metrics().inc(Counter::NpParoles);
            if record_events {
                let restored = match parole {
                    Parole::Dispatch => "dispatch",
                    Parole::Full => "full",
                };
                events.push(
                    Event::new("supervisor.parole", clock)
                        .field("core", core_index)
                        .field("restored", restored)
                        .field("level", slot.health.threat.name()),
                );
            }
        }
        if let Some(bus) = &self.bus {
            bus.extend(events);
        }
        if self.slots.iter().any(|s| s.health.zeroize_ordered) {
            self.latch_lockdown(clock);
        }
    }

    /// Folds the drained per-shard counters into the NP-wide stats, in
    /// shard-index order.
    fn rollup_shard_stats(&mut self) {
        for stats in &self.shard_stats {
            let (processed, forwarded, dropped, violations, faults, recoveries) = stats.take();
            self.stats.processed += processed;
            self.stats.forwarded += forwarded;
            self.stats.dropped += dropped;
            self.stats.violations += violations;
            self.stats.faults += faults;
            self.stats.recoveries += recoveries;
        }
    }

    /// Aggregate statistics. Redeploy and quarantine counts are derived
    /// from the per-core supervisor ledgers at call time.
    pub fn stats(&self) -> NpStats {
        let mut s = self.stats;
        s.redeploys = self.slots.iter().map(|sl| sl.health.redeploys as u64).sum();
        s.quarantined_cores = self.slots.iter().filter(|sl| sl.health.quarantined).count() as u64;
        s
    }

    /// Admits one round of offered packets through the bounded ingress —
    /// the shared front door of [`NetworkProcessor::process_stream`] and
    /// [`NetworkProcessor::process_stream_serial`], so both paths see the
    /// same admitted subset, the same per-core queues, and the same
    /// backpressure counters. Appends one slot per *offered* packet to
    /// `outcomes` (left `None` for drops) and returns the admitted packets
    /// plus their offer-order positions.
    ///
    /// When a trace context is supplied, sampled flows emit `span.ingest`
    /// and `span.admit` into `events`, stamped with the would-be execution
    /// clock (`base_clock` + position among this round's admissions) so
    /// the admission spans line up with the execution spans of the same
    /// packet. Both stream paths route through here, so the span stream is
    /// shared by construction.
    fn admit_round(
        table: &[usize],
        round: &[Vec<u8>],
        ingress: &mut IngressQueues,
        outcomes: &mut Vec<Option<(usize, PacketOutcome)>>,
        trace: Option<TraceContext>,
        base_clock: u64,
        events: &mut Vec<Event>,
    ) -> (Vec<Vec<u8>>, Vec<usize>) {
        let m = metrics();
        let mut admitted: Vec<Vec<u8>> = Vec::new();
        let mut offer_index: Vec<usize> = Vec::new();
        for packet in round {
            let global = outcomes.len();
            outcomes.push(None);
            m.inc(Counter::StreamOffered);
            let flow = flow_hash(packet);
            let core = table[(flow % table.len() as u64) as usize];
            let span = trace
                .filter(|tc| tc.sampled(flow))
                .map(|tc| tc.trace_id(flow));
            let clock = base_clock + admitted.len() as u64;
            if let Some(trace_id) = span {
                m.inc(Counter::TraceSpans);
                events.push(
                    Event::new(trace::KIND_SPAN_INGEST, clock)
                        .field("trace", trace_id)
                        .field("flow", flow),
                );
            }
            match ingress.offer(core, admitted.len()) {
                Some(delay) => {
                    m.inc(Counter::StreamAdmitted);
                    m.observe(Hist::StreamQueueDelay, delay);
                    if let Some(trace_id) = span {
                        m.inc(Counter::TraceSpans);
                        events.push(
                            Event::new(trace::KIND_SPAN_ADMIT, clock)
                                .field("trace", trace_id)
                                .field("core", core)
                                .field("delay", delay)
                                .field("admitted", true),
                        );
                    }
                    offer_index.push(global);
                    admitted.push(packet.clone());
                }
                None => {
                    m.inc(Counter::StreamDropped);
                    if let Some(trace_id) = span {
                        m.inc(Counter::TraceSpans);
                        events.push(
                            Event::new(trace::KIND_SPAN_ADMIT, clock)
                                .field("trace", trace_id)
                                .field("core", core)
                                .field("delay", 0u64)
                                .field("admitted", false),
                        );
                    }
                }
            }
        }
        (admitted, offer_index)
    }

    /// Processes open-loop rounds on the streaming engine: bounded ingress
    /// admission, then per-round execution with deterministic work stealing
    /// of whole core queues.
    ///
    /// Each round is one arrival burst from an open-loop source. Packets
    /// are routed to their flow's core (the [`NetworkProcessor::process_flow`]
    /// mapping) and admitted while the owning shard has ingress budget —
    /// [`StreamConfig::shard_capacity`] per shard per round; overflow is
    /// dropped and counted, which is where backpressure from an
    /// uncooperative source becomes visible. Admitted queues then run
    /// exactly like [`NetworkProcessor::process_batch`], except that before
    /// execution a [`steal_plan`] re-homes whole core queues from overloaded
    /// shards to underloaded ones. A queue moves *whole* — a flow is never
    /// split across workers — so every core's queue still runs contiguously
    /// in input order on exactly one worker, and the steal plan is a pure
    /// function of queue loads, so the whole run replays exactly.
    ///
    /// Consequently outcomes, [`NpStats`], and the supervisor event stream
    /// are byte-identical to [`NetworkProcessor::process_stream_serial`]
    /// at the *same shard count* for any seed. (Admission itself depends on
    /// the shard count: per-shard budgets partition differently, so runs at
    /// different shard counts are each pinned to their own serial oracle.)
    ///
    /// Returns one entry per offered packet in offer order — `None` if the
    /// packet was dropped at admission — plus the backpressure accounting.
    ///
    /// # Panics
    ///
    /// Panics if a selected core has no program installed, if every core is
    /// quarantined, or if `cfg.shard_capacity` is zero.
    pub fn process_stream(&mut self, rounds: &[Vec<Vec<u8>>], cfg: &StreamConfig) -> StreamOutcome {
        let cores = self.slots.len();
        let shards = self.shards.clamp(1, cores);
        let mut ingress = IngressQueues::new(cores, shards, cfg.shard_capacity);
        let mut outcomes: Vec<Option<(usize, PacketOutcome)>> = Vec::new();
        let mut steals_total = 0u64;
        let trace = if self.bus.is_some() { self.trace } else { None };
        for round in rounds {
            ingress.clear_round();
            let table = self.dispatch_table();
            let mut trace_events: Vec<Event> = Vec::new();
            let (admitted, offer_index) = Self::admit_round(
                &table,
                round,
                &mut ingress,
                &mut outcomes,
                trace,
                self.stats.processed,
                &mut trace_events,
            );
            if !trace_events.is_empty() {
                if let Some(bus) = &self.bus {
                    bus.extend(trace_events);
                }
            }
            let queues = ingress.queues();
            self.note_queue_depths(queues);
            self.record_batch_telemetry(admitted.len(), queues, shards);
            let merged = if shards == 1 || admitted.is_empty() {
                self.run_queues_inline(&admitted, queues, DispatchPath::Fused)
            } else {
                let (owner, steals) = steal_plan(&ingress.loads(), shards);
                metrics().add(Counter::StreamSteals, steals);
                steals_total += steals;
                self.run_queues_stolen(&admitted, queues, &owner, shards)
            };
            self.finish_batch();
            for (local, (core, outcome)) in merged.into_iter().enumerate() {
                outcomes[offer_index[local]] = Some((core, outcome));
            }
        }
        StreamOutcome {
            outcomes,
            report: StreamReport {
                rounds: rounds.len() as u64,
                offered: ingress.offered(),
                admitted: ingress.admitted(),
                dropped: ingress.dropped(),
                steals: steals_total,
            },
        }
    }

    /// The serial oracle for [`NetworkProcessor::process_stream`]:
    /// identical bounded admission (same [`IngressQueues`], same per-shard
    /// budgets for the configured shard count), then each round's admitted
    /// packets run through [`NetworkProcessor::process_batch_serial`] — the
    /// reference per-instruction dispatch path, no worker pool, no
    /// stealing. The streaming determinism tests pin `process_stream` to
    /// this function byte-for-byte: outcomes, [`NpStats`], and the
    /// supervisor event stream.
    ///
    /// # Panics
    ///
    /// Same contract as [`NetworkProcessor::process_stream`].
    pub fn process_stream_serial(
        &mut self,
        rounds: &[Vec<Vec<u8>>],
        cfg: &StreamConfig,
    ) -> StreamOutcome {
        let cores = self.slots.len();
        let shards = self.shards.clamp(1, cores);
        let mut ingress = IngressQueues::new(cores, shards, cfg.shard_capacity);
        let mut outcomes: Vec<Option<(usize, PacketOutcome)>> = Vec::new();
        let trace = if self.bus.is_some() { self.trace } else { None };
        for round in rounds {
            ingress.clear_round();
            let table = self.dispatch_table();
            let mut trace_events: Vec<Event> = Vec::new();
            let (admitted, offer_index) = Self::admit_round(
                &table,
                round,
                &mut ingress,
                &mut outcomes,
                trace,
                self.stats.processed,
                &mut trace_events,
            );
            if !trace_events.is_empty() {
                if let Some(bus) = &self.bus {
                    bus.extend(trace_events);
                }
            }
            // Re-partitioning inside `process_batch_serial` reproduces the
            // ingress queues exactly: the dispatch table cannot change
            // between admission and execution, and admission preserved
            // offer order.
            let merged = self.process_batch_serial(&admitted);
            for (local, (core, outcome)) in merged.into_iter().enumerate() {
                outcomes[offer_index[local]] = Some((core, outcome));
            }
        }
        StreamOutcome {
            outcomes,
            report: StreamReport {
                rounds: rounds.len() as u64,
                offered: ingress.offered(),
                admitted: ingress.admitted(),
                dropped: ingress.dropped(),
                steals: 0,
            },
        }
    }

    /// Runs pre-partitioned queues on the worker pool under a steal plan:
    /// each worker owns the *whole queues* (and core slots) the plan
    /// assigned it, which may be a non-contiguous core set. Slots travel to
    /// their worker by move and come home by core index afterwards, so no
    /// aliasing is possible. Events merge by packet-ordinal clock exactly
    /// like [`NetworkProcessor::process_batch`] — a packet's event group is
    /// contiguous within one worker's buffer and clocks are unique per
    /// packet, so the stable sort yields one canonical stream regardless of
    /// which worker ran which core.
    fn run_queues_stolen(
        &mut self,
        packets: &[Vec<u8>],
        queues: &[Vec<usize>],
        owner: &[usize],
        shards: usize,
    ) -> Vec<(usize, PacketOutcome)> {
        let cores = self.slots.len();
        if self.pool.as_ref().is_none_or(|p| p.len() != shards) {
            self.pool = Some(WorkerPool::new(shards));
            self.shard_stats = (0..shards).map(|_| ShardStats::default()).collect();
        }
        let policy = self.policy;
        let base_clock = self.stats.processed;
        let record_events = self.bus.is_some();
        let trace = if record_events { self.trace } else { None };

        // Hand every core's slot to the worker the plan chose, ascending
        // core order within each worker.
        let mut worker_slots: Vec<Vec<(usize, Slot)>> = (0..shards).map(|_| Vec::new()).collect();
        for (core, slot) in std::mem::take(&mut self.slots).into_iter().enumerate() {
            worker_slots[owner[core]].push((core, slot));
        }
        let mut results: Vec<Vec<(usize, usize, PacketOutcome)>> = worker_slots
            .iter()
            .map(|mine| {
                let load: usize = mine.iter().map(|(core, _)| queues[*core].len()).sum();
                Vec::with_capacity(load)
            })
            .collect();
        let mut shard_events: Vec<Vec<Event>> = (0..shards).map(|_| Vec::new()).collect();
        {
            let pool = self.pool.as_ref().expect("pool just ensured");
            let shard_stats = &self.shard_stats;
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = worker_slots
                .iter_mut()
                .zip(results.iter_mut().zip(shard_events.iter_mut()))
                .enumerate()
                .map(|(shard_index, (mine, (out, events)))| {
                    let stats = &shard_stats[shard_index];
                    Box::new(move || {
                        for (core_index, slot) in mine.iter_mut() {
                            let core_index = *core_index;
                            for (qpos, &i) in queues[core_index].iter().enumerate() {
                                let (outcome, action) = slot.run_fused(&packets[i], &policy);
                                stats.record(&outcome);
                                let clock = base_clock + i as u64;
                                slot.note_forensic(
                                    clock,
                                    &outcome,
                                    policy.adaptive.forensic_window,
                                );
                                if record_events {
                                    if let Some(action) = action {
                                        if action >= SupervisorAction::Quarantine {
                                            slot.flush_forensics(clock, core_index, events);
                                        }
                                        events.extend(supervisor_event(
                                            action,
                                            clock,
                                            core_index,
                                            &slot.health,
                                        ));
                                    }
                                }
                                if let Some(tc) = &trace {
                                    slot.note_trace(
                                        tc,
                                        &packets[i],
                                        clock,
                                        core_index,
                                        qpos as u64,
                                        &outcome,
                                        action,
                                        events,
                                    );
                                }
                                out.push((i, core_index, outcome));
                            }
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_batch(jobs);
        }
        if let Some(bus) = &self.bus {
            let mut events: Vec<Event> = shard_events.into_iter().flatten().collect();
            events.sort_by_key(|e| e.clock);
            bus.extend(events);
        }
        // Every slot comes home to its core index.
        let mut restored: Vec<Option<Slot>> = (0..cores).map(|_| None).collect();
        for (core, slot) in worker_slots.into_iter().flatten() {
            restored[core] = Some(slot);
        }
        self.slots = restored
            .into_iter()
            .map(|s| s.expect("every core's slot returns"))
            .collect();

        let mut merged: Vec<Option<(usize, PacketOutcome)>> = vec![None; packets.len()];
        for outcomes in &results {
            for &(i, core_index, outcome) in outcomes {
                merged[i] = Some((core_index, outcome));
            }
        }
        self.rollup_shard_stats();
        merged
            .into_iter()
            .map(|m| m.expect("every admitted packet was dispatched"))
            .collect()
    }
}

/// Which per-packet dispatch path an inline queue run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DispatchPath {
    /// [`ExecutionObserver::run_packet`] — one virtual call per packet.
    Fused,
    /// [`Core::process_packet`] via `&mut dyn` — one virtual call per
    /// retired instruction; the oracle path.
    Reference,
}

/// Streaming-engine knobs for [`NetworkProcessor::process_stream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Packets each shard admits per round; arrivals beyond the budget are
    /// dropped at ingress and counted as backpressure.
    pub shard_capacity: usize,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig { shard_capacity: 64 }
    }
}

/// Backpressure and stealing accounting for one streaming run. The
/// admission identity `offered == admitted + dropped` holds by
/// construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamReport {
    /// Arrival rounds processed.
    pub rounds: u64,
    /// Packets the open-loop source offered.
    pub offered: u64,
    /// Packets admitted past the bounded ingress.
    pub admitted: u64,
    /// Packets dropped by admission control.
    pub dropped: u64,
    /// Whole core queues re-homed by the steal planner.
    pub steals: u64,
}

/// Result of a streaming run: per-offered-packet outcomes in offer order
/// (`None` where admission dropped the packet) plus the accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome {
    /// One entry per offered packet: `Some((core, outcome))` if admitted.
    pub outcomes: Vec<Option<(usize, PacketOutcome)>>,
    /// Backpressure + stealing counters for the whole run.
    pub report: StreamReport,
}

/// Default engine shard count for a fresh NP: one worker per available
/// hardware thread, clamped to the core count (never more shards than
/// cores, never zero). On a single-CPU host this is 1 — the batch path
/// runs inline and still gets the fused per-packet dispatch.
fn default_shards(cores: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, cores)
}

/// FNV-1a over the flow key of `packet` (see
/// [`NetworkProcessor::process_flow`]): src + dst + protocol + first L4
/// word for IPv4, raw bytes otherwise. Public so the affinity tests and
/// the bench can reproduce the engine's packet→core mapping.
pub fn flow_hash(packet: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1_0000_0193;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    if packet.len() >= 20 && packet[0] >> 4 == 4 {
        let header_len = ((packet[0] & 0xf) as usize) * 4;
        eat(&packet[12..20]); // src + dst
        eat(&packet[9..10]); // protocol
        if packet.len() >= header_len + 4 {
            eat(&packet[header_len..header_len + 4]); // L4 ports
        }
    } else {
        eat(packet);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{NullObserver, Observation};
    use crate::programs::{self, testing};
    use crate::runtime::Verdict;

    fn loaded_np(cores: usize) -> NetworkProcessor {
        let program = programs::ipv4_forward().unwrap();
        let mut np = NetworkProcessor::new(cores);
        np.install_all(&program.to_bytes(), program.base, |_| {
            Box::new(NullObserver)
        });
        np
    }

    #[test]
    fn round_robin_dispatch() {
        let mut np = loaded_np(3);
        let packet = testing::ipv4_packet([1, 1, 1, 1], [2, 2, 2, 2], 64, b"");
        let ids: Vec<usize> = (0..6).map(|_| np.process(&packet).0).collect();
        assert_eq!(ids, [0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn stats_accumulate() {
        let mut np = loaded_np(2);
        let fwd = testing::ipv4_packet([1, 1, 1, 1], [2, 2, 2, 2], 64, b"");
        let drop = testing::ipv4_packet([1, 1, 1, 1], [2, 2, 2, 16], 64, b""); // route 0
        np.process(&fwd);
        np.process(&fwd);
        np.process(&drop);
        let s = np.stats();
        assert_eq!(s.processed, 3);
        assert_eq!(s.forwarded, 2);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.recoveries, 0);
    }

    #[test]
    fn violation_triggers_recovery() {
        struct TripAfter(u64);
        impl ExecutionObserver for TripAfter {
            fn begin(&mut self, _e: u32) {}
            fn observe(&mut self, _pc: u32, _w: u32) -> Observation {
                if self.0 == 0 {
                    Observation::Violation
                } else {
                    self.0 -= 1;
                    Observation::Continue
                }
            }
        }
        let program = programs::ipv4_forward().unwrap();
        let mut np = NetworkProcessor::new(1);
        np.install(
            0,
            &program.to_bytes(),
            program.base,
            Box::new(TripAfter(10)),
        );
        let packet = testing::ipv4_packet([1, 1, 1, 1], [2, 2, 2, 2], 64, b"");
        let (_, out) = np.process(&packet);
        assert_eq!(out.halt, HaltReason::MonitorViolation);
        assert_eq!(out.verdict, Verdict::Drop);
        let s = np.stats();
        assert_eq!(s.violations, 1);
        assert_eq!(s.recoveries, 1);
        assert_eq!(s.dropped, 1);
    }

    #[test]
    fn recovery_restores_service() {
        // A hijacked vulnerable core keeps serving good packets correctly
        // after reset.
        let program = programs::vulnerable_forward().unwrap();
        let mut np = NetworkProcessor::new(1);
        np.install_all(&program.to_bytes(), program.base, |_| {
            Box::new(NullObserver)
        });
        // Attack that corrupts the in-memory route table, then halts.
        let table = program.symbol("route_table").unwrap();
        let attack = testing::hijack_packet(&format!(
            "li $t4, 0x{:x}
             li $t5, 15
             sw $t5, 8($t4)      # route_table[2] = 15
             break 0",
            table
        ))
        .unwrap();
        let good = testing::ipv4_packet([1, 1, 1, 1], [10, 0, 0, 2], 64, b"");

        // Without detection the corruption persists (no monitor => no
        // recovery): subsequent packets misroute.
        np.process(&attack);
        let (_, out) = np.process(&good);
        assert_eq!(
            out.verdict,
            Verdict::Forward(15),
            "attack silently redirected traffic"
        );

        // A manual reset (what the monitor path automates) restores routing.
        np.slots[0].core.reset();
        let (_, out) = np.process(&good);
        assert_eq!(out.verdict, Verdict::Forward(2));
    }

    #[test]
    fn flow_dispatch_is_sticky_and_spreads() {
        let mut np = loaded_np(4);
        // Same flow always lands on the same core.
        let flow = testing::ipv4_packet([10, 1, 2, 3], [10, 0, 0, 5], 64, b"\x12\x34\x00\x50");
        let first = np.process_flow(&flow).0;
        for _ in 0..5 {
            assert_eq!(np.process_flow(&flow).0, first);
        }
        // Many distinct flows reach more than one core.
        let mut cores_hit = std::collections::BTreeSet::new();
        for i in 0..32u8 {
            let p = testing::ipv4_packet([10, 1, i, 3], [10, 0, 0, 5], 64, b"data");
            cores_hit.insert(np.process_flow(&p).0);
        }
        assert!(cores_hit.len() >= 3, "flows all piled on {cores_hit:?}");
        // Non-IPv4 runts are still dispatched somewhere valid.
        let (core, _) = np.process_flow(&[1, 2, 3]);
        assert!(core < 4);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        NetworkProcessor::new(0);
    }

    #[test]
    fn forced_reset_restores_corrupted_core() {
        let mut np = loaded_np(1);
        // Corrupt the text segment through the fault-injection hook.
        let word = np.core(0).memory().load_u32(0).unwrap();
        np.core_mut(0).memory_mut().store_u32(0, word ^ 1).unwrap();
        np.reset_core(0);
        assert_eq!(np.stats().recoveries, 1);
        assert_eq!(np.core(0).memory().load_u32(0).unwrap(), word);
        let packet = testing::ipv4_packet([1, 1, 1, 1], [2, 2, 2, 2], 64, b"");
        let (_, out) = np.process(&packet);
        assert_eq!(out.verdict, Verdict::Forward(2));
    }

    #[test]
    fn batch_matches_sequential_flow_dispatch() {
        // Mixed traffic — forwards, policy drops, and hijacks that force
        // recoveries — must produce identical outcomes and stats whether
        // processed one at a time or as a parallel batch.
        let program = programs::vulnerable_forward().unwrap();
        let mut batch_np = NetworkProcessor::new(4);
        let mut seq_np = NetworkProcessor::new(4);
        for np in [&mut batch_np, &mut seq_np] {
            np.install_all(&program.to_bytes(), program.base, |_| {
                Box::new(NullObserver)
            });
        }

        let attack = testing::hijack_packet("li $t5, 15\nbreak 1").unwrap();
        let mut packets: Vec<Vec<u8>> = Vec::new();
        for i in 0..40u8 {
            packets.push(testing::ipv4_packet(
                [10, 1, i, 1],
                [10, 0, 0, 1 + i % 15],
                64,
                b"payload",
            ));
            if i % 10 == 3 {
                packets.push(attack.clone());
            }
        }

        let batched = batch_np.process_batch(&packets);
        let sequential: Vec<(usize, PacketOutcome)> =
            packets.iter().map(|p| seq_np.process_flow(p)).collect();
        assert_eq!(batched, sequential);
        assert_eq!(batch_np.stats(), seq_np.stats());
        assert!(
            batch_np.stats().recoveries > 0,
            "the hijack packets must exercise recovery"
        );
    }

    fn loaded_supervised_np(cores: usize, policy: SupervisorPolicy) -> NetworkProcessor {
        let program = programs::vulnerable_forward().unwrap();
        let mut np = NetworkProcessor::with_policy(cores, policy);
        np.install_all(&program.to_bytes(), program.base, |_| {
            Box::new(NullObserver)
        });
        np
    }

    #[test]
    fn supervisor_escalates_to_quarantine_and_dispatch_skips_it() {
        let policy = SupervisorPolicy::ladder(2, 2);
        let mut np = loaded_supervised_np(3, policy);
        let attack = testing::hijack_packet("break 1").unwrap();
        // Hammer core 1 through the explicit pin until the ladder tops out:
        // 2 strikes -> redeploy, 2 more -> quarantine.
        for _ in 0..4 {
            np.process_on(1, &attack);
        }
        assert!(np.is_quarantined(1));
        assert_eq!(np.core_health(1).redeploys, 2);
        assert_eq!(np.active_cores(), vec![0, 2]);
        let s = np.stats();
        assert_eq!(s.redeploys, 2);
        assert_eq!(s.quarantined_cores, 1);
        assert_eq!(s.recoveries, 4, "every unclean halt still recovers");

        // Degraded round robin never lands on the quarantined core.
        let good = testing::ipv4_packet([1, 1, 1, 1], [10, 0, 0, 2], 64, b"");
        let ids: Vec<usize> = (0..6).map(|_| np.process(&good).0).collect();
        assert_eq!(ids, [0, 2, 0, 2, 0, 2]);

        // Degraded flow dispatch redistributes over the survivors.
        for i in 0..32u8 {
            let p = testing::ipv4_packet([10, 1, i, 3], [10, 0, 0, 5], 64, b"data");
            let (core, _) = np.process_flow(&p);
            assert_ne!(core, 1, "flow {i} reached a quarantined core");
        }
    }

    #[test]
    fn clean_traffic_holds_off_the_ladder() {
        let policy = SupervisorPolicy::ladder(2, 1);
        let mut np = loaded_supervised_np(1, policy);
        let attack = testing::hijack_packet("break 1").unwrap();
        let good = testing::ipv4_packet([1, 1, 1, 1], [10, 0, 0, 2], 64, b"");
        // Alternating bad/good never reaches two *consecutive* strikes.
        for _ in 0..8 {
            np.process(&attack);
            np.process(&good);
        }
        assert!(!np.is_quarantined(0));
        assert_eq!(np.stats().redeploys, 0);
        assert_eq!(np.stats().recoveries, 8);
    }

    #[test]
    fn reinstall_rehabilitates_a_quarantined_core() {
        let policy = SupervisorPolicy::ladder(1, 1);
        let mut np = loaded_supervised_np(2, policy);
        let attack = testing::hijack_packet("break 1").unwrap();
        np.process_on(0, &attack);
        assert!(np.is_quarantined(0));
        assert_eq!(np.active_cores(), vec![1]);

        let program = programs::vulnerable_forward().unwrap();
        np.install(0, &program.to_bytes(), program.base, Box::new(NullObserver));
        assert!(!np.is_quarantined(0));
        assert_eq!(np.core_health(0), crate::supervisor::CoreHealth::default());
        assert_eq!(np.active_cores(), vec![0, 1]);
        assert_eq!(np.stats().quarantined_cores, 0);
        let good = testing::ipv4_packet([1, 1, 1, 1], [10, 0, 0, 2], 64, b"");
        assert_eq!(np.process(&good).0, 0, "round robin includes it again");
    }

    #[test]
    fn batch_matches_sequential_under_quarantine() {
        let program = programs::vulnerable_forward().unwrap();
        let mut batch_np = NetworkProcessor::new(4);
        let mut seq_np = NetworkProcessor::new(4);
        for np in [&mut batch_np, &mut seq_np] {
            np.install_all(&program.to_bytes(), program.base, |_| {
                Box::new(NullObserver)
            });
            np.quarantine_core(2);
        }
        let packets: Vec<Vec<u8>> = (0..40u8)
            .map(|i| testing::ipv4_packet([10, 1, i, 1], [10, 0, 0, 1 + i % 15], 64, b"x"))
            .collect();
        let batched = batch_np.process_batch(&packets);
        let sequential: Vec<(usize, PacketOutcome)> =
            packets.iter().map(|p| seq_np.process_flow(p)).collect();
        assert_eq!(batched, sequential);
        assert!(batched.iter().all(|&(core, _)| core != 2));
        assert_eq!(batch_np.stats(), seq_np.stats());
    }

    #[test]
    #[should_panic(expected = "all cores quarantined")]
    fn fully_quarantined_np_refuses_dispatch() {
        let mut np = loaded_np(2);
        np.quarantine_core(0);
        np.quarantine_core(1);
        np.process(&testing::ipv4_packet([1, 1, 1, 1], [2, 2, 2, 2], 64, b""));
    }

    #[test]
    fn per_core_observers_are_distinct() {
        // Each call to make_observer corresponds to one core index.
        let program = programs::ipv4_forward().unwrap();
        let mut np = NetworkProcessor::new(3);
        let mut seen = Vec::new();
        np.install_all(&program.to_bytes(), program.base, |i| {
            seen.push(i);
            Box::new(NullObserver)
        });
        assert_eq!(seen, [0, 1, 2]);
    }

    use crate::supervisor::AdaptiveConfig;

    fn graded_np(cores: usize, adaptive: AdaptiveConfig) -> NetworkProcessor {
        loaded_supervised_np(cores, SupervisorPolicy::graded(adaptive))
    }

    /// Hammers one core with hijack packets until `done(np)` holds; panics
    /// if the graded supervisor never gets there within the bound.
    fn hammer_until(
        np: &mut NetworkProcessor,
        core: usize,
        bound: usize,
        done: impl Fn(&NetworkProcessor) -> bool,
    ) {
        let attack = testing::hijack_packet("break 1").unwrap();
        for _ in 0..bound {
            if done(np) {
                return;
            }
            np.process_on(core, &attack);
        }
        assert!(done(np), "graded supervisor never reached the target state");
    }

    #[test]
    fn graded_throttle_halves_the_dispatch_share() {
        let mut np = graded_np(
            3,
            AdaptiveConfig {
                parole_batches: 0,
                ..AdaptiveConfig::default()
            },
        );
        hammer_until(&mut np, 1, 8, |np| np.is_throttled(1));
        assert!(!np.is_quarantined(1), "throttle precedes quarantine");
        // Healthy cores weigh 2, a throttled core 1: the flow table is no
        // longer one-slot-per-core, so the throttled core's share drops.
        let hits: Vec<usize> = (0..64u8)
            .map(|i| np.core_for(&testing::ipv4_packet([10, 2, i, 7], [10, 0, 0, 3], 64, b"")))
            .collect();
        let share = |c: usize| hits.iter().filter(|&&h| h == c).count();
        assert!(share(1) > 0, "a throttled core keeps a reduced share");
        assert!(
            share(1) < share(0) && share(1) < share(2),
            "throttled core 1 outweighed by healthy peers: {:?}",
            [share(0), share(1), share(2)]
        );
    }

    #[test]
    fn healthy_core_for_matches_the_historical_uniform_mapping() {
        // With every core healthy the weighted table collapses to one slot
        // per core — byte-identical dispatch to the pre-graded NP.
        let mut healthy = loaded_np(4);
        let mut graded = graded_np(4, AdaptiveConfig::default());
        for i in 0..64u8 {
            let p = testing::ipv4_packet([10, 3, i, 9], [10, 0, 0, 2], 64, b"");
            assert_eq!(healthy.core_for(&p), graded.core_for(&p));
            assert_eq!(healthy.process_flow(&p).0, graded.process_flow(&p).0);
        }
    }

    #[test]
    fn graded_zeroize_latches_lockdown_until_reinstall() {
        let mut np = graded_np(
            2,
            AdaptiveConfig {
                parole_batches: 0,
                ..AdaptiveConfig::default()
            },
        );
        hammer_until(&mut np, 0, 32, |np| np.is_locked_down());
        let health = np.core_health(0);
        assert!(health.zeroize_ordered);
        assert!(health.quarantined);
        assert_eq!(health.threat, crate::supervisor::ThreatLevel::Critical);

        // Zeroize orders hand off exactly once.
        assert_eq!(np.take_zeroize_orders(), vec![0]);
        assert!(np.take_zeroize_orders().is_empty());

        // Decommission wipes the slot but keeps it out of dispatch.
        np.decommission(0);
        assert!(np.is_quarantined(0));
        assert_eq!(np.active_cores(), vec![1]);

        // Lockdown is latched until an operator reinstalls the core.
        np.process_batch(&[]);
        assert!(np.is_locked_down());
        let program = programs::vulnerable_forward().unwrap();
        np.install(0, &program.to_bytes(), program.base, Box::new(NullObserver));
        assert!(!np.is_locked_down());
        assert!(!np.is_quarantined(0));
    }

    #[test]
    fn parole_restores_a_throttled_core_after_clean_batches() {
        let mut np = graded_np(
            2,
            AdaptiveConfig {
                parole_batches: 2,
                ..AdaptiveConfig::default()
            },
        );
        hammer_until(&mut np, 0, 8, |np| np.is_throttled(0));
        let good: Vec<Vec<u8>> = (0..8u8)
            .map(|i| testing::ipv4_packet([10, 4, i, 1], [10, 0, 0, 2], 64, b""))
            .collect();
        // Batch 1 consumes the dirty-batch flag, batches 2 and 3 count as
        // clean; parole restores the full dispatch share on batch 3.
        np.process_batch(&good);
        assert!(np.is_throttled(0));
        np.process_batch(&good);
        assert!(np.is_throttled(0));
        np.process_batch(&good);
        assert!(!np.is_throttled(0), "parole restores the dispatch share");
        assert_eq!(
            np.core_health(0).threat,
            crate::supervisor::ThreatLevel::None
        );
    }

    #[test]
    fn parole_walks_quarantine_back_through_throttle() {
        let mut np = graded_np(
            2,
            AdaptiveConfig {
                parole_batches: 1,
                ..AdaptiveConfig::default()
            },
        );
        hammer_until(&mut np, 0, 16, |np| np.is_quarantined(0));
        assert!(!np.core_health(0).zeroize_ordered, "stopped before zeroize");
        // Dirty-batch flag burns batch 1; batch 2 paroles quarantine down
        // to throttled; batch 3 restores the full share.
        np.process_batch(&[]);
        assert!(np.is_quarantined(0));
        np.process_batch(&[]);
        assert!(!np.is_quarantined(0));
        assert!(np.is_throttled(0), "quarantine paroles to throttled first");
        np.process_batch(&[]);
        assert!(!np.is_throttled(0));
    }
}
