//! Execution tracing: an [`ExecutionObserver`] that records the retired
//! instruction stream for debugging, workload development, and the
//! repository's own tests. This is the software equivalent of the debug
//! tap the hardware monitor sits on.

use crate::cpu::{ExecutionObserver, Observation};
use sdmmon_isa::Inst;
use std::fmt;

/// One retired instruction in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Fetch address.
    pub pc: u32,
    /// Raw instruction word.
    pub word: u32,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match Inst::decode(self.word) {
            Ok(inst) => write!(f, "{:08x}:  {:08x}  {}", self.pc, self.word, inst),
            Err(_) => write!(
                f,
                "{:08x}:  {:08x}  .word 0x{:08x}",
                self.pc, self.word, self.word
            ),
        }
    }
}

/// Records retired instructions up to a configurable limit (keeping the
/// *last* `limit` entries, which is what post-mortem debugging wants).
///
/// # Ring-buffer semantics
///
/// The buffer holds at most `limit` entries. Until the run retires `limit`
/// instructions, every entry is retained; from the `limit + 1`-th retired
/// instruction on, each new entry evicts the oldest one, so at any moment
/// [`Tracer::entries`] yields exactly the last `min(retired, limit)`
/// instructions in retirement order, and [`Tracer::total_observed`] keeps
/// the full count including evicted entries. A run that retires *exactly*
/// `limit` instructions therefore keeps all of them with nothing evicted
/// (the wrap boundary). `limit == 0` is rejected at construction — a
/// zero-length trace would record nothing. The wrap boundary is pinned by
/// the `wrap_boundary_*` unit tests below.
///
/// # Examples
///
/// ```
/// use sdmmon_npu::{core::Core, programs, trace::Tracer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = programs::ipv4_forward()?;
/// let mut core = Core::new();
/// core.install(&program.to_bytes(), program.base);
/// let mut tracer = Tracer::keep_last(32);
/// let packet = programs::testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"x");
/// core.process_packet(&packet, &mut tracer);
/// assert!(tracer.entries().count() > 0);
/// println!("{}", tracer.render()); // disassembled tail of the run
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    entries: std::collections::VecDeque<TraceEntry>,
    limit: usize,
    total: u64,
}

impl Tracer {
    /// Creates a tracer that retains the last `limit` retired instructions.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn keep_last(limit: usize) -> Tracer {
        assert!(limit > 0, "a zero-length trace records nothing");
        Tracer {
            entries: std::collections::VecDeque::with_capacity(limit),
            limit,
            total: 0,
        }
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Total instructions observed (including evicted ones).
    pub fn total_observed(&self) -> u64 {
        self.total
    }

    /// Renders the retained trace as disassembly, one line per entry.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

impl ExecutionObserver for Tracer {
    fn begin(&mut self, _entry: u32) {
        self.entries.clear();
        self.total = 0;
    }

    fn observe(&mut self, pc: u32, word: u32) -> Observation {
        if self.entries.len() == self.limit {
            self.entries.pop_front();
        }
        self.entries.push_back(TraceEntry { pc, word });
        self.total += 1;
        Observation::Continue
    }
}

/// Chains two observers: `first` sees every instruction, and `second`
/// (typically the monitor) decides. Lets a tracer ride along with a
/// hardware monitor to capture the instructions leading up to a violation.
#[derive(Debug)]
pub struct Tee<'a, A, B> {
    /// Passive observer (its verdict is ignored).
    pub first: &'a mut A,
    /// Deciding observer.
    pub second: &'a mut B,
}

impl<A: ExecutionObserver, B: ExecutionObserver> ExecutionObserver for Tee<'_, A, B> {
    fn begin(&mut self, entry: u32) {
        self.first.begin(entry);
        self.second.begin(entry);
    }

    fn observe(&mut self, pc: u32, word: u32) -> Observation {
        let _ = self.first.observe(pc, word);
        self.second.observe(pc, word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::Core;
    use crate::programs::{self, testing};
    use sdmmon_isa::asm::Assembler;

    #[test]
    fn traces_simple_program_in_order() {
        let program = Assembler::new().assemble("nop\nnop\nbreak 0").unwrap();
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        let mut tracer = Tracer::keep_last(16);
        core.process_packet(&[], &mut tracer);
        let pcs: Vec<u32> = tracer.entries().map(|e| e.pc).collect();
        assert_eq!(pcs, vec![0, 4, 8], "nop, nop, break all retire");
        assert!(tracer.render().contains("break"));
    }

    #[test]
    fn ring_buffer_keeps_tail() {
        let program = Assembler::new()
            .assemble("li $t0, 5\nloop: addiu $t0, $t0, -1\nbgtz $t0, loop\nbreak 0")
            .unwrap();
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        let mut tracer = Tracer::keep_last(3);
        core.process_packet(&[], &mut tracer);
        assert_eq!(tracer.entries().count(), 3);
        assert!(tracer.total_observed() > 3);
        // The very last retained entry is the break.
        let last = tracer.entries().last().unwrap();
        assert_eq!(last.word & 0x3f, 0x0d, "break funct");
    }

    #[test]
    fn tee_lets_tracer_ride_with_a_monitor() {
        use sdmmon_monitor_stub::*;
        // A minimal deciding observer that violates on the Nth instruction.
        mod sdmmon_monitor_stub {
            use crate::cpu::{ExecutionObserver, Observation};
            pub struct TripAt(pub u64);
            impl ExecutionObserver for TripAt {
                fn begin(&mut self, _e: u32) {}
                fn observe(&mut self, _pc: u32, _w: u32) -> Observation {
                    self.0 -= 1;
                    if self.0 == 0 {
                        Observation::Violation
                    } else {
                        Observation::Continue
                    }
                }
            }
        }
        let program = programs::ipv4_forward().unwrap();
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        let mut tracer = Tracer::keep_last(8);
        let mut trip = TripAt(20);
        let packet = testing::ipv4_packet([1, 1, 1, 1], [2, 2, 2, 2], 64, b"");
        let out = core.process_packet(
            &packet,
            &mut Tee {
                first: &mut tracer,
                second: &mut trip,
            },
        );
        assert_eq!(out.halt, crate::runtime::HaltReason::MonitorViolation);
        assert_eq!(
            tracer.total_observed(),
            20,
            "tracer saw everything up to the violation"
        );
        assert_eq!(tracer.entries().count(), 8);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_limit_rejected() {
        Tracer::keep_last(0);
    }

    /// Runs a program that retires exactly four instructions (three nops
    /// and the break) under a tracer of the given limit, returning the
    /// retained pcs and the tracer.
    fn trace_four(limit: usize) -> (Vec<u32>, Tracer) {
        let program = Assembler::new().assemble("nop\nnop\nnop\nbreak 0").unwrap();
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        let mut tracer = Tracer::keep_last(limit);
        core.process_packet(&[], &mut tracer);
        let pcs = tracer.entries().map(|e| e.pc).collect();
        (pcs, tracer)
    }

    #[test]
    fn wrap_boundary_limit_one_keeps_only_the_last() {
        let (pcs, tracer) = trace_four(1);
        assert_eq!(pcs, vec![12], "only the break is retained");
        assert_eq!(tracer.total_observed(), 4);
    }

    #[test]
    fn wrap_boundary_exact_limit_keeps_everything() {
        // Exactly `limit` retirements: full retention, nothing evicted.
        let (pcs, tracer) = trace_four(4);
        assert_eq!(pcs, vec![0, 4, 8, 12]);
        assert_eq!(tracer.total_observed(), 4);
    }

    #[test]
    fn wrap_boundary_one_past_limit_evicts_the_oldest() {
        // One retirement past the limit: the first entry is gone.
        let (pcs, tracer) = trace_four(3);
        assert_eq!(pcs, vec![4, 8, 12]);
        assert_eq!(tracer.total_observed(), 4);
    }

    #[test]
    fn wrap_boundary_oversized_limit_never_wraps() {
        let (pcs, _) = trace_four(5);
        assert_eq!(pcs, vec![0, 4, 8, 12], "limit+1 capacity holds all four");
    }
}
