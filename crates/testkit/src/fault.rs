//! Fault-injection primitives: wire-level bundle tampering, live
//! instruction-memory bit flips, and packet mutation.
//!
//! Everything here is a pure function of its inputs and the supplied RNG,
//! so a campaign that injects thousands of faults replays exactly from its
//! seed. The wire faults operate on the *serialized* transport bytes — the
//! representation an on-path attacker or compromised file server actually
//! sees — and compose with [`sdmmon_net::channel::FileServer::tamper`].

use sdmmon_core::package::InstallationBundle;
use sdmmon_core::{cert::Certificate, SdmmonError};
use sdmmon_crypto::rsa::RsaKeyPair;
use sdmmon_net::channel::Channel;
use sdmmon_net::resilience::{FlakyServer, LossyChannel, OutageWindow};
use sdmmon_npu::core::Core;
use sdmmon_rng::{Rng, RngCore};

/// One class of wire-level tampering applied to a serialized
/// [`InstallationBundle`] in transit. Each class is chosen to trip a
/// *specific* verification step of the secure-installation sequence, so
/// rejections can be asserted per [`SdmmonError`] variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Flip one bit of the operator signature. The payload decrypts
    /// cleanly, then SR1's signature check fails: [`SdmmonError::SignatureInvalid`].
    TamperSignature,
    /// Flip one bit in the final AES-CBC ciphertext block, garbling the
    /// whole padding block: [`SdmmonError::DecryptionFailed`] (SR3).
    CorruptCiphertext,
    /// Flip one bit of the CBC IV. Padding survives, exactly one payload
    /// bit flips, and the signature no longer verifies:
    /// [`SdmmonError::SignatureInvalid`] (SR1 catching an SR3-layer tamper).
    TamperIv,
    /// Replace the wrapped AES key with one wrapped for a *different*
    /// device key. The router's RSA unwrap yields garbage padding:
    /// [`SdmmonError::WrongDevice`] (SR4).
    ForeignKeyWrap,
    /// Swap the operator certificate for a self-signed forgery over the
    /// attacker's key, keeping the subject name:
    /// [`SdmmonError::CertificateInvalid`] (SR1's chain of trust).
    ForgeCertificate,
    /// Drop trailing transport bytes; structural parsing fails:
    /// [`SdmmonError::MalformedPackage`].
    TruncateTransport,
}

impl WireFault {
    /// Every wire-fault class, in a fixed campaign order.
    pub const ALL: [WireFault; 6] = [
        WireFault::TamperSignature,
        WireFault::CorruptCiphertext,
        WireFault::TamperIv,
        WireFault::ForeignKeyWrap,
        WireFault::ForgeCertificate,
        WireFault::TruncateTransport,
    ];

    /// Stable snake_case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            WireFault::TamperSignature => "tamper_signature",
            WireFault::CorruptCiphertext => "corrupt_ciphertext",
            WireFault::TamperIv => "tamper_iv",
            WireFault::ForeignKeyWrap => "foreign_key_wrap",
            WireFault::ForgeCertificate => "forge_certificate",
            WireFault::TruncateTransport => "truncate_transport",
        }
    }

    /// Whether `err` is the rejection this fault class is expected to
    /// provoke. `CorruptCiphertext` admits `SignatureInvalid` as well:
    /// with probability ≈2⁻⁸ the garbled final block still parses as
    /// padding and the tamper is caught one layer later — still a
    /// rejection, just a different tripwire.
    pub fn matches_expected(self, err: &SdmmonError) -> bool {
        match self {
            WireFault::TamperSignature | WireFault::TamperIv => {
                matches!(err, SdmmonError::SignatureInvalid)
            }
            WireFault::CorruptCiphertext => matches!(
                err,
                SdmmonError::DecryptionFailed | SdmmonError::SignatureInvalid
            ),
            WireFault::ForeignKeyWrap => matches!(err, SdmmonError::WrongDevice),
            WireFault::ForgeCertificate => matches!(err, SdmmonError::CertificateInvalid),
            WireFault::TruncateTransport => matches!(err, SdmmonError::MalformedPackage(_)),
        }
    }
}

/// One class of *transport*-level fault — loss, corruption, stalls, server
/// outages, and unreachability — injected into the download path rather
/// than the bundle bytes. Unlike [`WireFault`]s, which must be **rejected**
/// by the protocol, transport faults must be **survived**: the retrying
/// download client and the resilient deployment loop are expected to heal
/// through every recoverable class and to quarantine cleanly on the
/// unrecoverable one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFault {
    /// Heavy packet loss: every fetch may terminate early, delivering a
    /// resumable prefix.
    PacketLoss,
    /// Silent byte corruption: delivered chunks may carry flipped bytes;
    /// only the end-to-end integrity re-check can notice.
    ByteCorruption,
    /// Stalls: fetches may hang to the client timeout and deliver nothing.
    Stall,
    /// A transient server outage: a window of consecutive connection
    /// attempts is refused, then service resumes.
    ServerOutage,
    /// All of the above at moderate rates, plus an outage window.
    Mixed,
    /// The package path is blackholed — permanently unreachable. The only
    /// class that is *supposed* to end in quarantine.
    Unreachable,
}

impl TransportFault {
    /// Every transport-fault class, in a fixed campaign order.
    pub const ALL: [TransportFault; 6] = [
        TransportFault::PacketLoss,
        TransportFault::ByteCorruption,
        TransportFault::Stall,
        TransportFault::ServerOutage,
        TransportFault::Mixed,
        TransportFault::Unreachable,
    ];

    /// Stable snake_case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            TransportFault::PacketLoss => "packet_loss",
            TransportFault::ByteCorruption => "byte_corruption",
            TransportFault::Stall => "stall",
            TransportFault::ServerOutage => "server_outage",
            TransportFault::Mixed => "mixed",
            TransportFault::Unreachable => "unreachable",
        }
    }

    /// Whether the resilient pipeline is expected to heal through this
    /// class (`false` only for [`TransportFault::Unreachable`]).
    pub fn recoverable(self) -> bool {
        self != TransportFault::Unreachable
    }

    /// The link fault model of this class over `base`.
    pub fn link(self, base: Channel) -> LossyChannel {
        let clean = LossyChannel::clean(base);
        match self {
            TransportFault::PacketLoss => clean.with_loss(0.4),
            TransportFault::ByteCorruption => clean.with_corrupt(0.15),
            TransportFault::Stall => clean.with_stall(0.3),
            TransportFault::ServerOutage | TransportFault::Unreachable => clean,
            TransportFault::Mixed => clean.with_loss(0.2).with_corrupt(0.05).with_stall(0.1),
        }
    }

    /// Arms the server-side half of this class on a [`FlakyServer`]
    /// (outage windows, blackholed paths). `path` is the package path the
    /// trial will download.
    pub fn arm(self, server: &mut FlakyServer, path: &str) {
        let next = server.stats().attempts;
        match self {
            TransportFault::ServerOutage => {
                // Refuse a window of upcoming attempts, starting one in.
                server.schedule_outage(OutageWindow {
                    from: next + 1,
                    len: 4,
                });
            }
            TransportFault::Mixed => {
                server.schedule_outage(OutageWindow {
                    from: next + 2,
                    len: 2,
                });
            }
            TransportFault::Unreachable => server.blackhole(path),
            _ => {}
        }
    }
}

/// AES-CBC block size: the ciphertext layout is `IV ‖ block₁ ‖ … ‖ blockₙ`.
const CBC_BLOCK: usize = 16;

/// Applies [`WireFault`]s to transport bytes. Owns the attacker identity
/// (a key pair outside the manufacturer's chain of trust) so certificate
/// forgery and foreign key wraps don't pay a key generation per injection.
#[derive(Debug)]
pub struct WireFaultInjector {
    attacker: RsaKeyPair,
}

impl WireFaultInjector {
    /// Creates an injector with a fresh attacker key pair of `key_bits`.
    ///
    /// # Errors
    ///
    /// Propagates key-generation failures.
    pub fn new<R: RngCore>(key_bits: usize, rng: &mut R) -> Result<WireFaultInjector, SdmmonError> {
        Ok(WireFaultInjector {
            attacker: RsaKeyPair::generate(key_bits, rng)?,
        })
    }

    /// Tampers `transport` (a serialized [`InstallationBundle`]) in place
    /// according to `fault`, drawing positions and key material from `rng`.
    ///
    /// Structural faults re-serialize the parsed bundle; if the bytes do
    /// not parse (already damaged), the injector degrades to truncation so
    /// every injection leaves a genuinely tampered artifact behind.
    pub fn inject<R: RngCore>(&self, fault: WireFault, transport: &mut Vec<u8>, rng: &mut R) {
        if fault == WireFault::TruncateTransport {
            truncate(transport, rng);
            return;
        }
        let Ok(mut bundle) = InstallationBundle::from_bytes(transport) else {
            truncate(transport, rng);
            return;
        };
        match fault {
            WireFault::TamperSignature => flip_random_bit(&mut bundle.signature, rng),
            WireFault::CorruptCiphertext => {
                // Last block: byte offset in [len - 16, len).
                let len = bundle.ciphertext.len();
                let byte = len - CBC_BLOCK + rng.gen_range(0..CBC_BLOCK);
                bundle.ciphertext[byte] ^= 1 << rng.gen_range(0..8u32);
            }
            WireFault::TamperIv => {
                let byte = rng.gen_range(0..CBC_BLOCK);
                bundle.ciphertext[byte] ^= 1 << rng.gen_range(0..8u32);
            }
            WireFault::ForeignKeyWrap => {
                let mut key = [0u8; 16];
                rng.fill_bytes(&mut key);
                bundle.wrapped_key = self
                    .attacker
                    .public
                    .encrypt(&key, rng)
                    .expect("attacker key wraps a 16-byte key");
            }
            WireFault::ForgeCertificate => {
                bundle.certificate = Certificate::issue(
                    bundle.certificate.subject(),
                    &self.attacker.public,
                    &self.attacker.private,
                );
            }
            WireFault::TruncateTransport => unreachable!("handled above"),
        }
        *transport = bundle.to_bytes();
    }
}

/// Drops 1..=8 trailing bytes (never the whole transport).
fn truncate<R: RngCore>(transport: &mut Vec<u8>, rng: &mut R) {
    let cut = rng.gen_range(1..=8.min(transport.len().saturating_sub(1)).max(1));
    transport.truncate(transport.len().saturating_sub(cut));
}

/// Flips one uniformly random bit of `bytes`.
fn flip_random_bit<R: RngCore>(bytes: &mut [u8], rng: &mut R) {
    let bit = rng.gen_range(0..bytes.len() * 8);
    bytes[bit / 8] ^= 1 << (bit % 8);
}

/// Record of one instruction-memory bit flip, for logs and undo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextFlip {
    /// Word-aligned address of the flipped instruction.
    pub addr: u32,
    /// Bit position within the word (0 = LSB).
    pub bit: u32,
    /// The instruction word before the flip.
    pub before: u32,
    /// The instruction word after the flip.
    pub after: u32,
}

/// Flips one random bit in the text segment `[base, base + len_bytes)` of a
/// live core — the transient-hardware-fault / post-exploitation-patch model
/// the monitor must catch when the flipped word is executed. The core's
/// pre-decoded cache is invalidated by the write path, so the fault is
/// architecturally visible, not just a stale-cache artifact.
///
/// # Panics
///
/// Panics if `len_bytes < 4` or the address range is unmapped.
pub fn flip_text_bit<R: RngCore>(
    core: &mut Core,
    base: u32,
    len_bytes: u32,
    rng: &mut R,
) -> TextFlip {
    assert!(len_bytes >= 4, "text segment too small to flip");
    let addr = base + 4 * rng.gen_range(0..len_bytes / 4);
    let bit = rng.gen_range(0..32u32);
    let before = core.memory().load_u32(addr).expect("text address mapped");
    let after = before ^ (1 << bit);
    core.memory_mut()
        .store_u32(addr, after)
        .expect("text address mapped");
    TextFlip {
        addr,
        bit,
        before,
        after,
    }
}

/// Mutates a packet in place with one randomly chosen corruption: a bit
/// flip, byte overwrite, truncation, random extension, byte swap, or a
/// zeroed span. Mirrors what a malfunctioning or adversarial upstream hop
/// could deliver to the data plane.
pub fn mutate_packet<R: RngCore>(packet: &mut Vec<u8>, rng: &mut R) {
    if packet.is_empty() {
        packet.push(rng.gen());
        return;
    }
    match rng.gen_range(0..6u32) {
        0 => {
            let bit = rng.gen_range(0..packet.len() * 8);
            packet[bit / 8] ^= 1 << (bit % 8);
        }
        1 => {
            let i = rng.gen_range(0..packet.len());
            packet[i] = rng.gen();
        }
        2 => {
            let keep = rng.gen_range(0..packet.len());
            packet.truncate(keep);
        }
        3 => {
            let extra = rng.gen_range(1..=32usize);
            for _ in 0..extra {
                packet.push(rng.gen());
            }
        }
        4 => {
            let a = rng.gen_range(0..packet.len());
            let b = rng.gen_range(0..packet.len());
            packet.swap(a, b);
        }
        _ => {
            let start = rng.gen_range(0..packet.len());
            let end = (start + rng.gen_range(1..=8usize)).min(packet.len());
            packet[start..end].fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdmmon_rng::{SeedableRng, StdRng};

    #[test]
    fn wire_fault_names_are_unique() {
        let mut names: Vec<_> = WireFault::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), WireFault::ALL.len());
    }

    #[test]
    fn transport_fault_names_are_unique_and_classes_behave() {
        let mut names: Vec<_> = TransportFault::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TransportFault::ALL.len());
        assert!(TransportFault::PacketLoss.recoverable());
        assert!(!TransportFault::Unreachable.recoverable());
        // Each recoverable link class perturbs exactly its own knob.
        let base = Channel::ideal_gigabit();
        assert!(TransportFault::PacketLoss.link(base).loss > 0.0);
        assert_eq!(TransportFault::PacketLoss.link(base).corrupt, 0.0);
        assert!(TransportFault::ByteCorruption.link(base).corrupt > 0.0);
        assert!(TransportFault::Stall.link(base).stall > 0.0);
        let mixed = TransportFault::Mixed.link(base);
        assert!(mixed.loss > 0.0 && mixed.corrupt > 0.0 && mixed.stall > 0.0);
    }

    #[test]
    fn armed_outage_refuses_then_recovers() {
        use sdmmon_net::channel::FileServer;
        let mut inner = FileServer::new();
        inner.publish("pkg", vec![1u8; 256]);
        let mut server = FlakyServer::new(inner, 31);
        let link = TransportFault::ServerOutage.link(Channel::ideal_gigabit());
        TransportFault::ServerOutage.arm(&mut server, "pkg");
        // Attempt 0 works, the armed window refuses, then service resumes.
        assert!(server.probe("pkg", &link).is_ok());
        let mut refused = 0;
        for _ in 0..4 {
            if server.probe("pkg", &link).is_err() {
                refused += 1;
            }
        }
        assert_eq!(refused, 4, "armed window must cover the next attempts");
        assert!(server.probe("pkg", &link).is_ok(), "outage is transient");
    }

    #[test]
    fn injection_changes_transport_bytes() {
        let mut rng = StdRng::seed_from_u64(21);
        let keys = RsaKeyPair::generate(512, &mut rng).unwrap();
        let cert = Certificate::issue("op", &keys.public, &keys.private);
        let bundle = InstallationBundle {
            ciphertext: vec![7; 64],
            wrapped_key: vec![8; 64],
            signature: vec![9; 64],
            certificate: cert,
        };
        let injector = WireFaultInjector::new(512, &mut rng).unwrap();
        for fault in WireFault::ALL {
            let mut transport = bundle.to_bytes();
            injector.inject(fault, &mut transport, &mut rng);
            assert_ne!(transport, bundle.to_bytes(), "{}", fault.name());
        }
    }

    #[test]
    fn unparsable_transport_degrades_to_truncation() {
        let mut rng = StdRng::seed_from_u64(22);
        let injector = WireFaultInjector::new(512, &mut rng).unwrap();
        let mut garbage = vec![0xAB; 40];
        injector.inject(WireFault::TamperSignature, &mut garbage, &mut rng);
        assert!(garbage.len() < 40);
    }

    #[test]
    fn text_flip_changes_exactly_one_bit_and_cache_sees_it() {
        use sdmmon_npu::cpu::NullObserver;
        use sdmmon_npu::runtime::HaltReason;
        let program = sdmmon_npu::programs::ipv4_forward().unwrap();
        let image = program.to_bytes();
        let mut core = Core::new();
        core.install(&image, program.base);
        let mut rng = StdRng::seed_from_u64(23);
        let flip = flip_text_bit(&mut core, program.base, image.len() as u32, &mut rng);
        assert_eq!((flip.before ^ flip.after).count_ones(), 1);
        assert_eq!(core.memory().load_u32(flip.addr).unwrap(), flip.after);
        // The run must execute the *flipped* text (any outcome is legal;
        // what matters is that it does not silently use a stale decode).
        let packet =
            sdmmon_npu::programs::testing::ipv4_packet([1, 1, 1, 1], [2, 2, 2, 2], 64, b"");
        let _ = core.process_packet(&packet, &mut NullObserver);
        core.reset();
        assert_eq!(
            core.memory().load_u32(flip.addr).unwrap(),
            flip.before,
            "reset restores the pristine image"
        );
        let out = core.process_packet(&packet, &mut NullObserver);
        assert_eq!(out.halt, HaltReason::Completed);
    }

    #[test]
    fn packet_mutation_is_deterministic_per_seed() {
        let base: Vec<u8> = (0..60).collect();
        let mutate_with = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p = base.clone();
            for _ in 0..16 {
                mutate_packet(&mut p, &mut rng);
            }
            p
        };
        assert_eq!(mutate_with(5), mutate_with(5));
        assert_ne!(mutate_with(5), mutate_with(6));
    }
}
