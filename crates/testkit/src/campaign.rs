//! Adversarial-campaign generators: mass-produced attack and fault
//! variants pushed through the full protocol stack, with strict accounting.
//!
//! Every campaign draws all its randomness from one `u64` sub-seed and
//! classifies **every** trial into exactly one [`Tally`] bucket — an
//! undetected escape can never silently vanish from the report, which is
//! what makes the escape counters trustworthy evidence.

use crate::fault::{flip_text_bit, mutate_packet, TransportFault, WireFault, WireFaultInjector};
use sdmmon_core::entities::{Manufacturer, NetworkOperator, RouterDevice};
use sdmmon_core::package::InstallationBundle;
use sdmmon_core::system::{craft_evasive_hijack, Fleet};
use sdmmon_core::SdmmonError;
use sdmmon_monitor::hash::Compression;
use sdmmon_monitor::{InstructionHash, MerkleTreeHash, MonitoringGraph};
use sdmmon_net::channel::{Channel, FileServer};
use sdmmon_net::download::{DownloadClient, RetryPolicy};
use sdmmon_net::resilience::FlakyServer;
use sdmmon_npu::programs::{self, testing};
use sdmmon_npu::runtime::{HaltReason, PacketOutcome, Verdict};
use sdmmon_rng::{Rng, RngCore, SeedableRng, StdRng};

/// The registered adversarial campaigns, in the order
/// [`crate::report::run_campaign`] executes them, with one-line
/// descriptions (`sdmmon campaign --list` prints this catalog).
pub const CAMPAIGN_CATALOG: &[(&str, &str)] = &[
    (
        "stack_smash",
        "randomized stack-smashing hijack variants vs the monitored vulnerable forwarder (AC1)",
    ),
    (
        "packet_fuzz",
        "structurally mutated packets vs the hardened and vulnerable workloads",
    ),
    (
        "wire_faults",
        "bit flips, foreign keys, forged certs, and truncation on serialized install bundles",
    ),
    (
        "fault_recovery",
        "live instruction-memory corruption and forced resets against the recovery loop",
    ),
    (
        "evasive_propagation",
        "hash-colliding hijacks crafted from a leaked parameter, across a deployed fleet",
    ),
    (
        "resilient_deploy",
        "every transport-fault class injected into the secure download/install path",
    ),
];

/// Tunable knobs of a full campaign run. All sizes are in *trials*, never
/// in wall-clock time, so runs are reproducible on any machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Master seed; every campaign derives its own sub-seed from it.
    pub seed: u64,
    /// Total adversarial-trial budget split across the packet campaigns.
    pub budget: u64,
    /// Routers per fleet in the cross-router propagation campaign.
    pub routers: usize,
    /// NP cores per router.
    pub cores_each: usize,
    /// RSA modulus size for all key material (512 keeps campaigns fast;
    /// the protocol is size-agnostic).
    pub key_bits: usize,
    /// Trials per deviation length `k` in the escape-probability model.
    pub escape_trials: u64,
}

impl CampaignConfig {
    /// Defaults sized for a CI smoke run (a couple of seconds in release).
    pub fn new(seed: u64) -> CampaignConfig {
        CampaignConfig {
            seed,
            budget: 2_000,
            routers: 4,
            cores_each: 1,
            key_bits: 512,
            escape_trials: 20_000,
        }
    }

    /// Sets the adversarial-trial budget.
    pub fn with_budget(mut self, budget: u64) -> CampaignConfig {
        self.budget = budget.max(1);
        self
    }

    /// Sets the fleet size for propagation campaigns.
    pub fn with_routers(mut self, routers: usize) -> CampaignConfig {
        self.routers = routers.max(2);
        self
    }

    /// Sets the per-`k` trial count of the escape-probability model.
    pub fn with_escape_trials(mut self, trials: u64) -> CampaignConfig {
        self.escape_trials = trials.max(1);
        self
    }
}

/// Exhaustive classification of campaign trials. The invariant — checked
/// by [`Tally::is_accounted`] and enforced report-wide by
/// [`crate::report::CampaignReport::verify_accounting`] — is that every
/// attempted trial lands in exactly one outcome bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Trials injected.
    pub attempted: u64,
    /// Stopped by the hardware monitor (the paper's success case).
    pub detected: u64,
    /// Stopped by a processor trap or the step limit (crash containment,
    /// not monitor detection).
    pub faulted: u64,
    /// Rejected at the protocol layer before any code ran (wire faults).
    pub rejected: u64,
    /// Completed without achieving the adversarial goal.
    pub clean: u64,
    /// Completed *with* the adversarial goal — an undetected escape.
    pub escaped: u64,
}

impl Tally {
    /// True when every attempted trial is classified.
    pub fn is_accounted(&self) -> bool {
        self.attempted == self.detected + self.faulted + self.rejected + self.clean + self.escaped
    }

    /// Folds another tally into this one.
    pub fn absorb(&mut self, other: Tally) {
        self.attempted += other.attempted;
        self.detected += other.detected;
        self.faulted += other.faulted;
        self.rejected += other.rejected;
        self.clean += other.clean;
        self.escaped += other.escaped;
    }
}

/// Detection latency in *retired instructions* (never wall-clock, so the
/// serialized report is byte-stable across machines and runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySteps {
    /// Number of detections measured.
    pub count: u64,
    /// Fewest instructions before the monitor fired.
    pub min: u64,
    /// Most instructions before the monitor fired.
    pub max: u64,
    /// Sum over all detections (for the mean).
    pub sum: u64,
}

impl LatencySteps {
    /// Records one detection after `steps` retired instructions.
    pub fn record(&mut self, steps: u64) {
        if self.count == 0 {
            self.min = steps;
            self.max = steps;
        } else {
            self.min = self.min.min(steps);
            self.max = self.max.max(steps);
        }
        self.count += 1;
        self.sum += steps;
    }

    /// Mean steps-to-detection (0.0 when nothing was detected).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Result of one campaign: the tally plus campaign-specific counters.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// Stable snake_case campaign name.
    pub name: &'static str,
    /// Trial classification.
    pub tally: Tally,
    /// Steps-to-detection over all detected trials.
    pub latency: LatencySteps,
    /// Core recovery cycles performed during the campaign.
    pub recoveries: u64,
    /// Named sub-counters (per fault kind, per target, …), in a fixed
    /// deterministic order.
    pub details: Vec<(String, u64)>,
}

/// One row of the escape-probability model: `trials` random `k`-deep
/// deviations against a fresh monitoring parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EscapeRow {
    /// Deviation length in instructions.
    pub k: u32,
    /// Trials at this depth.
    pub trials: u64,
    /// Deviations that survived all `k` hash checks.
    pub escapes: u64,
}

impl EscapeRow {
    /// Observed escape rate.
    pub fn observed_rate(&self) -> f64 {
        self.escapes as f64 / self.trials as f64
    }

    /// The paper's model rate, `16^-k`.
    pub fn model_rate(&self) -> f64 {
        16f64.powi(-(self.k as i32))
    }
}

/// Protocol-world fixture: one certified operator, one provisioned router.
struct World {
    operator: NetworkOperator,
    router: RouterDevice,
    rng: StdRng,
}

impl World {
    fn new(seed: u64, cores: usize, key_bits: usize) -> Result<World, SdmmonError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let manufacturer = Manufacturer::new("acme", key_bits, &mut rng)?;
        let mut operator = NetworkOperator::new("op", key_bits, &mut rng)?;
        operator.accept_certificate(manufacturer.certify_operator(operator.public_key(), "op"));
        let router = manufacturer.provision_router("r-0", cores, key_bits, &mut rng)?;
        Ok(World {
            operator,
            router,
            rng,
        })
    }
}

/// Classifies one packet outcome against an optional adversarial goal.
fn classify(
    tally: &mut Tally,
    latency: &mut LatencySteps,
    out: &PacketOutcome,
    goal: Option<Verdict>,
) {
    tally.attempted += 1;
    match out.halt {
        HaltReason::MonitorViolation => {
            tally.detected += 1;
            latency.record(out.steps);
        }
        HaltReason::Fault(_) | HaltReason::StepLimit => tally.faulted += 1,
        HaltReason::Completed => {
            if goal.is_some_and(|g| out.verdict == g) {
                tally.escaped += 1;
            } else {
                tally.clean += 1;
            }
        }
    }
}

/// Registers the verdict-writing tail of a randomized hijack payload:
/// `(staging+store asm with a {port} already substituted, max port)`.
fn hijack_store_variant<R: RngCore>(rng: &mut R, port: u32) -> String {
    let regs = ["$t5", "$t0", "$t2", "$t7", "$v0"];
    let rt = regs[rng.gen_range(0..regs.len())];
    match rng.gen_range(0..3u32) {
        // Relative to the packet ABI base still held in $s0.
        0 => format!("addiu {rt}, $zero, {port}\nsw {rt}, -16($s0)"),
        // Byte store of the low verdict byte (big-endian offset +3).
        1 => format!("addiu {rt}, $zero, {port}\nsb {rt}, -13($s0)"),
        // Absolute address staged in a second register.
        _ => format!("addiu {rt}, $zero, {port}\nli $t4, 0x0007fff0\nsw {rt}, 0($t4)"),
    }
}

/// AC1 at scale: randomized stack-smashing hijack variants against the
/// securely installed vulnerable forwarder. Each variant varies the
/// injected-code length (padding layers), registers, store width, and
/// attacker port — the population over which the paper's 16⁻ᵏ detection
/// argument is made.
pub fn stack_smash(
    cfg: &CampaignConfig,
    trials: u64,
    seed: u64,
) -> Result<CampaignOutcome, SdmmonError> {
    let mut w = World::new(seed, cfg.cores_each, cfg.key_bits)?;
    let program = programs::vulnerable_forward().map_err(|e| SdmmonError::Graph(e.to_string()))?;
    let bundle = w
        .operator
        .prepare_package(&program, w.router.public_key(), &mut w.rng)?;
    let cores: Vec<usize> = (0..cfg.cores_each).collect();
    w.router.install_bundle(&bundle, &cores)?;

    let mut tally = Tally::default();
    let mut latency = LatencySteps::default();
    let mut assembly_failures = 0u64;
    for trial in 0..trials {
        let port = w.rng.gen_range(1..=255u32);
        let layers = w.rng.gen_range(0..=6usize);
        let mut asm = String::new();
        for _ in 0..layers {
            let imm: u16 = w.rng.gen();
            asm.push_str(&format!("ori $zero, $zero, 0x{imm:x}\n"));
        }
        asm.push_str(&hijack_store_variant(&mut w.rng, port));
        asm.push_str("\nbreak 0");
        let Ok(packet) = testing::hijack_packet(&asm) else {
            assembly_failures += 1;
            continue;
        };
        let core = (trial % cfg.cores_each as u64) as usize;
        let out = w.router.process_on(core, &packet);
        classify(&mut tally, &mut latency, &out, Some(Verdict::Forward(port)));
    }
    assert_eq!(assembly_failures, 0, "generated payloads must assemble");
    Ok(CampaignOutcome {
        name: "stack_smash",
        recoveries: w.router.stats().recoveries,
        details: vec![("payload_variants".into(), tally.attempted)],
        tally,
        latency,
    })
}

/// Data-plane fuzzing: structurally mutated packets against both the
/// hardened and the vulnerable forwarder. For the hardened workload the
/// claim is robustness (no faults at all); for the vulnerable one, that
/// accidental corruption lands in the detected/faulted buckets rather
/// than escaping.
pub fn packet_fuzz(
    cfg: &CampaignConfig,
    trials: u64,
    seed: u64,
) -> Result<CampaignOutcome, SdmmonError> {
    let mut w = World::new(seed, 2.max(cfg.cores_each), cfg.key_bits)?;
    let hardened = programs::ipv4_forward().map_err(|e| SdmmonError::Graph(e.to_string()))?;
    let vulnerable =
        programs::vulnerable_forward().map_err(|e| SdmmonError::Graph(e.to_string()))?;
    let b0 = w
        .operator
        .prepare_package(&hardened, w.router.public_key(), &mut w.rng)?;
    w.router.install_bundle(&b0, &[0])?;
    let b1 = w
        .operator
        .prepare_package(&vulnerable, w.router.public_key(), &mut w.rng)?;
    w.router.install_bundle(&b1, &[1])?;

    let mut tally = Tally::default();
    let mut latency = LatencySteps::default();
    let mut hardened_faults = 0u64;
    let mut vulnerable_noise = 0u64;
    for trial in 0..trials {
        let dst = [10, 0, 0, w.rng.gen_range(1..=255u8)];
        let src = [w.rng.gen(), w.rng.gen(), w.rng.gen(), w.rng.gen()];
        let ttl = w.rng.gen_range(1..=255u8);
        let payload_len = w.rng.gen_range(0..64usize);
        let mut payload = vec![0u8; payload_len];
        w.rng.fill_bytes(&mut payload);
        let mut packet = if w.rng.gen_bool(0.5) {
            let mut options = vec![0u8; 4 * w.rng.gen_range(1..=10usize)];
            w.rng.fill_bytes(&mut options);
            testing::ipv4_packet_with_options(src, dst, ttl, &options, &payload)
        } else {
            testing::ipv4_packet(src, dst, ttl, &payload)
        };
        for _ in 0..w.rng.gen_range(1..=3u32) {
            mutate_packet(&mut packet, &mut w.rng);
        }
        let core = (trial % 2) as usize;
        let out = w.router.process_on(core, &packet);
        if core == 0 && !matches!(out.halt, HaltReason::Completed) {
            hardened_faults += 1;
        }
        if core == 1 && !matches!(out.halt, HaltReason::Completed) {
            vulnerable_noise += 1;
        }
        classify(&mut tally, &mut latency, &out, None);
    }
    Ok(CampaignOutcome {
        name: "packet_fuzz",
        recoveries: w.router.stats().recoveries,
        details: vec![
            ("hardened_unclean_halts".into(), hardened_faults),
            ("vulnerable_unclean_halts".into(), vulnerable_noise),
        ],
        tally,
        latency,
    })
}

/// Deploys one package over the file server with an attacker mutating the
/// published transport bytes, then attempts the installation — the wire
/// half of [`sdmmon_core::system::deploy`] with a tamper step in between.
fn deploy_tampered(
    w: &mut World,
    server: &mut FileServer,
    channel: &Channel,
    program: &sdmmon_isa::asm::Program,
    cores: &[usize],
    tamper: impl FnOnce(&mut Vec<u8>),
) -> Result<(), SdmmonError> {
    let bundle = w
        .operator
        .prepare_package(program, w.router.public_key(), &mut w.rng)?;
    let path = format!("pkg/{}.sdmmon", w.router.name());
    server.publish(path.clone(), bundle.to_bytes());
    assert!(server.tamper(&path, tamper), "path was just published");
    let (bytes, _) = server
        .fetch(&path, channel)
        .map_err(|e| SdmmonError::Download(e.to_string()))?;
    let bundle = InstallationBundle::from_bytes(&bytes)
        .map_err(|e| SdmmonError::MalformedPackage(e.to_string()))?;
    w.router.install_bundle(&bundle, cores)?;
    Ok(())
}

/// SR1–SR4 under fire: every [`WireFault`] class injected repeatedly into
/// the published transport, plus stale-bundle replay. A fault that the
/// control processor *accepts* is an escape; a rejection is additionally
/// checked against the error variant the violated requirement predicts.
pub fn wire_faults(
    cfg: &CampaignConfig,
    trials_per_kind: u64,
    seed: u64,
) -> Result<CampaignOutcome, SdmmonError> {
    let mut w = World::new(seed, cfg.cores_each, cfg.key_bits)?;
    let injector = WireFaultInjector::new(cfg.key_bits, &mut w.rng)?;
    let program = programs::ipv4_forward().map_err(|e| SdmmonError::Graph(e.to_string()))?;
    let mut server = FileServer::new();
    let channel = Channel::ideal_gigabit();
    let cores: Vec<usize> = (0..cfg.cores_each).collect();

    let mut tally = Tally::default();
    let mut expected_variant = 0u64;
    let mut details: Vec<(String, u64)> = Vec::new();
    for fault in WireFault::ALL {
        let mut kind_rejected = 0u64;
        for _ in 0..trials_per_kind {
            tally.attempted += 1;
            let result = {
                let rng = &mut StdRng::seed_from_u64(w.rng.next_u64());
                deploy_tampered(&mut w, &mut server, &channel, &program, &cores, |bytes| {
                    injector.inject(fault, bytes, rng)
                })
            };
            match result {
                Ok(()) => tally.escaped += 1,
                Err(err) => {
                    tally.rejected += 1;
                    kind_rejected += 1;
                    if fault.matches_expected(&err) {
                        expected_variant += 1;
                    }
                }
            }
        }
        details.push((fault.name().to_string(), kind_rejected));
    }

    // Stale replay: a recorded old bundle re-published after an upgrade
    // must be rejected by the sequence high-water mark.
    let mut replay_rejected = 0u64;
    for _ in 0..trials_per_kind {
        tally.attempted += 1;
        let old = w
            .operator
            .prepare_package(&program, w.router.public_key(), &mut w.rng)?;
        let new = w
            .operator
            .prepare_package(&program, w.router.public_key(), &mut w.rng)?;
        w.router.install_bundle(&old, &cores)?;
        w.router.install_bundle(&new, &cores)?;
        let path = "pkg/replayed.sdmmon";
        server.publish(path, old.to_bytes());
        let (bytes, _) = server
            .fetch(path, &channel)
            .map_err(|e| SdmmonError::Download(e.to_string()))?;
        let replayed = InstallationBundle::from_bytes(&bytes)
            .map_err(|e| SdmmonError::MalformedPackage(e.to_string()))?;
        match w.router.install_bundle(&replayed, &cores) {
            Ok(_) => tally.escaped += 1,
            Err(SdmmonError::ReplayedPackage { .. }) => {
                tally.rejected += 1;
                replay_rejected += 1;
                expected_variant += 1;
            }
            Err(_) => tally.rejected += 1,
        }
    }
    details.push(("replay_stale_bundle".into(), replay_rejected));
    details.push(("expected_error_variant".into(), expected_variant));

    Ok(CampaignOutcome {
        name: "wire_faults",
        tally,
        latency: LatencySteps::default(),
        recoveries: w.router.stats().recoveries,
        details,
    })
}

/// Transient-fault campaign: random bit flips in live instruction memory,
/// followed by traffic and a forced recovery reset. A flip on the executed
/// path must be detected (monitor) or contained (trap); a flip that
/// silently changes the forwarding decision is an escape. Every trial ends
/// with verified service restoration.
pub fn fault_recovery(
    cfg: &CampaignConfig,
    trials: u64,
    seed: u64,
) -> Result<CampaignOutcome, SdmmonError> {
    let mut w = World::new(seed, cfg.cores_each, cfg.key_bits)?;
    let program = programs::ipv4_forward().map_err(|e| SdmmonError::Graph(e.to_string()))?;
    let image_len = program.to_bytes().len() as u32;
    let base = program.base;
    let bundle = w
        .operator
        .prepare_package(&program, w.router.public_key(), &mut w.rng)?;
    let cores: Vec<usize> = (0..cfg.cores_each).collect();
    w.router.install_bundle(&bundle, &cores)?;

    let mut tally = Tally::default();
    let mut latency = LatencySteps::default();
    let mut unrecovered = 0u64;
    for trial in 0..trials {
        let core = (trial % cfg.cores_each as u64) as usize;
        let _flip = flip_text_bit(w.router.core_mut(core), base, image_len, &mut w.rng);
        let octet = w.rng.gen_range(1..=15u8);
        let expected = Verdict::Forward(octet as u32);
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, octet], 64, b"probe");
        let out = w.router.process_on(core, &packet);
        // Escape here = the flip silently changed the forwarding decision.
        tally.attempted += 1;
        match out.halt {
            HaltReason::MonitorViolation => {
                tally.detected += 1;
                latency.record(out.steps);
            }
            HaltReason::Fault(_) | HaltReason::StepLimit => tally.faulted += 1,
            HaltReason::Completed if out.verdict == expected => tally.clean += 1,
            HaltReason::Completed => tally.escaped += 1,
        }
        // Forced mid-run recovery: unclean halts already reset the core
        // (the NP's recovery policy); clean completions left the flipped
        // word in memory, so the operator commands a reset.
        if matches!(out.halt, HaltReason::Completed) {
            w.router.reset_core(core);
        }
        let probe = w.router.process_on(core, &packet);
        if probe.verdict != expected || probe.halt != HaltReason::Completed {
            unrecovered += 1;
        }
    }
    Ok(CampaignOutcome {
        name: "fault_recovery",
        tally,
        latency,
        recoveries: w.router.stats().recoveries,
        details: vec![("unrecovered_after_reset".into(), unrecovered)],
    })
}

/// AC2 / SR2: the mimicry attacker with one leaked hash parameter, replayed
/// across a diversified fleet — and, as the ablation the reproduction
/// documents, across a fleet using the paper's linear sum compression,
/// where the same packet compromises every router.
pub fn evasive_propagation(
    cfg: &CampaignConfig,
    seed: u64,
) -> Result<CampaignOutcome, SdmmonError> {
    let mut tally = Tally::default();
    let mut latency = LatencySteps::default();
    let mut details: Vec<(String, u64)> = Vec::new();
    let mut recoveries = 0u64;
    let program = programs::vulnerable_forward().map_err(|e| SdmmonError::Graph(e.to_string()))?;

    for (label, compression) in [
        ("diversified_sbox", Compression::SBox),
        ("linear_summod16", Compression::SumMod16),
    ] {
        let mut rng =
            StdRng::seed_from_u64(sdmmon_rng::split_seed(seed, compression.to_id() as u64));
        let manufacturer = Manufacturer::new("acme", cfg.key_bits, &mut rng)?;
        let mut operator = NetworkOperator::new("op", cfg.key_bits, &mut rng)?;
        operator.accept_certificate(manufacturer.certify_operator(operator.public_key(), "op"));
        operator.set_compression(compression);
        let mut fleet = Fleet::deploy(
            &manufacturer,
            &operator,
            &program,
            cfg.routers,
            cfg.cores_each,
            cfg.key_bits,
            &mut rng,
        )?;
        let leaked = fleet.routers()[0]
            .installed(0)
            .expect("installed")
            .hash_param;
        let Some(attack) = craft_evasive_hijack(&program, leaked, compression) else {
            details.push((format!("{label}_search_failed"), 1));
            continue;
        };
        let mut escapes_here = 0u64;
        for out in fleet.broadcast(&attack.packet) {
            classify(
                &mut tally,
                &mut latency,
                &out,
                Some(Verdict::Forward(attack.port)),
            );
            if out.halt == HaltReason::Completed && out.verdict == Verdict::Forward(attack.port) {
                escapes_here += 1;
            }
        }
        recoveries += fleet
            .routers()
            .iter()
            .map(|r| r.stats().recoveries)
            .sum::<u64>();
        details.push((format!("{label}_escapes"), escapes_here));
        details.push((format!("{label}_search_runs"), attack.search_runs));
    }

    Ok(CampaignOutcome {
        name: "evasive_propagation",
        tally,
        latency,
        recoveries,
        details,
    })
}

/// The healing loop under fire: every [`TransportFault`] class injected
/// into the download path of a secure deployment, `trials_per_kind` times
/// each, with the retrying/resuming download client in between. Bucket
/// semantics for this campaign:
///
/// * `clean` — the pipeline healed: the bundle arrived bit-exact through
///   the fault stream and installed;
/// * `rejected` — the pipeline gave up within its bounded budget (the
///   quarantine path; expected *only* for the unreachable class) or the
///   control processor rejected a transfer the transport checksum missed;
/// * `escaped` — an installed bundle whose bytes differ from what the
///   operator published (a security failure; must never happen — the
///   signature covers the payload).
///
/// Every trial draws its fault stream from its own derived sub-seed, so
/// the campaign replays byte-for-byte.
pub fn resilient_deploy(
    cfg: &CampaignConfig,
    trials_per_kind: u64,
    seed: u64,
) -> Result<CampaignOutcome, SdmmonError> {
    let mut w = World::new(seed, cfg.cores_each, cfg.key_bits)?;
    let program = programs::ipv4_forward().map_err(|e| SdmmonError::Graph(e.to_string()))?;
    let cores: Vec<usize> = (0..cfg.cores_each).collect();
    let client = DownloadClient::new(
        RetryPolicy::default()
            .with_chunk_bytes(16 * 1024)
            .with_max_attempts(80),
    );
    let base = Channel::ideal_gigabit();
    let path = format!("pkg/{}.sdmmon", w.router.name());

    let mut tally = Tally::default();
    let mut details: Vec<(String, u64)> = Vec::new();
    let mut transport_attempts = 0u64;
    let mut integrity_restarts = 0u64;
    let mut resumed_bytes = 0u64;
    for fault in TransportFault::ALL {
        let mut healed = 0u64;
        for _ in 0..trials_per_kind {
            tally.attempted += 1;
            let bundle = w
                .operator
                .prepare_package(&program, w.router.public_key(), &mut w.rng)?;
            let published = bundle.to_bytes();
            let mut server = FlakyServer::new(FileServer::new(), w.rng.next_u64());
            server.server_mut().publish(path.clone(), published.clone());
            let link = fault.link(base);
            fault.arm(&mut server, &path);
            match client.download(&mut server, &path, &link, &mut w.rng) {
                Ok(report) => {
                    transport_attempts += report.attempts.len() as u64;
                    integrity_restarts += u64::from(report.integrity_restarts);
                    resumed_bytes += report.resumed_bytes as u64;
                    let bit_exact = report.bytes == published;
                    let installed = InstallationBundle::from_bytes(&report.bytes)
                        .map_err(|e| SdmmonError::MalformedPackage(e.to_string()))
                        .and_then(|b| w.router.install_bundle(&b, &cores))
                        .is_ok();
                    match (installed, bit_exact) {
                        (true, true) => {
                            tally.clean += 1;
                            healed += 1;
                        }
                        // Signature verified over different bytes: security
                        // failure.
                        (true, false) => tally.escaped += 1,
                        // The control processor caught what the transport
                        // checksum missed.
                        (false, _) => tally.rejected += 1,
                    }
                }
                // Bounded give-up: the quarantine path.
                Err(_) => tally.rejected += 1,
            }
        }
        details.push((format!("{}_healed", fault.name()), healed));
    }
    details.push(("transport_attempts".into(), transport_attempts));
    details.push(("integrity_restarts".into(), integrity_restarts));
    details.push(("resumed_bytes".into(), resumed_bytes));

    Ok(CampaignOutcome {
        name: "resilient_deploy",
        tally,
        latency: LatencySteps::default(),
        recoveries: w.router.stats().recoveries,
        details,
    })
}

/// The paper's §2.1 detection model at campaign scale: `trials` random
/// `k_max`-instruction deviations tracked through the monitoring NFA
/// (candidate-set semantics, exactly as the hardware monitor resolves
/// ambiguity). Returns one row per `k` in `1..=k_max`; escapes at depth
/// `k` required `k` consecutive 4-bit hash collisions, so the observed
/// rate should track `16^-k`.
pub fn escape_model(trials: u64, k_max: u32, seed: u64) -> Vec<EscapeRow> {
    escape_model_for(Compression::SumMod16, trials, k_max, seed)
}

/// [`escape_model`] generalized over the compression function, so the
/// keyed [`Compression::SipRound`] variant (and the ablation compressions)
/// can be validated against the same `16^-k` curve. The paper's model only
/// needs the per-node hash to be uniform over the parameter; every wired
/// compression is bijective in each argument, so the curve should hold for
/// all of them.
pub fn escape_model_for(
    compression: Compression,
    trials: u64,
    k_max: u32,
    seed: u64,
) -> Vec<EscapeRow> {
    let mut rng = StdRng::seed_from_u64(seed);
    let program = programs::ipv4_forward().expect("embedded workload assembles");
    let hash = MerkleTreeHash::with_compression(rng.gen(), compression);
    let graph = MonitoringGraph::extract(&program, &hash).expect("graph extracts");
    let addrs: Vec<u32> = graph.iter().map(|(a, _)| a).collect();
    let mut escapes = vec![0u64; k_max as usize];
    for _ in 0..trials {
        // The deviation starts while the monitor tracks some valid node.
        let mut candidates = vec![addrs[rng.gen_range(0..addrs.len())]];
        for slot in escapes.iter_mut() {
            // One injected (uniformly random) instruction word retires.
            let observed = hash.hash(rng.gen());
            let mut next = Vec::new();
            let mut matched = false;
            for &c in &candidates {
                if let Some(node) = graph.node(c) {
                    if node.hash == observed {
                        matched = true;
                        next.extend_from_slice(&node.successors);
                    }
                }
            }
            if !matched {
                break;
            }
            *slot += 1;
            next.sort_unstable();
            next.dedup();
            candidates = next;
        }
    }
    escapes
        .iter()
        .enumerate()
        .map(|(i, &e)| EscapeRow {
            k: i as u32 + 1,
            trials,
            escapes: e,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CampaignConfig {
        CampaignConfig::new(3)
            .with_budget(24)
            .with_routers(2)
            .with_escape_trials(200)
    }

    #[test]
    fn stack_smash_accounts_every_trial() {
        let out = stack_smash(&tiny(), 24, 11).unwrap();
        assert_eq!(out.tally.attempted, 24);
        assert!(out.tally.is_accounted(), "{:?}", out.tally);
        assert_eq!(out.latency.count, out.tally.detected);
        assert!(out.tally.detected > 0, "{:?}", out.tally);
        assert!(out.recoveries >= out.tally.detected);
    }

    #[test]
    fn packet_fuzz_never_escapes() {
        let out = packet_fuzz(&tiny(), 30, 12).unwrap();
        assert!(out.tally.is_accounted());
        assert_eq!(out.tally.escaped, 0, "fuzz has no adversarial goal");
    }

    #[test]
    fn wire_faults_all_rejected() {
        let out = wire_faults(&tiny(), 2, 13).unwrap();
        assert!(out.tally.is_accounted());
        assert_eq!(out.tally.escaped, 0, "{:?}", out.details);
        assert_eq!(out.tally.rejected, out.tally.attempted);
        let expected = out
            .details
            .iter()
            .find(|(k, _)| k == "expected_error_variant")
            .unwrap()
            .1;
        assert_eq!(expected, out.tally.attempted, "{:?}", out.details);
    }

    #[test]
    fn fault_recovery_restores_service() {
        let out = fault_recovery(&tiny(), 20, 14).unwrap();
        assert!(out.tally.is_accounted());
        let unrecovered = out
            .details
            .iter()
            .find(|(k, _)| k == "unrecovered_after_reset")
            .unwrap()
            .1;
        assert_eq!(unrecovered, 0, "{:?}", out.tally);
        assert!(out.recoveries > 0);
    }

    #[test]
    fn resilient_deploy_heals_recoverable_classes_only() {
        let out = resilient_deploy(&tiny(), 2, 17).unwrap();
        assert!(out.tally.is_accounted(), "{:?}", out.tally);
        assert_eq!(out.tally.escaped, 0, "installed bytes must be bit-exact");
        let get = |k: &str| {
            out.details
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| *v)
                .unwrap()
        };
        for fault in TransportFault::ALL {
            let healed = get(&format!("{}_healed", fault.name()));
            if fault.recoverable() {
                assert_eq!(healed, 2, "{} should heal every trial", fault.name());
            } else {
                assert_eq!(healed, 0, "{} must end in give-up", fault.name());
            }
        }
        assert!(get("transport_attempts") > 0);
    }

    #[test]
    fn resilient_deploy_replays_per_seed() {
        let a = resilient_deploy(&tiny(), 2, 18).unwrap();
        let b = resilient_deploy(&tiny(), 2, 18).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, resilient_deploy(&tiny(), 2, 19).unwrap());
    }

    #[test]
    fn evasive_propagation_escapes_victim_only_under_sbox() {
        let out = evasive_propagation(&tiny(), 15).unwrap();
        assert!(out.tally.is_accounted());
        let get = |k: &str| out.details.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        // Diversified fleet: the leaked-parameter victim escapes, the
        // linear fleet is fully compromised (escapes == fleet size).
        if let Some(sbox) = get("diversified_sbox_escapes") {
            assert_eq!(sbox, 1, "victim-only escape");
        }
        if let Some(linear) = get("linear_summod16_escapes") {
            assert_eq!(linear, 2, "linear compression transfers everywhere");
        }
        assert!(out.tally.escaped >= 1);
    }

    #[test]
    fn escape_model_rates_decay_geometrically() {
        let rows = escape_model(60_000, 3, 16);
        assert_eq!(rows.len(), 3);
        for w in rows.windows(2) {
            assert!(w[0].escapes >= w[1].escapes, "{rows:?}");
        }
        let p1 = rows[0].observed_rate();
        assert!((0.03..0.12).contains(&p1), "p1 = {p1}");
    }
}
