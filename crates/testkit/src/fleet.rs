//! The fleet-scale deployment scenario: a seeded campaign driving
//! [`sdmmon_core::distrib::deploy_fleet`] — operator → relays → routers —
//! and rendering a byte-stable JSON report.
//!
//! This is the PR 7 campaign surface: `sdmmon deploy --routers N --relays M`
//! and the CI deploy smoke are thin wrappers around [`run_fleet_scale`] +
//! [`fleet_report_json`]. Everything replays byte-identically from the
//! seed — the report contains no wall-clock values, and the per-router rows
//! are summarized (full rows for quarantined routers only) so a 10k-router
//! report stays small and diffable.

use crate::json::Json;
use sdmmon_core::distrib::{deploy_fleet, FleetDeployConfig, FleetScaleReport};
use sdmmon_core::SdmmonError;
use sdmmon_npu::programs;
use sdmmon_obs::EventBus;

/// Schema identifier embedded in every fleet report.
pub const FLEET_SCHEMA: &str = "sdmmon-fleet-v1";

/// One fleet-scale scenario: a master seed plus the deployment knobs.
#[derive(Debug, Clone)]
pub struct FleetScaleConfig {
    /// Master seed; every rng in the run derives from it.
    pub seed: u64,
    /// The deployment tree and fault model.
    pub deploy: FleetDeployConfig,
}

impl FleetScaleConfig {
    /// A clean 16-router / 2-relay scenario at `seed`.
    pub fn new(seed: u64) -> FleetScaleConfig {
        FleetScaleConfig {
            seed,
            deploy: FleetDeployConfig::default(),
        }
    }

    /// Sets the fleet size.
    #[must_use]
    pub fn with_routers(mut self, routers: usize) -> FleetScaleConfig {
        self.deploy.routers = routers;
        self
    }

    /// Sets the relay count.
    #[must_use]
    pub fn with_relays(mut self, relays: usize) -> FleetScaleConfig {
        self.deploy.relays = relays;
        self
    }

    /// Sets loss and corruption probabilities on every link.
    #[must_use]
    pub fn with_faults(mut self, loss: f64, corrupt: f64) -> FleetScaleConfig {
        self.deploy.link = self.deploy.link.with_loss(loss).with_corrupt(corrupt);
        self
    }

    /// Blackholes one router's key document (a deterministic quarantine).
    #[must_use]
    pub fn with_blackhole(mut self, router: usize) -> FleetScaleConfig {
        self.deploy.blackhole_router = Some(router);
        self
    }
}

/// Runs the fleet-scale scenario on the baseline IPv4 forwarding workload,
/// verifying the report's accounting before returning it.
///
/// # Errors
///
/// Propagates systemic failures from [`deploy_fleet`] and surfaces any
/// accounting violation as [`SdmmonError::MalformedPackage`] (a campaign
/// whose books do not balance must fail loudly, not render a report).
pub fn run_fleet_scale(
    cfg: &FleetScaleConfig,
    bus: Option<&EventBus>,
) -> Result<FleetScaleReport, SdmmonError> {
    let program = programs::ipv4_forward().map_err(|e| SdmmonError::Graph(e.to_string()))?;
    let report = deploy_fleet(&cfg.deploy, &program, cfg.seed, bus)?;
    report
        .verify_accounting()
        .map_err(SdmmonError::MalformedPackage)?;
    Ok(report)
}

/// Renders the report as a byte-stable JSON document: run parameters,
/// install/quarantine totals, the egress ledger, and one detail row per
/// *quarantined* router (installed routers are aggregated, keeping a
/// 10k-router report small).
pub fn fleet_report_json(report: &FleetScaleReport) -> Json {
    let quarantined = report
        .rows
        .iter()
        .filter(|r| !r.installed)
        .map(|r| {
            Json::obj([
                ("router", Json::from(r.router)),
                ("relay", Json::from(r.relay)),
                ("cycles", Json::from(r.cycles)),
                ("sections_fetched", Json::from(r.sections_fetched)),
                ("sections_reused", Json::from(r.sections_reused)),
                (
                    "error",
                    r.error
                        .as_deref()
                        .map_or(Json::Null, |e| Json::from(e.to_owned())),
                ),
            ])
        })
        .collect::<Vec<_>>();
    let total_cycles: u64 = report.rows.iter().map(|r| u64::from(r.cycles)).sum();
    Json::obj([
        ("schema", Json::from(FLEET_SCHEMA)),
        ("seed", Json::from(report.seed)),
        ("routers", Json::from(report.routers)),
        ("relays", Json::from(report.relays)),
        ("cores_each", Json::from(report.cores_each)),
        ("key_bits", Json::from(report.key_bits)),
        ("key_pool", Json::from(report.key_pool)),
        ("installed", Json::from(report.installed)),
        ("quarantined", Json::from(report.quarantined)),
        ("relays_synced", Json::from(report.relays_synced)),
        ("deploy_cycles", Json::from(total_cycles)),
        (
            "shared_document_bytes",
            Json::from(report.shared_document_bytes),
        ),
        ("key_document_bytes", Json::from(report.key_document_bytes)),
        ("package_bytes", Json::from(report.package_bytes)),
        (
            "origin_shared_egress_bytes",
            Json::from(report.origin_shared_egress_bytes),
        ),
        (
            "origin_key_egress_bytes",
            Json::from(report.origin_key_egress_bytes),
        ),
        ("relay_egress_bytes", Json::from(report.relay_egress_bytes)),
        ("sections_fetched", Json::from(report.sections_fetched)),
        ("sections_reused", Json::from(report.sections_reused)),
        ("transport_attempts", Json::from(report.transport_attempts)),
        ("quarantined_rows", Json::Array(quarantined)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_scenario_replays_byte_identically() {
        let cfg = FleetScaleConfig::new(42).with_routers(12).with_relays(3);
        let a = fleet_report_json(&run_fleet_scale(&cfg, None).unwrap()).render(0);
        let b = fleet_report_json(&run_fleet_scale(&cfg, None).unwrap()).render(0);
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"sdmmon-fleet-v1\""));
        assert!(a.contains("\"installed\": 12"));
        assert!(a.contains("\"quarantined_rows\": []"));
    }

    #[test]
    fn faulty_scenario_still_balances() {
        let cfg = FleetScaleConfig::new(9)
            .with_routers(10)
            .with_relays(2)
            .with_faults(0.15, 0.15);
        let report = run_fleet_scale(&cfg, None).unwrap();
        assert_eq!(report.installed + report.quarantined, 10);
    }

    #[test]
    fn blackholed_router_appears_in_quarantine_rows() {
        let cfg = FleetScaleConfig::new(5)
            .with_routers(6)
            .with_relays(2)
            .with_blackhole(3);
        let report = run_fleet_scale(&cfg, None).unwrap();
        assert_eq!(report.quarantined_routers, vec![3]);
        let doc = fleet_report_json(&report).render(0);
        assert!(doc.contains("\"router\": 3"), "{doc}");
    }

    #[test]
    fn event_stream_replays_per_seed() {
        let cfg = FleetScaleConfig::new(77).with_routers(8).with_relays(2);
        let bus_a = EventBus::new();
        run_fleet_scale(&cfg, Some(&bus_a)).unwrap();
        let bus_b = EventBus::new();
        run_fleet_scale(&cfg, Some(&bus_b)).unwrap();
        assert_eq!(bus_a.render_jsonl(), bus_b.render_jsonl());
        assert!(bus_a.render_jsonl().contains("fleet.deploy_done"));
    }
}
