//! A minimal, deterministic JSON document builder.
//!
//! The campaign reports must be **byte-identical** across runs with the
//! same seed (the replay contract), so this module avoids everything that
//! could introduce nondeterminism: object members keep insertion order,
//! floats are rendered with a fixed number of decimals, and there is no
//! map type anywhere. It is a writer, not a parser — the reproduction
//! consumes its own reports only through external tooling.

use std::fmt::Write as _;

/// One JSON value. Build with the `From` impls and [`Json::obj`] /
/// [`Json::array`], render with [`Json::render`].
///
/// # Examples
///
/// ```
/// use sdmmon_testkit::json::Json;
///
/// let doc = Json::obj([
///     ("name", Json::from("campaign")),
///     ("trials", Json::from(128u64)),
///     ("rate", Json::fixed(0.0625, 6)),
/// ]);
/// assert_eq!(
///     doc.render(0),
///     "{\n  \"name\": \"campaign\",\n  \"trials\": 128,\n  \"rate\": 0.062500\n}"
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float pre-rendered to a fixed-decimal string (see [`Json::fixed`]).
    Fixed(String),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object whose members keep insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// A float rendered with exactly `decimals` decimal places — the only
    /// float form allowed in reports, so rendering is reproducible.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values (they have no JSON representation).
    pub fn fixed(value: f64, decimals: usize) -> Json {
        assert!(value.is_finite(), "non-finite value in report: {value}");
        Json::Fixed(format!("{value:.decimals$}"))
    }

    /// Renders the document with two-space indentation starting at
    /// `indent` levels.
    pub fn render(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, indent);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Fixed(s) => out.push_str(s),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let doc = Json::obj([
            ("a", Json::array([Json::from(1u64), Json::Null])),
            ("b", Json::obj([("c", Json::from(true))])),
            ("empty_a", Json::array([])),
            ("empty_o", Json::obj(Vec::<(&str, Json)>::new())),
        ]);
        let text = doc.render(0);
        assert!(text.contains("\"a\": [\n    1,\n    null\n  ]"), "{text}");
        assert!(text.contains("\"empty_a\": []"), "{text}");
        assert!(text.contains("\"empty_o\": {}"), "{text}");
    }

    #[test]
    fn escapes_strings() {
        let doc = Json::from("a\"b\\c\nd\u{1}");
        assert_eq!(doc.render(0), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn fixed_floats_are_stable() {
        assert_eq!(Json::fixed(1.0 / 16.0, 8).render(0), "0.06250000");
        assert_eq!(Json::fixed(0.0, 2).render(0), "0.00");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_rejected() {
        Json::fixed(f64::NAN, 2);
    }
}
