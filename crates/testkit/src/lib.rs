//! # sdmmon-testkit — deterministic fault injection & adversarial campaigns
//!
//! The reproduction's security claims are statements about *populations* of
//! attacks and faults: escape probability falls as 16⁻ᵏ, every wire-level
//! tamper is rejected with the error of the security requirement it
//! violates, recovery restores service after arbitrary instruction-memory
//! corruption. One hand-written test per claim exercises one point of each
//! population; this crate mass-produces the rest.
//!
//! Three layers, all driven by `sdmmon-rng` so an entire campaign replays
//! byte-for-byte from a single `u64` seed:
//!
//! * [`fault`] — the fault-injection primitives: wire-level tampering of
//!   serialized installation bundles (signature/ciphertext/IV bit flips,
//!   foreign key wraps, forged certificates, truncation), live bit flips in
//!   a core's instruction memory, forced mid-run core resets, and packet
//!   mutation.
//! * [`campaign`] — adversarial campaign generators that push attack and
//!   fault variants through the full protocol stack ([`sdmmon_core::system`])
//!   and record detection latency (in retired instructions), escape counts,
//!   and recovery cycles into a strictly accounted [`campaign::Tally`].
//! * [`differential`] — property harnesses asserting that every PR-1 fast
//!   path (parallel deploy, Montgomery/CRT RSA, pre-decoded instruction
//!   cache) stays bit-identical to its in-tree oracle *under injected
//!   faults*, not just on the happy path.
//!
//! [`report::run_campaign`] composes all three into a [`report::CampaignReport`]
//! whose JSON rendering ([`json`]) contains no wall-clock values — two runs
//! with the same seed produce byte-identical reports. The `sdmmon campaign`
//! CLI subcommand and the `detection_sweep` bench binary are thin wrappers
//! around it.
//!
//! # Examples
//!
//! ```
//! use sdmmon_testkit::campaign::CampaignConfig;
//! use sdmmon_testkit::report::run_campaign;
//!
//! let config = CampaignConfig::new(7).with_budget(40).with_escape_trials(500);
//! let report = run_campaign(&config).expect("campaign runs");
//! report.verify_accounting().expect("every trial accounted for");
//! let again = run_campaign(&config).expect("campaign replays");
//! assert_eq!(report.to_json(), again.to_json(), "seeded replay is exact");
//! ```

pub mod campaign;
pub mod differential;
pub mod fault;
pub mod fleet;
pub mod frontier;
pub mod json;
pub mod report;

pub use campaign::{CampaignConfig, CampaignOutcome, EscapeRow, Tally};
pub use differential::DifferentialReport;
pub use fault::{WireFault, WireFaultInjector};
pub use fleet::{fleet_report_json, run_fleet_scale, FleetScaleConfig, FLEET_SCHEMA};
pub use frontier::{
    frontier_json, frontier_table, run_frontier, FrontierCell, FrontierConfig, FrontierReport,
    FRONTIER_SCHEMA,
};
pub use report::{run_campaign, run_campaign_observed, CampaignReport};
