//! The availability-vs-security frontier: a policy sweep quantifying the
//! tradeoff the graded supervisor navigates.
//!
//! The graded response table (`sdmmon_npu::supervisor`) buys security with
//! availability: throttling halves a core's dispatch share, quarantine
//! removes it, zeroize destroys its wrapped key, and lockdown stops the
//! device. Each step admits fewer evasive escapes *and* serves fewer
//! benign packets. This module measures both ends of that trade on one
//! campaign grid:
//!
//! * **Scenarios** — attack intensities. An adversary who has obtained one
//!   router's secret hash parameter (the shared-bundle leak of the
//!   `evasive_propagation` campaign) sends a mix of *evasive* hijacks
//!   (hash-colliding, complete undetected — the escapes) and *noisy*
//!   hijacks (ordinary stack smashes the monitors catch — the signal the
//!   supervisor's EWMA baselines respond to). All attack packets share one
//!   flow, so the noise automatically lands on whichever core currently
//!   serves the evasive flow.
//! * **Policies** — a strictness ladder from `off`
//!   ([`SupervisorPolicy::never`], reset-only recovery: maximum service,
//!   every escape admitted) through `lenient`/`default`/`strict` to
//!   `paranoid` (hair-trigger thresholds, long parole).
//!
//! Each `(scenario, policy)` cell drives the same seeded traffic through a
//! securely installed [`sdmmon_core::entities::RouterDevice`] with a
//! bounded per-core ingress
//! capacity (a throttled core accepts half), counts benign packets served
//! and evasive escapes admitted, and stops feeding when the device latches
//! lockdown or runs out of dispatchable cores. The report renders as a
//! deterministic `sdmmon-frontier-v1` JSON document and an ASCII table;
//! two runs with the same seed are byte-identical.

use crate::json::Json;
use sdmmon_core::entities::{Manufacturer, NetworkOperator};
use sdmmon_core::system::craft_evasive_hijack;
use sdmmon_core::SdmmonError;
use sdmmon_npu::programs::{self, testing};
use sdmmon_npu::runtime::{HaltReason, PacketOutcome, Verdict};
use sdmmon_npu::supervisor::{AdaptiveConfig, SupervisorPolicy};
use sdmmon_obs::{bucket_index, percentile, EventBus, HIST_BUCKETS};
use sdmmon_rng::{split_seed, Rng, SeedableRng, StdRng};
use std::sync::Arc;

/// Schema identifier embedded in every frontier report.
pub const FRONTIER_SCHEMA: &str = "sdmmon-frontier-v1";

/// One frontier sweep: a master seed plus the traffic and capacity knobs.
#[derive(Debug, Clone)]
pub struct FrontierConfig {
    /// Master seed; every cell derives its own rng from it.
    pub seed: u64,
    /// NP cores per router.
    pub cores: usize,
    /// RSA modulus size for the install protocol (small keys are fine —
    /// the sweep measures the data plane, not the crypto).
    pub key_bits: usize,
    /// Batches offered per cell (a cell may stop early on lockdown).
    pub batches: usize,
    /// Packets offered per batch.
    pub batch_packets: usize,
    /// Per-core ingress capacity per batch; a throttled core accepts half.
    pub core_capacity: usize,
}

impl FrontierConfig {
    /// The full campaign grid at `seed`.
    pub fn new(seed: u64) -> FrontierConfig {
        FrontierConfig {
            seed,
            cores: 4,
            key_bits: 512,
            batches: 24,
            // Offered load exceeds the healthy fleet's capacity (4×8), so
            // ingress is always the bottleneck and every throttled or
            // quarantined core costs served packets *systematically* —
            // not just through flow-remap luck.
            batch_packets: 36,
            core_capacity: 8,
        }
    }

    /// A reduced grid for CI smoke runs (`sdmmon frontier --quick`).
    #[must_use]
    pub fn quick(mut self) -> FrontierConfig {
        self.batches = 10;
        self
    }
}

/// One policy point on the strictness ladder.
struct PolicyPoint {
    name: &'static str,
    policy: SupervisorPolicy,
}

/// The five-point strictness ladder, loosest first. `off` is reset-only
/// recovery; the graded points share the default EWMA shifts and scale
/// their thresholds and parole length.
fn policy_ladder() -> Vec<PolicyPoint> {
    let graded = |low, elevated, high, critical, parole| {
        SupervisorPolicy::graded(AdaptiveConfig {
            low,
            elevated,
            high,
            critical,
            parole_batches: parole,
            ..AdaptiveConfig::default()
        })
    };
    vec![
        PolicyPoint {
            name: "off",
            policy: SupervisorPolicy::never(),
        },
        PolicyPoint {
            name: "lenient",
            policy: graded(120, 360, 640, 900, 2),
        },
        PolicyPoint {
            name: "default",
            policy: graded(60, 180, 320, 520, 4),
        },
        PolicyPoint {
            name: "strict",
            policy: graded(30, 90, 160, 260, 6),
        },
        PolicyPoint {
            name: "paranoid",
            policy: graded(15, 45, 80, 130, 8),
        },
    ]
}

/// One attack-intensity scenario: `attack_num` of every `attack_den`
/// offered packets are attacks, and every `evasive_every`-th attack is the
/// evasive (escaping) variant.
struct Scenario {
    name: &'static str,
    attack_num: u64,
    attack_den: u64,
    evasive_every: u64,
}

const SCENARIOS: [Scenario; 2] = [
    Scenario {
        name: "light",
        attack_num: 1,
        attack_den: 8,
        evasive_every: 3,
    },
    Scenario {
        name: "heavy",
        attack_num: 1,
        attack_den: 3,
        evasive_every: 3,
    },
];

/// Measured outcome of one `(scenario, policy)` cell.
#[derive(Debug, Clone)]
pub struct FrontierCell {
    /// Policy name on the strictness ladder (`off` … `paranoid`).
    pub policy: &'static str,
    /// 0-based ladder position (0 = loosest).
    pub strictness: usize,
    /// Packets the traffic generator offered before service stopped.
    pub offered: u64,
    /// Benign packets forwarded end-to-end (the availability axis).
    pub served: u64,
    /// Evasive hijacks that completed and forwarded (the security axis).
    pub escapes: u64,
    /// Packets shed at ingress by the capacity model.
    pub shed: u64,
    /// Monitor violations (noisy attacks caught).
    pub detections: u64,
    /// `supervisor.throttle` events.
    pub throttles: u64,
    /// `supervisor.quarantine` events.
    pub quarantines: u64,
    /// `supervisor.zeroize` events.
    pub zeroizes: u64,
    /// `supervisor.parole` events.
    pub paroles: u64,
    /// `supervisor.forensic` window entries flushed.
    pub forensics: u64,
    /// 1-based batch at which service stopped (lockdown or no
    /// dispatchable core), or `None` if the cell ran to completion.
    pub halted_batch: Option<u64>,
    /// Detection-latency histogram over [`HIST_BUCKETS`] powers of two.
    pub latency_hist: [u64; HIST_BUCKETS],
}

impl FrontierCell {
    /// The `q`-quantile (in per-cent) of the detection-latency histogram,
    /// reported as the lower bound of the bucket that crosses it — the
    /// shared [`sdmmon_obs::percentile`] convention.
    pub fn latency_quantile(&self, percent: u64) -> u64 {
        percentile(&self.latency_hist, percent * 10)
    }
}

/// One scenario's sweep across the policy ladder.
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// Scenario name (`light` / `heavy`).
    pub name: &'static str,
    /// Attack rate numerator.
    pub attack_num: u64,
    /// Attack rate denominator.
    pub attack_den: u64,
    /// One cell per ladder point, loosest first.
    pub cells: Vec<FrontierCell>,
}

/// The full frontier report.
#[derive(Debug, Clone)]
pub struct FrontierReport {
    /// The configuration that produced it.
    pub config: FrontierConfig,
    /// One row per scenario.
    pub scenarios: Vec<ScenarioRow>,
}

impl FrontierReport {
    /// Verifies the frontier is a monotone tradeoff: along the strictness
    /// ladder, every step serves no more benign packets *and* admits no
    /// more escapes, and at least one step strictly reduces each.
    ///
    /// # Errors
    ///
    /// Returns the first violated comparison, rendered for a test message.
    pub fn verify_monotone(&self) -> Result<(), String> {
        for row in &self.scenarios {
            let mut served_drops = 0u64;
            let mut escape_drops = 0u64;
            for pair in row.cells.windows(2) {
                let (loose, strict) = (&pair[0], &pair[1]);
                if strict.served > loose.served {
                    return Err(format!(
                        "{}: {} serves {} > {} served by looser {}",
                        row.name, strict.policy, strict.served, loose.served, loose.policy
                    ));
                }
                if strict.escapes > loose.escapes {
                    return Err(format!(
                        "{}: {} admits {} escapes > {} admitted by looser {}",
                        row.name, strict.policy, strict.escapes, loose.escapes, loose.policy
                    ));
                }
                served_drops += u64::from(strict.served < loose.served);
                escape_drops += u64::from(strict.escapes < loose.escapes);
            }
            if served_drops == 0 || escape_drops == 0 {
                return Err(format!(
                    "{}: the ladder never strictly traded (served drops {}, escape drops {})",
                    row.name, served_drops, escape_drops
                ));
            }
        }
        Ok(())
    }
}

/// Counts drained from a cell's event stream.
#[derive(Default)]
struct EventCounts {
    throttles: u64,
    quarantines: u64,
    zeroizes: u64,
    paroles: u64,
    forensics: u64,
}

fn count_events(bus: &EventBus) -> EventCounts {
    let mut c = EventCounts::default();
    for event in bus.take() {
        match event.kind {
            "supervisor.throttle" => c.throttles += 1,
            "supervisor.quarantine" => c.quarantines += 1,
            "supervisor.zeroize" => c.zeroizes += 1,
            "supervisor.parole" => c.paroles += 1,
            "supervisor.forensic" => c.forensics += 1,
            _ => {}
        }
    }
    c
}

/// A benign packet with a seeded flow identity, forwarded by the
/// vulnerable forwarder (destination low nibble 1–15 selects the port).
fn benign_packet(rng: &mut StdRng) -> Vec<u8> {
    let src = [10, rng.gen_range(0..8u8), rng.gen_range(0..255u8), 1];
    let low = rng.gen_range(1..16u8);
    let dst = [10, 0, 0, (rng.gen_range(0..15u8) << 4) | low];
    testing::ipv4_packet(src, dst, 64, b"frontier")
}

/// Pre-generates the noisy attack pool: randomized stack smashes that the
/// monitor detects (the supervisor's signal). All hijack packets share one
/// flow, so the pool follows the evasive flow's core automatically.
fn noisy_pool(rng: &mut StdRng) -> Vec<Vec<u8>> {
    let regs = ["$t5", "$t0", "$t2", "$t7", "$v0"];
    (0..8)
        .map(|_| {
            let rt = regs[rng.gen_range(0..regs.len())];
            let port = rng.gen_range(1..=255u32);
            let mut asm = String::new();
            for _ in 0..rng.gen_range(0..4usize) {
                asm.push_str(&format!("ori $zero, $zero, 0x{:x}\n", rng.gen::<u16>()));
            }
            asm.push_str(&format!(
                "addiu {rt}, $zero, {port}\nsw {rt}, -16($s0)\nbreak 0"
            ));
            testing::hijack_packet(&asm).expect("noisy payload assembles")
        })
        .collect()
}

/// Runs one `(scenario, policy)` cell.
fn run_cell(
    cfg: &FrontierConfig,
    scenario: &Scenario,
    point: &PolicyPoint,
    strictness: usize,
    cell_seed: u64,
) -> Result<FrontierCell, SdmmonError> {
    let mut rng = StdRng::seed_from_u64(cell_seed);
    let manufacturer = Manufacturer::new("acme", cfg.key_bits, &mut rng)?;
    let mut operator = NetworkOperator::new("op", cfg.key_bits, &mut rng)?;
    operator.accept_certificate(manufacturer.certify_operator(operator.public_key(), "op"));
    let mut router = manufacturer.provision_router("r-0", cfg.cores, cfg.key_bits, &mut rng)?;

    // One bundle on every core: the shared-parameter deployment whose leak
    // the evasive attacker exploits.
    let program = programs::vulnerable_forward().map_err(|e| SdmmonError::Graph(e.to_string()))?;
    let bundle = operator.prepare_package(&program, router.public_key(), &mut rng)?;
    let cores: Vec<usize> = (0..cfg.cores).collect();
    router.install_bundle(&bundle, &cores)?;
    router.set_supervisor_policy(point.policy);
    let bus = Arc::new(EventBus::new());
    router.set_event_bus(Some(bus.clone()));

    let leaked = router.installed(0).expect("just installed").hash_param;
    let compression = operator.compression();
    let evasive = craft_evasive_hijack(&program, leaked, compression)
        .ok_or_else(|| SdmmonError::Graph("evasive search found no collision path".into()))?;
    let noisy = noisy_pool(&mut rng);

    let mut cell = FrontierCell {
        policy: point.name,
        strictness,
        offered: 0,
        served: 0,
        escapes: 0,
        shed: 0,
        detections: 0,
        throttles: 0,
        quarantines: 0,
        zeroizes: 0,
        paroles: 0,
        forensics: 0,
        halted_batch: None,
        latency_hist: [0; HIST_BUCKETS],
    };

    #[derive(Clone, Copy, PartialEq)]
    enum Kind {
        Benign,
        Noisy,
        Evasive,
    }

    let mut attacks_sent = 0u64;
    'batches: for batch in 1..=cfg.batches as u64 {
        if router.is_locked_down() || router.active_cores().is_empty() {
            cell.halted_batch = Some(batch);
            break 'batches;
        }
        // Offer the batch, shedding at per-core ingress capacity (the
        // availability cost of throttle/quarantine: survivors inherit the
        // load and overflow).
        let mut kept: Vec<(Kind, Vec<u8>)> = Vec::with_capacity(cfg.batch_packets);
        let mut admitted = vec![0usize; cfg.cores];
        for _ in 0..cfg.batch_packets {
            cell.offered += 1;
            let (kind, packet) = if rng.gen_range(0..scenario.attack_den) < scenario.attack_num {
                attacks_sent += 1;
                if attacks_sent.is_multiple_of(scenario.evasive_every) {
                    (Kind::Evasive, evasive.packet.clone())
                } else {
                    let variant = rng.gen_range(0..noisy.len());
                    (Kind::Noisy, noisy[variant].clone())
                }
            } else {
                (Kind::Benign, benign_packet(&mut rng))
            };
            let core = router.dispatch_core(&packet);
            let cap = if router.is_throttled(core) {
                (cfg.core_capacity / 2).max(1)
            } else {
                cfg.core_capacity
            };
            if admitted[core] >= cap {
                cell.shed += 1;
                continue;
            }
            admitted[core] += 1;
            kept.push((kind, packet));
        }
        let packets: Vec<Vec<u8>> = kept.iter().map(|(_, p)| p.clone()).collect();
        let outcomes: Vec<(usize, PacketOutcome)> = router.process_batch(&packets);
        for ((kind, _), (_, out)) in kept.iter().zip(&outcomes) {
            match out.halt {
                HaltReason::MonitorViolation => {
                    cell.detections += 1;
                    cell.latency_hist[bucket_index(out.steps)] += 1;
                }
                HaltReason::Completed => match kind {
                    Kind::Benign if matches!(out.verdict, Verdict::Forward(_)) => cell.served += 1,
                    Kind::Evasive if out.verdict == Verdict::Forward(evasive.port) => {
                        cell.escapes += 1;
                    }
                    _ => {}
                },
                HaltReason::Fault(_) | HaltReason::StepLimit => {}
            }
        }
    }

    let counts = count_events(&bus);
    cell.throttles = counts.throttles;
    cell.quarantines = counts.quarantines;
    cell.zeroizes = counts.zeroizes;
    cell.paroles = counts.paroles;
    cell.forensics = counts.forensics;
    Ok(cell)
}

/// Runs the full campaign grid: every scenario × every ladder point, each
/// cell from its own derived sub-seed, so the report replays byte-for-byte.
///
/// # Errors
///
/// Propagates install-protocol failures and an evasive-search miss (the
/// leaked-parameter attack must exist for the security axis to mean
/// anything).
pub fn run_frontier(cfg: &FrontierConfig) -> Result<FrontierReport, SdmmonError> {
    let ladder = policy_ladder();
    let mut scenarios = Vec::with_capacity(SCENARIOS.len());
    for (s, scenario) in SCENARIOS.iter().enumerate() {
        let mut cells = Vec::with_capacity(ladder.len());
        for (p, point) in ladder.iter().enumerate() {
            // All ladder points of a scenario share one sub-seed, so every
            // policy faces the *same* traffic realization — the sweep is a
            // paired comparison and the cells differ only by policy.
            let cell_seed = split_seed(cfg.seed, s as u64);
            cells.push(run_cell(cfg, scenario, point, p, cell_seed)?);
        }
        scenarios.push(ScenarioRow {
            name: scenario.name,
            attack_num: scenario.attack_num,
            attack_den: scenario.attack_den,
            cells,
        });
    }
    Ok(FrontierReport {
        config: cfg.clone(),
        scenarios,
    })
}

/// Renders the report as a byte-stable `sdmmon-frontier-v1` JSON document.
pub fn frontier_json(report: &FrontierReport) -> Json {
    let cfg = &report.config;
    let scenarios = report.scenarios.iter().map(|row| {
        let cells = row.cells.iter().map(|c| {
            Json::obj([
                ("policy", Json::from(c.policy)),
                ("strictness", Json::from(c.strictness)),
                ("offered", Json::from(c.offered)),
                ("served", Json::from(c.served)),
                ("escapes", Json::from(c.escapes)),
                ("shed", Json::from(c.shed)),
                ("detections", Json::from(c.detections)),
                ("throttles", Json::from(c.throttles)),
                ("quarantines", Json::from(c.quarantines)),
                ("zeroizes", Json::from(c.zeroizes)),
                ("paroles", Json::from(c.paroles)),
                ("forensics", Json::from(c.forensics)),
                (
                    "halted_batch",
                    c.halted_batch.map_or(Json::Null, Json::from),
                ),
                ("latency_p50", Json::from(c.latency_quantile(50))),
                ("latency_p99", Json::from(c.latency_quantile(99))),
            ])
        });
        Json::obj([
            ("name", Json::from(row.name)),
            ("attack_num", Json::from(row.attack_num)),
            ("attack_den", Json::from(row.attack_den)),
            ("cells", Json::array(cells)),
        ])
    });
    Json::obj([
        ("schema", Json::from(FRONTIER_SCHEMA)),
        ("seed", Json::from(cfg.seed)),
        ("cores", Json::from(cfg.cores)),
        ("key_bits", Json::from(cfg.key_bits)),
        ("batches", Json::from(cfg.batches)),
        ("batch_packets", Json::from(cfg.batch_packets)),
        ("core_capacity", Json::from(cfg.core_capacity)),
        ("scenarios", Json::array(scenarios)),
    ])
}

/// Renders the packets-served vs escapes-admitted table the CLI prints.
pub fn frontier_table(report: &FrontierReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for row in &report.scenarios {
        let _ = writeln!(
            out,
            "scenario {} (attacks {}/{} of offered traffic)",
            row.name, row.attack_num, row.attack_den
        );
        let _ = writeln!(
            out,
            "  {:<9} {:>7} {:>7} {:>7} {:>5} {:>9} {:>11} {:>8} {:>7} {:>7}",
            "policy",
            "served",
            "escapes",
            "shed",
            "det",
            "throttles",
            "quarantines",
            "zeroizes",
            "paroles",
            "halted"
        );
        for c in &row.cells {
            let halted = c
                .halted_batch
                .map_or_else(|| "-".to_owned(), |b| format!("b{b}"));
            let _ = writeln!(
                out,
                "  {:<9} {:>7} {:>7} {:>7} {:>5} {:>9} {:>11} {:>8} {:>7} {:>7}",
                c.policy,
                c.served,
                c.escapes,
                c.shed,
                c.detections,
                c.throttles,
                c.quarantines,
                c.zeroizes,
                c.paroles,
                halted
            );
        }
    }
    out
}
