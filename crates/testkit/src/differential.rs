//! Differential/property harnesses: every fast path introduced by the
//! performance overhaul is checked bit-for-bit against its slow in-tree
//! oracle — *under injected faults*, not just on well-formed inputs.
//!
//! * parallel [`Fleet::deploy`] ≡ [`Fleet::deploy_serial`], including when
//!   the deployed program carries injected bit flips (both sides must fail
//!   with the *same* error);
//! * Montgomery/CRT RSA ≡ the plain square-and-multiply oracle, including
//!   degenerate and bit-flipped ciphertexts;
//! * the pre-decoded instruction cache ≡ the uncached interpreter, over
//!   corrupted text segments and hostile packets, compared retire-by-retire;
//! * the sharded batch engine ≡ the serial per-instruction oracle, over
//!   monitored cores with injected instruction-memory faults, hijack
//!   packets, and mutated traffic — outcomes *and* statistics;
//! * the streaming ingest engine (bounded ingress + deterministic work
//!   stealing) ≡ its serial oracle, over open-loop heavy-tailed rounds
//!   salted with hijacks — outcomes, backpressure accounting, *and*
//!   statistics.

use crate::fault::mutate_packet;
use sdmmon_core::entities::{Manufacturer, NetworkOperator};
use sdmmon_core::system::Fleet;
use sdmmon_core::SdmmonError;
use sdmmon_crypto::bignum::BigUint;
use sdmmon_crypto::rsa::RsaKeyPair;
use sdmmon_isa::Reg;
use sdmmon_monitor::{HardwareMonitor, MerkleTreeHash, MonitoringGraph};
use sdmmon_net::traffic::{OpenLoopConfig, OpenLoopSource};
use sdmmon_npu::cpu::{Cpu, DecodeCache, Trap};
use sdmmon_npu::mem::Memory;
use sdmmon_npu::np::{NetworkProcessor, StreamConfig};
use sdmmon_npu::programs::{self, testing};
use sdmmon_npu::runtime::{
    Verdict, MEM_SIZE, PKT_DATA_ADDR, PKT_LEN_ADDR, STACK_TOP, VERDICT_ADDR,
};
use sdmmon_npu::supervisor::SupervisorPolicy;
use sdmmon_rng::{Rng, RngCore, SeedableRng, StdRng};

/// Outcome of one differential check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffCheck {
    /// Stable snake_case check name.
    pub name: &'static str,
    /// Input pairs compared.
    pub trials: u64,
    /// Pairs where fast path and oracle disagreed. Must be zero.
    pub divergences: u64,
}

/// All differential checks of one campaign run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DifferentialReport {
    /// The individual checks, in a fixed order.
    pub checks: Vec<DiffCheck>,
}

impl DifferentialReport {
    /// Total disagreements across all checks (the acceptance gate: 0).
    pub fn total_divergences(&self) -> u64 {
        self.checks.iter().map(|c| c.divergences).sum()
    }
}

/// Trial counts for [`run_differentials`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffBudget {
    /// RSA private-op input pairs.
    pub rsa_trials: u64,
    /// Montgomery-vs-binary `mod_pow` input pairs.
    pub modpow_trials: u64,
    /// Parallel-vs-serial fleet deployment rounds (each deploys two
    /// fleets, half of them over fault-injected programs).
    pub deploy_rounds: u64,
    /// Cached-vs-uncached execution runs (each over corrupted text and a
    /// hostile or mutated packet).
    pub decode_runs: u64,
    /// Sharded-vs-serial batch runs (each over monitored cores with
    /// injected instruction-memory faults and hostile traffic).
    pub batch_runs: u64,
    /// Streaming-vs-serial runs (each pushes open-loop heavy-tailed rounds
    /// through the bounded ingress + work-stealing engine and its serial
    /// oracle, over monitored cores with injected faults).
    pub stream_runs: u64,
}

impl DiffBudget {
    /// The smoke-sized default used by `run_campaign`.
    pub fn smoke() -> DiffBudget {
        DiffBudget {
            rsa_trials: 24,
            modpow_trials: 24,
            deploy_rounds: 3,
            decode_runs: 16,
            batch_runs: 6,
            stream_runs: 4,
        }
    }
}

/// Runs every differential check with its own sub-seed.
///
/// # Errors
///
/// Propagates infrastructure failures (key generation, packaging); a
/// *divergence* is never an error — it is counted and reported.
pub fn run_differentials(seed: u64, budget: DiffBudget) -> Result<DifferentialReport, SdmmonError> {
    Ok(DifferentialReport {
        checks: vec![
            rsa_crt_vs_plain(budget.rsa_trials, sdmmon_rng::split_seed(seed, 0))?,
            modpow_fast_vs_binary(budget.modpow_trials, sdmmon_rng::split_seed(seed, 1)),
            deploy_parallel_vs_serial(budget.deploy_rounds, sdmmon_rng::split_seed(seed, 2))?,
            decode_cached_vs_uncached(budget.decode_runs, sdmmon_rng::split_seed(seed, 3)),
            sharded_batch_vs_serial(budget.batch_runs, sdmmon_rng::split_seed(seed, 4)),
            stream_steal_vs_serial(budget.stream_runs, sdmmon_rng::split_seed(seed, 5)),
        ],
    })
}

/// CRT private op vs the plain `c^d mod n` oracle: degenerate inputs
/// (0, 1, n−1), uniform ciphertexts, and oversized out-of-range values —
/// what an attacker-controlled wrapped key actually delivers.
fn rsa_crt_vs_plain(trials: u64, seed: u64) -> Result<DiffCheck, SdmmonError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let keys = RsaKeyPair::generate(512, &mut rng)?;
    let n = BigUint::from_be_bytes(&keys.public.modulus_bytes());
    let mut inputs = vec![
        BigUint::zero(),
        BigUint::one(),
        n.checked_sub(&BigUint::one()).expect("n >= 1"),
    ];
    while (inputs.len() as u64) < trials {
        if inputs.len() % 2 == 0 {
            inputs.push(BigUint::random_below(&n, &mut rng));
        } else {
            // Out of range on purpose: larger than the modulus.
            let mut bytes = vec![0u8; 70];
            rng.fill_bytes(&mut bytes);
            bytes[0] |= 0x80;
            inputs.push(BigUint::from_be_bytes(&bytes));
        }
    }
    let mut divergences = 0u64;
    for c in &inputs {
        if keys.private.private_op_crt(c) != keys.private.private_op_plain(c) {
            divergences += 1;
        }
    }
    Ok(DiffCheck {
        name: "rsa_crt_vs_plain",
        trials: inputs.len() as u64,
        divergences,
    })
}

/// Montgomery `mod_pow_fast` vs binary `mod_pow` over random odd moduli.
fn modpow_fast_vs_binary(trials: u64, seed: u64) -> DiffCheck {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut divergences = 0u64;
    for _ in 0..trials {
        let mut m = vec![0u8; 32];
        rng.fill_bytes(&mut m);
        m[0] |= 0x80; // full width
        m[31] |= 1; // odd, as Montgomery requires
        let modulus = BigUint::from_be_bytes(&m);
        let base = BigUint::random_below(&modulus, &mut rng);
        let mut e = vec![0u8; 8];
        rng.fill_bytes(&mut e);
        let exponent = BigUint::from_be_bytes(&e);
        if base.mod_pow_fast(&exponent, &modulus) != base.mod_pow(&exponent, &modulus) {
            divergences += 1;
        }
    }
    DiffCheck {
        name: "modpow_montgomery_vs_binary",
        trials,
        divergences,
    }
}

/// Observable state of one deployed fleet, for equality comparison.
fn fleet_fingerprint(fleet: &Fleet) -> Vec<(String, Vec<u8>, Option<u32>)> {
    fleet
        .routers()
        .iter()
        .map(|r| {
            (
                r.name().to_owned(),
                r.public_key().modulus_bytes(),
                r.installed(0).map(|a| a.hash_param),
            )
        })
        .collect()
}

/// Parallel vs serial fleet deployment from identically seeded worlds.
/// Every second round deploys a program with injected word bit flips, so
/// the comparison also covers the error path (both sides must reject
/// identically — `SdmmonError` is `PartialEq`).
fn deploy_parallel_vs_serial(rounds: u64, seed: u64) -> Result<DiffCheck, SdmmonError> {
    let base_program = programs::ipv4_forward().map_err(|e| SdmmonError::Graph(e.to_string()))?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut divergences = 0u64;
    for round in 0..rounds {
        let mut program = base_program.clone();
        if round % 2 == 1 {
            // Injected fault: corrupt a few instruction words. Extraction
            // may fail (undecodable word) or succeed with a warped graph —
            // either way both deployment paths must agree exactly.
            for _ in 0..rng.gen_range(1..=3u32) {
                let i = rng.gen_range(0..program.words.len());
                program.words[i] ^= 1 << rng.gen_range(0..32u32);
            }
        }
        let world_seed = rng.next_u64();
        let world = |seed: u64| -> Result<(Manufacturer, NetworkOperator, StdRng), SdmmonError> {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = Manufacturer::new("acme", 512, &mut rng)?;
            let mut o = NetworkOperator::new("op", 512, &mut rng)?;
            o.accept_certificate(m.certify_operator(o.public_key(), "op"));
            Ok((m, o, rng))
        };
        let (m_par, o_par, mut rng_par) = world(world_seed)?;
        let (m_ser, o_ser, mut rng_ser) = world(world_seed)?;
        let parallel = Fleet::deploy(&m_par, &o_par, &program, 3, 1, 512, &mut rng_par);
        let serial = Fleet::deploy_serial(&m_ser, &o_ser, &program, 3, 1, 512, &mut rng_ser);
        let agree = match (&parallel, &serial) {
            (Ok(p), Ok(s)) => {
                p.reports() == s.reports() && fleet_fingerprint(p) == fleet_fingerprint(s)
            }
            (Err(p), Err(s)) => p == s,
            _ => false,
        };
        if !agree {
            divergences += 1;
        }
    }
    Ok(DiffCheck {
        name: "deploy_parallel_vs_serial",
        trials: rounds,
        divergences,
    })
}

/// FNV-1a fold of one retired-instruction record into a run digest.
fn fold(digest: u64, values: &[u32]) -> u64 {
    let mut d = digest;
    for &v in values {
        for b in v.to_le_bytes() {
            d ^= b as u64;
            d = d.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    d
}

/// Cached vs uncached execution: two bare cores with identical images,
/// identical injected text corruption, identical staged packets — stepped
/// side by side, comparing the full retire stream (pc, word, next pc), the
/// terminal trap, and the final verdict word.
///
/// The corruption is written *before* the cache is built: a standalone
/// [`DecodeCache`] only tracks stores made through [`Cpu::step_cached`],
/// so pre-run corruption must be part of the cached image, exactly as it
/// is on a real core (the NP invalidates on its install/inject write path).
fn decode_cached_vs_uncached(runs: u64, seed: u64) -> DiffCheck {
    const STEP_CAP: u64 = 200_000;
    let mut rng = StdRng::seed_from_u64(seed);
    let program = programs::ipv4_forward().expect("embedded workload assembles");
    let vulnerable = programs::vulnerable_forward().expect("embedded workload assembles");
    let mut divergences = 0u64;
    for run in 0..runs {
        let (prog, packet) = match run % 3 {
            0 => (
                &program,
                testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, rng.gen_range(1..=15u8)], 64, b"x"),
            ),
            1 => {
                let mut p = testing::ipv4_packet(
                    [10, 0, 0, 1],
                    [10, 0, 0, rng.gen_range(1..=15u8)],
                    64,
                    b"x",
                );
                mutate_packet(&mut p, &mut rng);
                (&program, p)
            }
            _ => (
                &vulnerable,
                testing::hijack_packet("li $t4, 0x0007fff0\nli $t5, 9\nsw $t5, 0($t4)\nbreak 0")
                    .expect("hijack payload assembles"),
            ),
        };
        let image = prog.to_bytes();

        let stage = |flips: &[(u32, u32)]| -> (Cpu, Memory) {
            let mut mem = Memory::new(MEM_SIZE);
            mem.write_bytes(prog.base, &image).expect("image fits");
            for &(addr, bit) in flips {
                let word = mem.load_u32(addr).expect("text mapped");
                mem.store_u32(addr, word ^ (1 << bit)).expect("text mapped");
            }
            mem.store_u32(PKT_LEN_ADDR, packet.len() as u32)
                .expect("slot mapped");
            mem.write_bytes(PKT_DATA_ADDR, &packet)
                .expect("packet fits");
            mem.store_u32(VERDICT_ADDR, Verdict::Drop.to_word())
                .expect("slot mapped");
            let mut cpu = Cpu::new();
            cpu.set_pc(prog.base);
            cpu.set_reg(Reg::SP, STACK_TOP);
            (cpu, mem)
        };

        // Identical corruption on both sides (possibly none).
        let flips: Vec<(u32, u32)> = (0..rng.gen_range(0..=2u32))
            .map(|_| {
                (
                    prog.base + 4 * rng.gen_range(0..(image.len() as u32 / 4)),
                    rng.gen_range(0..32u32),
                )
            })
            .collect();
        let (mut cpu_u, mut mem_u) = stage(&flips);
        let (mut cpu_c, mut mem_c) = stage(&flips);
        let mut cache = DecodeCache::build(&mem_c, prog.base, image.len() as u32);

        let digest = |result: &Result<sdmmon_npu::cpu::Retired, Trap>, d: u64| match result {
            Ok(r) => fold(d, &[r.pc, r.word, r.next_pc]),
            Err(trap) => {
                let mut d = d;
                for b in format!("{trap:?}").bytes() {
                    d ^= b as u64;
                    d = d.wrapping_mul(0x0000_0100_0000_01B3);
                }
                d
            }
        };
        let mut d_u = 0xcbf2_9ce4_8422_2325u64;
        let mut d_c = 0xcbf2_9ce4_8422_2325u64;
        for _ in 0..STEP_CAP {
            let su = cpu_u.step(&mut mem_u);
            let sc = cpu_c.step_cached(&mut mem_c, &mut cache);
            d_u = digest(&su, d_u);
            d_c = digest(&sc, d_c);
            if su.is_err() || sc.is_err() {
                break;
            }
        }
        let v_u = mem_u.load_u32(VERDICT_ADDR).expect("slot mapped");
        let v_c = mem_c.load_u32(VERDICT_ADDR).expect("slot mapped");
        if d_u != d_c || v_u != v_c {
            divergences += 1;
        }
    }
    DiffCheck {
        name: "decode_cached_vs_uncached",
        trials: runs,
        divergences,
    }
}

/// Sharded batch engine vs the serial per-instruction oracle, over the
/// full recovery stack: four monitored cores (per-core hash parameters,
/// as deployed), an aggressive supervisor ladder, identical injected
/// instruction-memory bit flips on both sides, and traffic mixing clean
/// flows, stack-smash hijacks, and mutated packets. A run diverges if the
/// merged outcomes *or* the aggregate [`sdmmon_npu::np::NpStats`] differ
/// for any shard count — the exact guarantee `process_batch` documents.
fn sharded_batch_vs_serial(runs: u64, seed: u64) -> DiffCheck {
    const CORES: usize = 4;
    let mut rng = StdRng::seed_from_u64(seed);
    let program = programs::vulnerable_forward().expect("embedded workload assembles");
    let image = program.to_bytes();
    let policy = SupervisorPolicy::ladder(2, 2);
    let attack = testing::hijack_packet("li $t4, 0x0007fff0\nli $t5, 9\nsw $t5, 0($t4)\nbreak 0")
        .expect("hijack payload assembles");
    let mut divergences = 0u64;
    for run in 0..runs {
        let shards = [2usize, 3, 4][run as usize % 3];
        let hash_seed: u32 = rng.gen();
        let build = || {
            let mut np = NetworkProcessor::with_policy(CORES, policy);
            for core in 0..CORES {
                let hash = MerkleTreeHash::new(hash_seed ^ core as u32);
                let graph =
                    MonitoringGraph::extract(&program, &hash).expect("workload graph extracts");
                np.install(
                    core,
                    &image,
                    program.base,
                    Box::new(HardwareMonitor::new(graph, hash)),
                );
            }
            np
        };
        let mut sharded = build();
        sharded.set_shards(shards);
        let mut serial = build();

        // Identical instruction-memory faults on both sides, injected
        // after install so the extracted graphs describe the *clean*
        // program — executing a flipped word is what the monitor catches.
        let flips: Vec<(usize, u32, u32)> = (0..rng.gen_range(1..=3u32))
            .map(|_| {
                (
                    rng.gen_range(0..CORES),
                    program.base + 4 * rng.gen_range(0..(image.len() as u32 / 4)),
                    rng.gen_range(0..32u32),
                )
            })
            .collect();
        for np in [&mut sharded, &mut serial] {
            for &(core, addr, bit) in &flips {
                let word = np
                    .core_mut(core)
                    .memory()
                    .load_u32(addr)
                    .expect("text mapped");
                np.core_mut(core)
                    .memory_mut()
                    .store_u32(addr, word ^ (1 << bit))
                    .expect("text mapped");
            }
        }

        let packets: Vec<Vec<u8>> = (0..40)
            .map(|_| match rng.gen_range(0..5u32) {
                0 => attack.clone(),
                1 => {
                    let mut p = testing::ipv4_packet(
                        [10, rng.gen_range(0..8u8), rng.gen_range(0..250u8), 1],
                        [10, 0, 0, rng.gen_range(1..=15u8)],
                        64,
                        b"dp",
                    );
                    mutate_packet(&mut p, &mut rng);
                    p
                }
                _ => testing::ipv4_packet(
                    [10, rng.gen_range(0..8u8), rng.gen_range(0..250u8), 1],
                    [10, 0, 0, rng.gen_range(1..=15u8)],
                    64,
                    b"dp",
                ),
            })
            .collect();

        let fast = sharded.process_batch(&packets);
        let oracle = serial.process_batch_serial(&packets);
        if fast != oracle || sharded.stats() != serial.stats() {
            divergences += 1;
        }
    }
    DiffCheck {
        name: "sharded_batch_vs_serial",
        trials: runs,
        divergences,
    }
}

/// The streaming engine — bounded ingress admission followed by
/// deterministic whole-queue work stealing — vs its serial oracle at the
/// same shard count, over open-loop heavy-tailed arrival rounds salted
/// with stack-smash hijacks, on monitored cores carrying injected
/// instruction-memory faults. A run diverges if the per-offered-packet
/// outcomes, the backpressure accounting (offered/admitted/dropped), or
/// the aggregate [`sdmmon_npu::np::NpStats`] differ — the exact guarantee
/// `process_stream` documents.
fn stream_steal_vs_serial(runs: u64, seed: u64) -> DiffCheck {
    const CORES: usize = 4;
    let mut rng = StdRng::seed_from_u64(seed);
    let program = programs::vulnerable_forward().expect("embedded workload assembles");
    let image = program.to_bytes();
    let policy = SupervisorPolicy::ladder(2, 2);
    let attack = testing::hijack_packet("li $t4, 0x0007fff0\nli $t5, 9\nsw $t5, 0($t4)\nbreak 0")
        .expect("hijack payload assembles");
    let mut divergences = 0u64;
    for run in 0..runs {
        let shards = [2usize, 3, 4][run as usize % 3];
        let hash_seed: u32 = rng.gen();
        let build = || {
            let mut np = NetworkProcessor::with_policy(CORES, policy);
            for core in 0..CORES {
                let hash = MerkleTreeHash::new(hash_seed ^ core as u32);
                let graph =
                    MonitoringGraph::extract(&program, &hash).expect("workload graph extracts");
                np.install(
                    core,
                    &image,
                    program.base,
                    Box::new(HardwareMonitor::new(graph, hash)),
                );
            }
            np.set_shards(shards);
            np
        };
        let mut streaming = build();
        let mut serial = build();

        // Identical instruction-memory faults on both sides (see
        // `sharded_batch_vs_serial`).
        let flips: Vec<(usize, u32, u32)> = (0..rng.gen_range(1..=3u32))
            .map(|_| {
                (
                    rng.gen_range(0..CORES),
                    program.base + 4 * rng.gen_range(0..(image.len() as u32 / 4)),
                    rng.gen_range(0..32u32),
                )
            })
            .collect();
        for np in [&mut streaming, &mut serial] {
            for &(core, addr, bit) in &flips {
                let word = np
                    .core_mut(core)
                    .memory()
                    .load_u32(addr)
                    .expect("text mapped");
                np.core_mut(core)
                    .memory_mut()
                    .store_u32(addr, word ^ (1 << bit))
                    .expect("text mapped");
            }
        }

        // Open-loop heavy-tailed arrivals, salted with hijacks so the
        // supervisor ladder fires mid-stream.
        let mut source = OpenLoopSource::new(OpenLoopConfig {
            seed: rng.gen::<u64>(),
            ..OpenLoopConfig::default()
        });
        let mut rounds = source.take_rounds(3);
        for round in &mut rounds {
            for packet in round.iter_mut() {
                if rng.gen_range(0..10u32) == 0 {
                    *packet = attack.clone();
                }
            }
        }

        let cfg = StreamConfig { shard_capacity: 24 };
        let fast = streaming.process_stream(&rounds, &cfg);
        let oracle = serial.process_stream_serial(&rounds, &cfg);
        let reports_agree = fast.report.offered == oracle.report.offered
            && fast.report.admitted == oracle.report.admitted
            && fast.report.dropped == oracle.report.dropped;
        if fast.outcomes != oracle.outcomes || !reports_agree || streaming.stats() != serial.stats()
        {
            divergences += 1;
        }
    }
    DiffCheck {
        name: "stream_steal_vs_serial",
        trials: runs,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_checks_agree_under_faults() {
        let report = run_differentials(
            91,
            DiffBudget {
                rsa_trials: 8,
                modpow_trials: 8,
                deploy_rounds: 2,
                decode_runs: 6,
                batch_runs: 3,
                stream_runs: 2,
            },
        )
        .unwrap();
        assert_eq!(report.checks.len(), 6);
        assert_eq!(report.total_divergences(), 0, "{:?}", report.checks);
    }

    #[test]
    fn differentials_replay_from_seed() {
        let budget = DiffBudget {
            rsa_trials: 5,
            modpow_trials: 5,
            deploy_rounds: 1,
            decode_runs: 3,
            batch_runs: 2,
            stream_runs: 1,
        };
        let a = run_differentials(7, budget).unwrap();
        let b = run_differentials(7, budget).unwrap();
        assert_eq!(a, b);
    }
}
