//! Campaign composition and the serializable, byte-stable report.
//!
//! [`run_campaign`] derives one sub-seed per campaign from the master seed
//! (`split_seed`), so adding a campaign never perturbs the randomness of
//! the others, and the whole report replays byte-for-byte from `--seed`.

use crate::campaign::{self, CampaignConfig, CampaignOutcome, EscapeRow};
use crate::differential::{run_differentials, DiffBudget, DifferentialReport};
use crate::json::Json;
use sdmmon_core::SdmmonError;
use sdmmon_obs::{Event, EventBus};
use sdmmon_rng::split_seed;
use std::fmt::Write as _;

/// Schema identifier embedded in every report (bump on layout changes).
pub const SCHEMA: &str = "sdmmon-campaign-v1";

/// Everything one campaign run produced. Serialize with
/// [`CampaignReport::to_json`]; gate on [`CampaignReport::verify_accounting`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The master seed the run replays from.
    pub seed: u64,
    /// The configured adversarial-trial budget.
    pub budget: u64,
    /// Per-campaign outcomes, in a fixed order.
    pub campaigns: Vec<CampaignOutcome>,
    /// Escape-probability model rows (`k = 1..`).
    pub escape_model: Vec<EscapeRow>,
    /// Fast-path-vs-oracle differential results.
    pub differential: DifferentialReport,
}

/// Runs the full suite: six adversarial campaigns, the escape-probability
/// model, and the differential checks.
///
/// The budget is split deterministically: 40% stack-smash variants, 30%
/// packet fuzzing, 20% instruction-memory fault/recovery cycles, a
/// budget-scaled (1..=16) trial count per wire-fault class, and a
/// budget-scaled (1..=4) trial count per transport-fault class; the
/// evasive campaign is fixed-size (two fleets). Every division is integer
/// arithmetic on the configured budget — nothing depends on timing.
///
/// # Errors
///
/// Propagates infrastructure failures (key generation, packaging). Attack
/// outcomes — including escapes — are never errors; they are tallied.
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignReport, SdmmonError> {
    let s = cfg.seed;
    let per_wire_kind = (cfg.budget / 100).clamp(1, 16);
    let per_transport_kind = (cfg.budget / 400).clamp(1, 4);
    let campaigns = vec![
        campaign::stack_smash(cfg, (cfg.budget * 2 / 5).max(1), split_seed(s, 1))?,
        campaign::packet_fuzz(cfg, (cfg.budget * 3 / 10).max(1), split_seed(s, 2))?,
        campaign::wire_faults(cfg, per_wire_kind, split_seed(s, 3))?,
        campaign::fault_recovery(cfg, (cfg.budget / 5).max(1), split_seed(s, 4))?,
        campaign::evasive_propagation(cfg, split_seed(s, 5))?,
        campaign::resilient_deploy(cfg, per_transport_kind, split_seed(s, 8))?,
    ];
    let escape_model = campaign::escape_model(cfg.escape_trials, 4, split_seed(s, 6));
    let differential = run_differentials(split_seed(s, 7), DiffBudget::smoke())?;
    Ok(CampaignReport {
        seed: cfg.seed,
        budget: cfg.budget,
        campaigns,
        escape_model,
        differential,
    })
}

/// [`run_campaign`] with an optional observability bus: when `bus` is
/// attached, the report's lifecycle is narrated as structured events (see
/// [`CampaignReport::to_events`]) after the run completes. The events are a
/// pure function of the (already byte-stable) report, so the stream replays
/// byte-identically per `(seed, budget, routers, escape_trials)`.
///
/// # Errors
///
/// Exactly those of [`run_campaign`].
pub fn run_campaign_observed(
    cfg: &CampaignConfig,
    bus: Option<&EventBus>,
) -> Result<CampaignReport, SdmmonError> {
    let report = run_campaign(cfg)?;
    if let Some(bus) = bus {
        bus.extend(report.to_events());
    }
    Ok(report)
}

impl CampaignReport {
    /// Undetected escapes across all adversarial campaigns.
    pub fn total_escapes(&self) -> u64 {
        self.campaigns.iter().map(|c| c.tally.escaped).sum()
    }

    /// Verifies the report's internal invariants — the guarantee that no
    /// injected fault or attack fell out of the books:
    ///
    /// * every campaign tally is exhaustively accounted
    ///   (attempted = detected + faulted + rejected + clean + escaped);
    /// * every detection contributed a latency sample;
    /// * escape-model rows are monotone non-increasing in `k` with
    ///   `escapes ≤ trials`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn verify_accounting(&self) -> Result<(), String> {
        for c in &self.campaigns {
            if !c.tally.is_accounted() {
                return Err(format!(
                    "campaign {}: {} attempted but buckets sum to {} ({:?})",
                    c.name,
                    c.tally.attempted,
                    c.tally.detected
                        + c.tally.faulted
                        + c.tally.rejected
                        + c.tally.clean
                        + c.tally.escaped,
                    c.tally
                ));
            }
            if c.latency.count != c.tally.detected {
                return Err(format!(
                    "campaign {}: {} detections but {} latency samples",
                    c.name, c.tally.detected, c.latency.count
                ));
            }
        }
        let mut prev = u64::MAX;
        for row in &self.escape_model {
            if row.escapes > row.trials {
                return Err(format!(
                    "escape model k={}: {} escapes out of {} trials",
                    row.k, row.escapes, row.trials
                ));
            }
            if row.escapes > prev {
                return Err(format!(
                    "escape model k={}: escapes increased ({} after {})",
                    row.k, row.escapes, prev
                ));
            }
            prev = row.escapes;
        }
        Ok(())
    }

    /// Renders the canonical JSON document. Byte-identical for identical
    /// `(seed, budget, routers, escape_trials)` — the replay contract the
    /// CLI and CI rely on. Contains no wall-clock values by construction.
    pub fn to_json(&self) -> String {
        let campaigns = self.campaigns.iter().map(|c| {
            Json::obj([
                ("name", Json::from(c.name)),
                (
                    "tally",
                    Json::obj([
                        ("attempted", Json::from(c.tally.attempted)),
                        ("detected", Json::from(c.tally.detected)),
                        ("faulted", Json::from(c.tally.faulted)),
                        ("rejected", Json::from(c.tally.rejected)),
                        ("clean", Json::from(c.tally.clean)),
                        ("escaped", Json::from(c.tally.escaped)),
                    ]),
                ),
                (
                    "detection_latency_steps",
                    Json::obj([
                        ("count", Json::from(c.latency.count)),
                        ("min", Json::from(c.latency.min)),
                        ("max", Json::from(c.latency.max)),
                        ("mean", Json::fixed(c.latency.mean(), 3)),
                    ]),
                ),
                ("recoveries", Json::from(c.recoveries)),
                (
                    "details",
                    Json::obj(c.details.iter().map(|(k, v)| (k.clone(), Json::from(*v)))),
                ),
            ])
        });
        let escape_rows = self.escape_model.iter().map(|r| {
            Json::obj([
                ("k", Json::from(r.k)),
                ("trials", Json::from(r.trials)),
                ("escapes", Json::from(r.escapes)),
                ("observed_rate", Json::fixed(r.observed_rate(), 8)),
                ("model_rate_16_pow_minus_k", Json::fixed(r.model_rate(), 8)),
            ])
        });
        let diffs = self.differential.checks.iter().map(|c| {
            Json::obj([
                ("name", Json::from(c.name)),
                ("trials", Json::from(c.trials)),
                ("divergences", Json::from(c.divergences)),
            ])
        });
        let doc = Json::obj([
            ("schema", Json::from(SCHEMA)),
            ("seed", Json::from(self.seed)),
            ("budget", Json::from(self.budget)),
            ("campaigns", Json::array(campaigns)),
            ("escape_model", Json::array(escape_rows)),
            ("differential", Json::array(diffs)),
        ]);
        let mut text = doc.render(0);
        text.push('\n');
        text
    }

    /// Renders the report as structured events for the observability bus:
    /// `campaign.start`, one `campaign.done` per adversarial campaign, one
    /// `escape_model.row` per `k`, one `differential.done` per check, and a
    /// closing `campaign.report`. The logical clock is the cumulative trial
    /// count — attempted attacks, then escape-model trials, then
    /// differential trials — so the stream orders by work performed and
    /// never touches wall time.
    pub fn to_events(&self) -> Vec<Event> {
        let mut events = Vec::with_capacity(self.campaigns.len() + self.escape_model.len() + 4);
        events.push(
            Event::new("campaign.start", 0)
                .field("seed", self.seed)
                .field("budget", self.budget)
                .field("campaigns", self.campaigns.len()),
        );
        let mut clock = 0u64;
        for c in &self.campaigns {
            clock += c.tally.attempted;
            events.push(
                Event::new("campaign.done", clock)
                    .field("name", c.name)
                    .field("attempted", c.tally.attempted)
                    .field("detected", c.tally.detected)
                    .field("faulted", c.tally.faulted)
                    .field("rejected", c.tally.rejected)
                    .field("clean", c.tally.clean)
                    .field("escaped", c.tally.escaped)
                    .field("recoveries", c.recoveries)
                    .field("latency_min_steps", c.latency.min)
                    .field("latency_max_steps", c.latency.max),
            );
        }
        for r in &self.escape_model {
            clock += r.trials;
            events.push(
                Event::new("escape_model.row", clock)
                    .field("k", r.k)
                    .field("trials", r.trials)
                    .field("escapes", r.escapes),
            );
        }
        for c in &self.differential.checks {
            clock += c.trials;
            events.push(
                Event::new("differential.done", clock)
                    .field("name", c.name)
                    .field("trials", c.trials)
                    .field("divergences", c.divergences),
            );
        }
        events.push(
            Event::new("campaign.report", clock)
                .field("total_escapes", self.total_escapes())
                .field(
                    "accounting",
                    if self.verify_accounting().is_ok() {
                        "ok"
                    } else {
                        "violated"
                    },
                ),
        );
        events
    }

    /// Human-readable summary table for the CLI.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<20} {:>9} {:>8} {:>7} {:>8} {:>7} {:>7} {:>10}",
            "campaign",
            "attempted",
            "detected",
            "faulted",
            "rejected",
            "clean",
            "escaped",
            "recoveries"
        );
        for c in &self.campaigns {
            let t = &c.tally;
            let _ = writeln!(
                out,
                "{:<20} {:>9} {:>8} {:>7} {:>8} {:>7} {:>7} {:>10}",
                c.name,
                t.attempted,
                t.detected,
                t.faulted,
                t.rejected,
                t.clean,
                t.escaped,
                c.recoveries
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "escape model (random k-instruction deviations):");
        for r in &self.escape_model {
            let _ = writeln!(
                out,
                "  k={}  trials={:<9} escapes={:<7} observed={:.8}  model 16^-k={:.8}",
                r.k,
                r.trials,
                r.escapes,
                r.observed_rate(),
                r.model_rate()
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "differential checks (fast path vs oracle):");
        for c in &self.differential.checks {
            let _ = writeln!(
                out,
                "  {:<28} trials={:<6} divergences={}",
                c.name, c.trials, c.divergences
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CampaignConfig {
        CampaignConfig::new(5)
            .with_budget(40)
            .with_routers(2)
            .with_escape_trials(400)
    }

    #[test]
    fn report_passes_accounting() {
        let report = run_campaign(&tiny()).unwrap();
        report.verify_accounting().unwrap();
        assert_eq!(report.campaigns.len(), 6);
        let resilient = report
            .campaigns
            .iter()
            .find(|c| c.name == "resilient_deploy")
            .expect("healing campaign present");
        assert_eq!(resilient.tally.escaped, 0);
        assert_eq!(report.escape_model.len(), 4);
        assert_eq!(report.differential.total_divergences(), 0);
    }

    #[test]
    fn json_is_byte_stable_across_runs() {
        let a = run_campaign(&tiny()).unwrap().to_json();
        let b = run_campaign(&tiny()).unwrap().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"sdmmon-campaign-v1\""));
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_campaign(&tiny()).unwrap().to_json();
        let b = run_campaign(
            &CampaignConfig::new(6)
                .with_budget(40)
                .with_routers(2)
                .with_escape_trials(400),
        )
        .unwrap()
        .to_json();
        assert_ne!(a, b);
    }

    #[test]
    fn observed_run_narrates_the_report_deterministically() {
        let bus = sdmmon_obs::EventBus::new();
        let report = run_campaign_observed(&tiny(), Some(&bus)).unwrap();
        let jsonl = bus.render_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        // start + one per campaign + one per escape row + one per
        // differential check + the closing report event.
        assert_eq!(
            lines.len(),
            1 + report.campaigns.len()
                + report.escape_model.len()
                + report.differential.checks.len()
                + 1
        );
        for line in &lines {
            sdmmon_obs::validate_event_line(line).unwrap();
        }
        assert!(lines[0].contains("\"kind\":\"campaign.start\""));
        assert!(lines
            .last()
            .unwrap()
            .contains("\"kind\":\"campaign.report\""));
        // Clocks are cumulative trial counts: monotone non-decreasing.
        let events = report.to_events();
        assert!(events.windows(2).all(|w| w[0].clock <= w[1].clock));
        // The stream is a pure function of the byte-stable report.
        let bus2 = sdmmon_obs::EventBus::new();
        run_campaign_observed(&tiny(), Some(&bus2)).unwrap();
        assert_eq!(jsonl, bus2.render_jsonl());
    }

    #[test]
    fn summary_lists_every_campaign() {
        let report = run_campaign(&tiny()).unwrap();
        let text = report.summary();
        for c in &report.campaigns {
            assert!(text.contains(c.name), "{text}");
        }
    }
}
