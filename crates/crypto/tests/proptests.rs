//! Randomized property tests for the cryptographic substrate: algebraic
//! laws of the big-integer arithmetic and round-trip laws of the ciphers.
//!
//! Cases are drawn from seeded [`StdRng`] streams so failures reproduce.

use sdmmon_crypto::aes::Aes;
use sdmmon_crypto::bignum::BigUint;
use sdmmon_crypto::hmac::{hmac_sha256, verify_hmac_sha256};
use sdmmon_crypto::montgomery::MontgomeryContext;
use sdmmon_crypto::rsa::RsaKeyPair;
use sdmmon_crypto::sha256::{sha256, Sha256};
use sdmmon_rng::{Rng, RngCore, SeedableRng, StdRng};

const CASES: usize = 256;

fn arb_biguint(rng: &mut StdRng, max_bytes: usize) -> BigUint {
    let len = rng.gen_range(0..=max_bytes);
    let mut bytes = vec![0u8; len];
    rng.fill_bytes(&mut bytes);
    BigUint::from_be_bytes(&bytes)
}

#[test]
fn bytes_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xC0_0001);
    for _ in 0..CASES {
        let a = arb_biguint(&mut rng, 40);
        assert_eq!(BigUint::from_be_bytes(&a.to_be_bytes()), a);
    }
}

#[test]
fn addition_commutes() {
    let mut rng = StdRng::seed_from_u64(0xC0_0002);
    for _ in 0..CASES {
        let a = arb_biguint(&mut rng, 32);
        let b = arb_biguint(&mut rng, 32);
        assert_eq!(&a + &b, &b + &a);
    }
}

#[test]
fn add_then_sub_is_identity() {
    let mut rng = StdRng::seed_from_u64(0xC0_0003);
    for _ in 0..CASES {
        let a = arb_biguint(&mut rng, 32);
        let b = arb_biguint(&mut rng, 32);
        assert_eq!((&a + &b).checked_sub(&b), Some(a));
    }
}

#[test]
fn multiplication_commutes_and_distributes() {
    let mut rng = StdRng::seed_from_u64(0xC0_0004);
    for _ in 0..CASES {
        let a = arb_biguint(&mut rng, 24);
        let b = arb_biguint(&mut rng, 24);
        let c = arb_biguint(&mut rng, 24);
        assert_eq!(&a * &b, &b * &a);
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }
}

/// Division invariant: a = q*b + r with r < b.
#[test]
fn div_rem_invariant() {
    let mut rng = StdRng::seed_from_u64(0xC0_0005);
    for _ in 0..CASES {
        let a = arb_biguint(&mut rng, 48);
        let b = arb_biguint(&mut rng, 24);
        if b.is_zero() {
            continue;
        }
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }
}

#[test]
fn shifts_are_inverse() {
    let mut rng = StdRng::seed_from_u64(0xC0_0006);
    for _ in 0..CASES {
        let a = arb_biguint(&mut rng, 32);
        let n = rng.gen_range(0..200usize);
        assert_eq!(a.shl(n).shr(n), a);
    }
}

#[test]
fn shl_is_multiplication_by_power_of_two() {
    let mut rng = StdRng::seed_from_u64(0xC0_0007);
    for _ in 0..CASES {
        let a = arb_biguint(&mut rng, 16);
        let n = rng.gen_range(0..64usize);
        assert_eq!(
            a.shl(n),
            &a * &BigUint::from(1u64 << n.min(63)).shl(n.saturating_sub(63))
        );
    }
}

/// mod_pow agrees with naive repeated multiplication for small exponents.
#[test]
fn mod_pow_matches_naive() {
    let mut rng = StdRng::seed_from_u64(0xC0_0008);
    for _ in 0..CASES {
        let a = arb_biguint(&mut rng, 8);
        let e = rng.gen_range(0..24u32);
        let m = arb_biguint(&mut rng, 8);
        if m.is_zero() {
            continue;
        }
        let fast = a.mod_pow(&BigUint::from(e), &m);
        let mut naive = &BigUint::one() % &m;
        for _ in 0..e {
            naive = &(&naive * &a) % &m;
        }
        assert_eq!(fast, naive);
    }
}

/// (a^x)^y == a^(x*y) mod m — the identity RSA correctness rests on.
#[test]
fn mod_pow_exponent_product() {
    let mut rng = StdRng::seed_from_u64(0xC0_0009);
    for _ in 0..CASES {
        let a = arb_biguint(&mut rng, 8);
        let x = rng.gen_range(1..12u32);
        let y = rng.gen_range(1..12u32);
        let m = arb_biguint(&mut rng, 8);
        if m.is_zero() {
            continue;
        }
        let lhs = a
            .mod_pow(&BigUint::from(x), &m)
            .mod_pow(&BigUint::from(y), &m);
        let rhs = a.mod_pow(&BigUint::from(x as u64 * y as u64), &m);
        assert_eq!(lhs, rhs);
    }
}

/// Modular inverse really inverts when it exists.
#[test]
fn mod_inv_inverts() {
    let mut rng = StdRng::seed_from_u64(0xC0_000A);
    for _ in 0..CASES {
        let a = arb_biguint(&mut rng, 16);
        let m = arb_biguint(&mut rng, 16);
        if m <= BigUint::one() {
            continue;
        }
        if let Some(inv) = a.mod_inv(&m) {
            assert_eq!(&(&a * &inv) % &m, BigUint::one());
            assert!(inv < m);
        } else {
            assert_ne!(a.gcd(&m), BigUint::one());
        }
    }
}

/// Differential oracle: Montgomery windowed exponentiation is bit-identical
/// to the legacy schoolbook `mod_pow` across random 2048-bit inputs.
#[test]
fn montgomery_matches_legacy_oracle_2048() {
    let mut rng = StdRng::seed_from_u64(0xC0_0010);
    for _ in 0..4 {
        let mut modulus = BigUint::random_exact_bits(2048, &mut rng);
        if modulus.is_even() {
            modulus = &modulus + &BigUint::one();
        }
        let ctx = MontgomeryContext::new(&modulus).expect("odd modulus");
        // Full-width exponent once (slow oracle), small exponents for the rest.
        let base = BigUint::random_bits(2048, &mut rng);
        let exp = BigUint::random_bits(2048, &mut rng);
        assert_eq!(ctx.mod_pow(&base, &exp), base.mod_pow(&exp, &modulus));
        for _ in 0..3 {
            let base = BigUint::random_bits(2100, &mut rng);
            let exp = BigUint::random_bits(64, &mut rng);
            assert_eq!(ctx.mod_pow(&base, &exp), base.mod_pow(&exp, &modulus));
            assert_eq!(
                base.mod_pow_fast(&exp, &modulus),
                base.mod_pow(&exp, &modulus)
            );
        }
    }
}

/// Differential oracle at many widths: `mod_pow_fast` (Montgomery dispatch)
/// equals the legacy path for odd and even moduli alike.
#[test]
fn mod_pow_fast_matches_legacy_all_widths() {
    let mut rng = StdRng::seed_from_u64(0xC0_0011);
    for bits in [8usize, 63, 64, 65, 128, 256, 521] {
        for _ in 0..8 {
            let modulus = {
                let m = BigUint::random_exact_bits(bits, &mut rng);
                if m <= BigUint::one() {
                    BigUint::from(2u64)
                } else {
                    m
                }
            };
            let base = BigUint::random_bits(bits + 32, &mut rng);
            let exp = BigUint::random_bits(96, &mut rng);
            assert_eq!(
                base.mod_pow_fast(&exp, &modulus),
                base.mod_pow(&exp, &modulus),
                "bits={bits}"
            );
        }
    }
}

/// The full RSA private operation (Montgomery + CRT) is bit-identical to
/// the plain `c^d mod n` oracle, and signatures verify.
#[test]
fn rsa_fast_path_matches_plain_oracle() {
    let mut rng = StdRng::seed_from_u64(0xC0_0012);
    let keys = RsaKeyPair::generate(512, &mut rng).expect("keygen");
    let n = BigUint::from_be_bytes(&keys.public.modulus_bytes());
    for _ in 0..8 {
        let c = BigUint::random_below(&n, &mut rng);
        assert_eq!(
            keys.private.private_op_crt(&c),
            keys.private.private_op_plain(&c)
        );
    }
    let sig = keys.private.sign(b"differential");
    assert!(keys.public.verify(b"differential", &sig));
}

/// AES block encrypt/decrypt are inverse for all key sizes.
#[test]
fn aes_block_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xC0_000B);
    for _ in 0..CASES {
        let key_bytes: [u8; 32] = rng.gen();
        let block: [u8; 16] = rng.gen();
        let key = &key_bytes[..[16, 24, 32][rng.gen_range(0..3usize)]];
        let aes = Aes::new(key).unwrap();
        assert_eq!(aes.decrypt_block(aes.encrypt_block(block)), block);
    }
}

/// CBC round trip for arbitrary plaintext lengths.
#[test]
fn aes_cbc_round_trip() {
    let mut rng = StdRng::seed_from_u64(0xC0_000C);
    for _ in 0..CASES {
        let key = vec![0x42u8; [16, 24, 32][rng.gen_range(0..3usize)]];
        let mut pt = vec![0u8; rng.gen_range(0..300usize)];
        rng.fill_bytes(&mut pt);
        let aes = Aes::new(&key).unwrap();
        let ct = aes.encrypt_cbc(&pt, &mut rng);
        assert_eq!(aes.decrypt_cbc(&ct).unwrap(), pt);
    }
}

/// CTR is a self-inverse keystream.
#[test]
fn aes_ctr_involution() {
    let mut rng = StdRng::seed_from_u64(0xC0_000D);
    for _ in 0..CASES {
        let counter: [u8; 16] = rng.gen();
        let mut data = vec![0u8; rng.gen_range(0..200usize)];
        rng.fill_bytes(&mut data);
        let aes = Aes::new(&[1u8; 16]).unwrap();
        let once = aes.apply_ctr(counter, &data);
        assert_eq!(aes.apply_ctr(counter, &once), data);
    }
}

/// Incremental hashing equals one-shot for any split.
#[test]
fn sha256_incremental() {
    let mut rng = StdRng::seed_from_u64(0xC0_000E);
    for _ in 0..CASES {
        let mut data = vec![0u8; rng.gen_range(0..500usize)];
        rng.fill_bytes(&mut data);
        let at = rng.gen_range(0..=data.len());
        let mut h = Sha256::new();
        h.update(&data[..at]);
        h.update(&data[at..]);
        assert_eq!(h.finalize(), sha256(&data));
    }
}

/// HMAC verify accepts its own tags and rejects single-byte corruption.
#[test]
fn hmac_verify_laws() {
    let mut rng = StdRng::seed_from_u64(0xC0_000F);
    for _ in 0..CASES {
        let mut key = vec![0u8; rng.gen_range(0..100usize)];
        rng.fill_bytes(&mut key);
        let mut msg = vec![0u8; rng.gen_range(0..100usize)];
        rng.fill_bytes(&mut msg);
        let tag = hmac_sha256(&key, &msg);
        assert!(verify_hmac_sha256(&key, &msg, &tag));
        let mut bad = tag;
        bad[rng.gen_range(0..32usize)] ^= 0x01;
        assert!(!verify_hmac_sha256(&key, &msg, &bad));
    }
}
