//! Property-based tests for the cryptographic substrate: algebraic laws of
//! the big-integer arithmetic and round-trip laws of the ciphers.

use proptest::prelude::*;
use rand::SeedableRng;
use sdmmon_crypto::aes::Aes;
use sdmmon_crypto::bignum::BigUint;
use sdmmon_crypto::hmac::{hmac_sha256, verify_hmac_sha256};
use sdmmon_crypto::sha256::{sha256, Sha256};

fn arb_biguint(max_bytes: usize) -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u8>(), 0..=max_bytes).prop_map(|b| BigUint::from_be_bytes(&b))
}

proptest! {
    #[test]
    fn bytes_round_trip(a in arb_biguint(40)) {
        prop_assert_eq!(BigUint::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn addition_commutes(a in arb_biguint(32), b in arb_biguint(32)) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_then_sub_is_identity(a in arb_biguint(32), b in arb_biguint(32)) {
        prop_assert_eq!((&a + &b).checked_sub(&b), Some(a));
    }

    #[test]
    fn multiplication_commutes_and_distributes(
        a in arb_biguint(24),
        b in arb_biguint(24),
        c in arb_biguint(24),
    ) {
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    /// Division invariant: a = q*b + r with r < b.
    #[test]
    fn div_rem_invariant(a in arb_biguint(48), b in arb_biguint(24)) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn shifts_are_inverse(a in arb_biguint(32), n in 0usize..200) {
        prop_assert_eq!(a.shl(n).shr(n), a);
    }

    #[test]
    fn shl_is_multiplication_by_power_of_two(a in arb_biguint(16), n in 0usize..64) {
        prop_assert_eq!(a.shl(n), &a * &BigUint::from(1u64 << n.min(63)).shl(n.saturating_sub(63)));
    }

    /// mod_pow agrees with naive repeated multiplication for small exponents.
    #[test]
    fn mod_pow_matches_naive(a in arb_biguint(8), e in 0u32..24, m in arb_biguint(8)) {
        prop_assume!(!m.is_zero());
        let fast = a.mod_pow(&BigUint::from(e), &m);
        let mut naive = &BigUint::one() % &m;
        for _ in 0..e {
            naive = &(&naive * &a) % &m;
        }
        prop_assert_eq!(fast, naive);
    }

    /// (a^x)^y == a^(x*y) mod m — the identity RSA correctness rests on.
    #[test]
    fn mod_pow_exponent_product(a in arb_biguint(8), x in 1u32..12, y in 1u32..12, m in arb_biguint(8)) {
        prop_assume!(!m.is_zero());
        let lhs = a.mod_pow(&BigUint::from(x), &m).mod_pow(&BigUint::from(y), &m);
        let rhs = a.mod_pow(&BigUint::from(x as u64 * y as u64), &m);
        prop_assert_eq!(lhs, rhs);
    }

    /// Modular inverse really inverts when it exists.
    #[test]
    fn mod_inv_inverts(a in arb_biguint(16), m in arb_biguint(16)) {
        prop_assume!(m > BigUint::one());
        if let Some(inv) = a.mod_inv(&m) {
            prop_assert_eq!(&(&a * &inv) % &m, BigUint::one());
            prop_assert!(inv < m);
        } else {
            prop_assert_ne!(a.gcd(&m), BigUint::one());
        }
    }

    /// AES block encrypt/decrypt are inverse for all key sizes.
    #[test]
    fn aes_block_round_trip(
        key_sel in 0usize..3,
        key_bytes in any::<[u8; 32]>(),
        block in any::<[u8; 16]>(),
    ) {
        let key = &key_bytes[..[16, 24, 32][key_sel]];
        let aes = Aes::new(key).unwrap();
        prop_assert_eq!(aes.decrypt_block(aes.encrypt_block(block)), block);
    }

    /// CBC round trip for arbitrary plaintext lengths.
    #[test]
    fn aes_cbc_round_trip(key_sel in 0usize..3, pt in prop::collection::vec(any::<u8>(), 0..300), seed in any::<u64>()) {
        let key = vec![0x42u8; [16, 24, 32][key_sel]];
        let aes = Aes::new(&key).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ct = aes.encrypt_cbc(&pt, &mut rng);
        prop_assert_eq!(aes.decrypt_cbc(&ct).unwrap(), pt);
    }

    /// CTR is a self-inverse keystream.
    #[test]
    fn aes_ctr_involution(counter in any::<[u8; 16]>(), data in prop::collection::vec(any::<u8>(), 0..200)) {
        let aes = Aes::new(&[1u8; 16]).unwrap();
        let once = aes.apply_ctr(counter, &data);
        prop_assert_eq!(aes.apply_ctr(counter, &once), data);
    }

    /// Incremental hashing equals one-shot for any split.
    #[test]
    fn sha256_incremental(data in prop::collection::vec(any::<u8>(), 0..500), split in any::<prop::sample::Index>()) {
        let at = split.index(data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..at]);
        h.update(&data[at..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// HMAC verify accepts its own tags and rejects single-byte corruption.
    #[test]
    fn hmac_verify_laws(key in prop::collection::vec(any::<u8>(), 0..100), msg in prop::collection::vec(any::<u8>(), 0..100), corrupt in any::<prop::sample::Index>()) {
        let tag = hmac_sha256(&key, &msg);
        prop_assert!(verify_hmac_sha256(&key, &msg, &tag));
        let mut bad = tag;
        bad[corrupt.index(32)] ^= 0x01;
        prop_assert!(!verify_hmac_sha256(&key, &msg, &bad));
    }
}
