//! Arbitrary-precision unsigned integer arithmetic.
//!
//! The RSA operations of the SDMMon installation protocol run on 2048-bit
//! moduli; this module provides the underlying multi-precision arithmetic:
//! schoolbook multiplication, Knuth Algorithm D division, binary
//! square-and-multiply modular exponentiation, and the extended Euclidean
//! modular inverse used during key generation.
//!
//! Limbs are 64-bit little-endian with 128-bit intermediates.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Rem, Sub};

use sdmmon_rng::RngCore;

/// An arbitrary-precision unsigned integer.
///
/// The representation is always *normalized*: no most-significant zero
/// limbs, and zero is the empty limb vector.
///
/// # Examples
///
/// ```
/// use sdmmon_crypto::bignum::BigUint;
///
/// let a = BigUint::from(0xffff_ffff_ffff_ffffu64);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "340282366920938463426481119284349108225");
/// assert_eq!(b.bit_len(), 128);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian 64-bit limbs; normalized (no trailing zero limbs).
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> BigUint {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> BigUint {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from little-endian limbs (normalizing trailing zeros).
    pub fn from_limbs(mut limbs: Vec<u64>) -> BigUint {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Builds a value from big-endian bytes.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdmmon_crypto::bignum::BigUint;
    /// assert_eq!(BigUint::from_be_bytes(&[1, 0]), BigUint::from(256u64));
    /// assert_eq!(BigUint::from_be_bytes(&[]), BigUint::zero());
    /// ```
    pub fn from_be_bytes(bytes: &[u8]) -> BigUint {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        BigUint::from_limbs(limbs)
    }

    /// Serializes to minimal big-endian bytes (empty for zero).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out: Vec<u8> = self
            .limbs
            .iter()
            .rev()
            .flat_map(|l| l.to_be_bytes())
            .collect();
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..first_nonzero);
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padded with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_be_bytes_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_be_bytes();
        assert!(
            raw.len() <= len,
            "value needs {} bytes, got {len}",
            raw.len()
        );
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Returns true for the value zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns true for even values (zero is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    ///
    /// # Examples
    ///
    /// ```
    /// use sdmmon_crypto::bignum::BigUint;
    /// assert_eq!(BigUint::from(0u64).bit_len(), 0);
    /// assert_eq!(BigUint::from(255u64).bit_len(), 8);
    /// assert_eq!(BigUint::from(256u64).bit_len(), 9);
    /// ```
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Tests bit `i` (little-endian numbering).
    pub fn bit(&self, i: usize) -> bool {
        self.limbs
            .get(i / 64)
            .is_some_and(|l| (l >> (i % 64)) & 1 == 1)
    }

    /// Interprets the low 64 bits as a `u64` (truncating larger values).
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let (limb_shift, bit_shift) = (n / 64, n % 64);
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        BigUint::from_limbs(limbs)
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> BigUint {
        let (limb_shift, bit_shift) = (n / 64, n % 64);
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut limbs: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift > 0 {
            for i in 0..limbs.len() {
                let hi = limbs.get(i + 1).copied().unwrap_or(0);
                limbs[i] = (limbs[i] >> bit_shift) | (hi << (64 - bit_shift));
            }
        }
        BigUint::from_limbs(limbs)
    }

    fn add_assign(&mut self, rhs: &BigUint) {
        let mut carry = 0u64;
        for i in 0..rhs.limbs.len().max(self.limbs.len()) {
            if i == self.limbs.len() {
                self.limbs.push(0);
            }
            let r = rhs.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = self.limbs[i].overflowing_add(r);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// Subtracts `rhs`, returning `None` when the result would be negative.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdmmon_crypto::bignum::BigUint;
    /// let five = BigUint::from(5u64);
    /// let three = BigUint::from(3u64);
    /// assert_eq!(five.checked_sub(&three), Some(BigUint::from(2u64)));
    /// assert_eq!(three.checked_sub(&five), None);
    /// ```
    pub fn checked_sub(&self, rhs: &BigUint) -> Option<BigUint> {
        if self < rhs {
            return None;
        }
        let mut limbs = self.limbs.clone();
        let mut borrow = 0u64;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let r = rhs.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = limb.overflowing_sub(r);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(limbs))
    }

    fn mul_impl(&self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let t = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + rhs.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Computes quotient and remainder simultaneously (Knuth Algorithm D).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdmmon_crypto::bignum::BigUint;
    /// let (q, r) = BigUint::from(1000u64).div_rem(&BigUint::from(33u64));
    /// assert_eq!(q, BigUint::from(30u64));
    /// assert_eq!(r, BigUint::from(10u64));
    /// ```
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            return self.div_rem_limb(divisor.limbs[0]);
        }

        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros() as usize;
        let mut un = self.shl(shift).limbs;
        let vn = divisor.shl(shift).limbs;
        let n = vn.len();
        let m = un.len() - n;
        un.push(0); // extra high limb for the algorithm

        let mut q = vec![0u64; m + 1];
        let v_top = vn[n - 1] as u128;
        let v_next = vn[n - 2] as u128;

        for j in (0..=m).rev() {
            // Estimate q̂ from the top two limbs of the current remainder.
            let numerator = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let mut qhat = numerator / v_top;
            let mut rhat = numerator % v_top;
            while qhat >> 64 != 0 || qhat * v_next > ((rhat << 64) | un[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v_top;
                if rhat >> 64 != 0 {
                    break;
                }
            }

            // Multiply-and-subtract: un[j..j+n+1] -= qhat * vn.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let t = un[j + i] as i128 - (p as u64) as i128 - borrow;
                un[j + i] = t as u64;
                borrow = i128::from(t < 0);
            }
            let t = un[j + n] as i128 - carry as i128 - borrow;
            un[j + n] = t as u64;

            if t < 0 {
                // q̂ was one too large: add the divisor back.
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = un[j + i] as u128 + vn[i] as u128 + carry;
                    un[j + i] = s as u64;
                    carry = s >> 64;
                }
                un[j + n] = (un[j + n] as u128).wrapping_add(carry) as u64;
            }
            q[j] = qhat as u64;
        }

        let quotient = BigUint::from_limbs(q);
        let remainder = BigUint::from_limbs(un[..n].to_vec()).shr(shift);
        (quotient, remainder)
    }

    fn div_rem_limb(&self, d: u64) -> (BigUint, BigUint) {
        let mut q = vec![0u64; self.limbs.len()];
        let mut rem: u128 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        (BigUint::from_limbs(q), BigUint::from(rem as u64))
    }

    /// Computes `self^exponent mod modulus` by square-and-multiply.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdmmon_crypto::bignum::BigUint;
    /// let r = BigUint::from(4u64).mod_pow(&BigUint::from(13u64), &BigUint::from(497u64));
    /// assert_eq!(r, BigUint::from(445u64));
    /// ```
    pub fn mod_pow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "zero modulus");
        if modulus == &BigUint::one() {
            return BigUint::zero();
        }
        let bits = exponent.bit_len();
        if bits == 0 {
            return BigUint::one();
        }
        let mut result = BigUint::one();
        let mut base = self.div_rem(modulus).1;
        for i in 0..bits {
            if exponent.bit(i) {
                result = result.mul_impl(&base).div_rem(modulus).1;
            }
            if i + 1 < bits {
                base = base.mul_impl(&base).div_rem(modulus).1;
            }
        }
        result
    }

    /// Computes `self^exponent mod modulus`, dispatching to Montgomery-form
    /// windowed exponentiation (see [`crate::montgomery`]) when the modulus
    /// is odd, and falling back to the schoolbook [`BigUint::mod_pow`]
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn mod_pow_fast(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        match crate::montgomery::MontgomeryContext::new(modulus) {
            Some(ctx) => ctx.mod_pow(self, exponent),
            None => self.mod_pow(exponent, modulus),
        }
    }

    /// Little-endian limb view (crate-internal, for Montgomery arithmetic).
    pub(crate) fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Computes the greatest common divisor.
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let (mut a, mut b) = (self.clone(), other.clone());
        while !b.is_zero() {
            let r = a.div_rem(&b).1;
            a = b;
            b = r;
        }
        a
    }

    /// Computes the modular inverse `self⁻¹ mod modulus`, or `None` when
    /// `gcd(self, modulus) != 1`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdmmon_crypto::bignum::BigUint;
    /// let inv = BigUint::from(3u64).mod_inv(&BigUint::from(11u64)).unwrap();
    /// assert_eq!(inv, BigUint::from(4u64)); // 3 * 4 = 12 ≡ 1 (mod 11)
    /// assert!(BigUint::from(4u64).mod_inv(&BigUint::from(8u64)).is_none());
    /// ```
    pub fn mod_inv(&self, modulus: &BigUint) -> Option<BigUint> {
        // Extended Euclid with sign-tracked coefficients.
        let (mut old_r, mut r) = (self.div_rem(modulus).1, modulus.clone());
        // (value, is_negative) pairs for the Bézout coefficient of `self`.
        let (mut old_s, mut old_s_neg) = (BigUint::one(), false);
        let (mut s, mut s_neg) = (BigUint::zero(), false);
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            old_r = std::mem::replace(&mut r, rem);
            // new_s = old_s - q * s (with explicit sign arithmetic)
            let qs = q.mul_impl(&s);
            let (new_s, new_neg) = signed_sub(&old_s, old_s_neg, &qs, s_neg);
            old_s = std::mem::replace(&mut s, new_s);
            old_s_neg = std::mem::replace(&mut s_neg, new_neg);
        }
        if old_r != BigUint::one() {
            return None;
        }
        let inv = old_s.div_rem(modulus).1;
        Some(if old_s_neg && !inv.is_zero() {
            modulus
                .checked_sub(&inv)
                .expect("reduced value below modulus")
        } else {
            inv
        })
    }

    /// Generates a uniformly random value below `bound` (rejection
    /// sampling).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: RngCore + ?Sized>(bound: &BigUint, rng: &mut R) -> BigUint {
        assert!(!bound.is_zero(), "empty range");
        let bits = bound.bit_len();
        loop {
            let candidate = BigUint::random_bits(bits, rng);
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// Generates a random value of at most `bits` bits.
    pub fn random_bits<R: RngCore + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
        let mut limbs = vec![0u64; bits.div_ceil(64)];
        for limb in &mut limbs {
            *limb = rng.next_u64();
        }
        let extra = limbs.len() * 64 - bits;
        if extra > 0 {
            if let Some(top) = limbs.last_mut() {
                *top &= u64::MAX >> extra;
            }
        }
        BigUint::from_limbs(limbs)
    }

    /// Generates a random value of *exactly* `bits` bits (top bit set).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn random_exact_bits<R: RngCore + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
        assert!(bits > 0, "cannot generate zero-bit value");
        let mut v = BigUint::random_bits(bits, rng);
        let top = BigUint::one().shl(bits - 1);
        if !v.bit(bits - 1) {
            v.add_assign(&top);
        }
        v
    }
}

/// Computes `(a, a_neg) - (b, b_neg)` in sign-magnitude representation.
fn signed_sub(a: &BigUint, a_neg: bool, b: &BigUint, b_neg: bool) -> (BigUint, bool) {
    match (a_neg, b_neg) {
        (false, true) => (a + b, false),
        (true, false) => (a + b, true),
        (an, _) => match a.checked_sub(b) {
            Some(d) => (d, an),
            None => (b.checked_sub(a).expect("b > a here"), !an),
        },
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> BigUint {
        BigUint::from_limbs(vec![v])
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> BigUint {
        BigUint::from(v as u64)
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &BigUint) -> Ordering {
        self.limbs
            .len()
            .cmp(&other.limbs.len())
            .then_with(|| self.limbs.iter().rev().cmp(other.limbs.iter().rev()))
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &BigUint) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let mut out = self.clone();
        out.add_assign(rhs);
        out
    }
}

impl Sub for &BigUint {
    type Output = BigUint;
    /// # Panics
    ///
    /// Panics on underflow; use [`BigUint::checked_sub`] to handle it.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_impl(rhs)
    }
}

impl Rem for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl fmt::Display for BigUint {
    /// Decimal representation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut v = self.clone();
        let ten = BigUint::from(10u64);
        while !v.is_zero() {
            let (q, r) = v.div_rem(&ten);
            digits.push(b'0' + r.low_u64() as u8);
            v = q;
        }
        digits.reverse();
        f.write_str(std::str::from_utf8(&digits).expect("digits are ASCII"))
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        write!(f, "{:x}", self.limbs.last().unwrap())?;
        for l in self.limbs.iter().rev().skip(1) {
            write!(f, "{l:016x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdmmon_rng::SeedableRng;

    fn big(s: &str) -> BigUint {
        // Parse decimal for test readability.
        let mut v = BigUint::zero();
        let ten = BigUint::from(10u64);
        for c in s.bytes() {
            v = &(&v * &ten) + &BigUint::from((c - b'0') as u64);
        }
        v
    }

    #[test]
    fn display_round_trips_decimal() {
        let s = "123456789012345678901234567890123456789";
        assert_eq!(big(s).to_string(), s);
    }

    #[test]
    fn byte_round_trips() {
        let v = big("987654321098765432109876543210");
        assert_eq!(BigUint::from_be_bytes(&v.to_be_bytes()), v);
        assert_eq!(BigUint::zero().to_be_bytes(), Vec::<u8>::new());
    }

    #[test]
    fn padded_bytes() {
        let v = BigUint::from(0x0102u64);
        assert_eq!(v.to_be_bytes_padded(4), vec![0, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "bytes")]
    fn padded_bytes_too_small_panics() {
        BigUint::from(0x010203u64).to_be_bytes_padded(2);
    }

    #[test]
    fn addition_carries_across_limbs() {
        let a = BigUint::from(u64::MAX);
        let b = &a + &BigUint::one();
        assert_eq!(b, BigUint::from_limbs(vec![0, 1]));
        assert_eq!(b.bit_len(), 65);
    }

    #[test]
    fn subtraction_borrows_across_limbs() {
        let a = BigUint::from_limbs(vec![0, 1]);
        assert_eq!(&a - &BigUint::one(), BigUint::from(u64::MAX));
    }

    #[test]
    fn multiplication_known_value() {
        let a = big("12345678901234567890");
        let b = big("98765432109876543210");
        assert_eq!(
            (&a * &b).to_string(),
            "1219326311370217952237463801111263526900"
        );
    }

    #[test]
    fn division_known_values() {
        let a = big("1219326311370217952237463801111263526900");
        let b = big("98765432109876543210");
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.to_string(), "12345678901234567890");
        assert!(r.is_zero());

        let (q, r) = big("1000000000000000000000001").div_rem(&big("7"));
        assert_eq!(q.to_string(), "142857142857142857142857");
        assert_eq!(r.to_string(), "2");
    }

    #[test]
    fn division_add_back_case() {
        // Exercises the rare "add back" branch of Algorithm D: a dividend
        // crafted so q̂ over-estimates.
        let u = BigUint::from_limbs(vec![0, 0, 0x8000_0000_0000_0000]);
        let v = BigUint::from_limbs(vec![1, 0x8000_0000_0000_0000]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    fn shifts() {
        let v = big("123456789123456789");
        assert_eq!(v.shl(67).shr(67), v);
        assert_eq!(v.shl(3), &v * &BigUint::from(8u64));
        assert_eq!(BigUint::from(1u64).shl(200).bit_len(), 201);
        assert_eq!(v.shr(200), BigUint::zero());
    }

    #[test]
    fn mod_pow_fermat() {
        // Fermat's little theorem: a^(p-1) ≡ 1 (mod p) for prime p.
        let p = big("1000000007");
        let a = big("123456789");
        let exp = &p - &BigUint::one();
        assert_eq!(a.mod_pow(&exp, &p), BigUint::one());
    }

    #[test]
    fn mod_pow_edge_cases() {
        let m = BigUint::from(7u64);
        assert_eq!(
            BigUint::from(3u64).mod_pow(&BigUint::zero(), &m),
            BigUint::one()
        );
        assert_eq!(
            BigUint::from(3u64).mod_pow(&BigUint::one(), &m),
            BigUint::from(3u64)
        );
        assert_eq!(
            BigUint::from(10u64).mod_pow(&BigUint::from(5u64), &BigUint::one()),
            BigUint::zero()
        );
    }

    #[test]
    fn gcd_and_inverse() {
        assert_eq!(big("48").gcd(&big("18")), big("6"));
        let m = big("1000000007");
        let a = big("987654321");
        let inv = a.mod_inv(&m).unwrap();
        assert_eq!(&(&a * &inv) % &m, BigUint::one());
    }

    #[test]
    fn inverse_of_large_values() {
        let m = big("170141183460469231731687303715884105727"); // 2^127 - 1, prime
        let a = big("123456789123456789123456789");
        let inv = a.mod_inv(&m).unwrap();
        assert_eq!(&(&a * &inv) % &m, BigUint::one());
    }

    #[test]
    fn ordering() {
        assert!(big("100") < big("101"));
        assert!(BigUint::from_limbs(vec![0, 1]) > BigUint::from(u64::MAX));
        assert_eq!(big("5").cmp(&big("5")), Ordering::Equal);
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = sdmmon_rng::StdRng::seed_from_u64(42);
        let bound = big("1000000000000000000000");
        for _ in 0..50 {
            assert!(BigUint::random_below(&bound, &mut rng) < bound);
        }
    }

    #[test]
    fn random_exact_bits_sets_top_bit() {
        let mut rng = sdmmon_rng::StdRng::seed_from_u64(42);
        for bits in [1, 7, 64, 65, 257] {
            let v = BigUint::random_exact_bits(bits, &mut rng);
            assert_eq!(v.bit_len(), bits);
        }
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(format!("{:x}", BigUint::zero()), "0");
        assert_eq!(format!("{:x}", BigUint::from(0xdeadu64)), "dead");
        assert_eq!(
            format!("{:x}", BigUint::from_limbs(vec![0x1, 0xab])),
            "ab0000000000000001"
        );
    }
}
