//! Probabilistic primality testing and prime generation for RSA key
//! generation.

use crate::bignum::BigUint;
use crate::montgomery::MontgomeryContext;
use crate::CryptoError;
use sdmmon_rng::RngCore;

/// Small primes used for fast trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Number of Miller–Rabin rounds; 2⁻⁸⁰ error bound for random candidates.
const MILLER_RABIN_ROUNDS: usize = 40;

/// Tests `n` for primality with trial division plus Miller–Rabin.
///
/// The result is probabilistic for composites that pass all rounds
/// (probability ≤ 4^−rounds), exact for everything the trial division
/// resolves.
///
/// # Examples
///
/// ```
/// use sdmmon_crypto::{bignum::BigUint, prime::is_probable_prime};
/// use sdmmon_rng::SeedableRng;
///
/// let mut rng = sdmmon_rng::StdRng::seed_from_u64(1);
/// assert!(is_probable_prime(&BigUint::from(1000000007u64), &mut rng));
/// assert!(!is_probable_prime(&BigUint::from(1000000008u64), &mut rng));
/// ```
pub fn is_probable_prime<R: RngCore + ?Sized>(n: &BigUint, rng: &mut R) -> bool {
    if n < &BigUint::from(2u64) {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let p = BigUint::from(p);
        if n == &p {
            return true;
        }
        if (n % &p).is_zero() {
            return false;
        }
    }
    miller_rabin(n, MILLER_RABIN_ROUNDS, rng)
}

/// Runs `rounds` of the Miller–Rabin witness test on odd `n > 2`.
///
/// One [`MontgomeryContext`] is built for `n` and reused across every
/// round: each witness costs one windowed exponentiation plus up to `s − 1`
/// REDC squarings, all in Montgomery form with no divisions.
fn miller_rabin<R: RngCore + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    let one = BigUint::one();
    let two = BigUint::from(2u64);
    let n_minus_1 = n - &one;
    // n - 1 = d * 2^s with d odd
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }
    // Trial division has removed even n, so the context always exists.
    let Some(ctx) = MontgomeryContext::new(n) else {
        return false;
    };
    let one_m = ctx.one_elem();
    let minus_one_m = ctx.convert(&n_minus_1);
    'witness: for _ in 0..rounds {
        // a in [2, n-2]
        let upper = match n_minus_1.checked_sub(&two) {
            Some(u) if !u.is_zero() => u,
            _ => return true, // n == 3
        };
        let a = &BigUint::random_below(&upper, rng) + &two;
        let mut x = ctx.pow(&ctx.convert(&a), &d);
        if x == one_m || x == minus_one_m {
            continue;
        }
        for _ in 0..s - 1 {
            x = ctx.mul(&x, &x);
            if x == minus_one_m {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime of exactly `bits` bits.
///
/// Candidates are drawn with the top bit forced (so products of two such
/// primes have exactly `2 * bits` bits) and the low bit forced (odd).
///
/// # Errors
///
/// Returns [`CryptoError::PrimeGenerationFailed`] if no prime is found
/// within a generous attempt budget (practically impossible for valid
/// `bits`).
///
/// # Panics
///
/// Panics if `bits < 3`.
///
/// # Examples
///
/// ```
/// use sdmmon_crypto::prime::generate_prime;
/// use sdmmon_rng::SeedableRng;
///
/// # fn main() -> Result<(), sdmmon_crypto::CryptoError> {
/// let mut rng = sdmmon_rng::StdRng::seed_from_u64(3);
/// let p = generate_prime(64, &mut rng)?;
/// assert_eq!(p.bit_len(), 64);
/// # Ok(())
/// # }
/// ```
pub fn generate_prime<R: RngCore + ?Sized>(
    bits: usize,
    rng: &mut R,
) -> Result<BigUint, CryptoError> {
    assert!(bits >= 3, "prime must have at least 3 bits");
    // Expected gap between primes near 2^bits is ~bits * ln 2; give a very
    // generous budget before declaring failure.
    let budget = bits.max(8) * 64;
    for _ in 0..budget {
        let mut candidate = BigUint::random_exact_bits(bits, rng);
        if candidate.is_even() {
            candidate = &candidate + &BigUint::one();
            if candidate.bit_len() != bits {
                continue; // overflowed to bits+1 (candidate was all ones)
            }
        }
        if is_probable_prime(&candidate, rng) {
            return Ok(candidate);
        }
    }
    Err(CryptoError::PrimeGenerationFailed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdmmon_rng::SeedableRng;

    fn rng() -> sdmmon_rng::StdRng {
        sdmmon_rng::StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn small_primes_detected() {
        let mut r = rng();
        for p in [2u64, 3, 5, 7, 11, 13, 251, 257, 65537] {
            assert!(is_probable_prime(&BigUint::from(p), &mut r), "{p}");
        }
    }

    #[test]
    fn small_composites_rejected() {
        let mut r = rng();
        for c in [0u64, 1, 4, 6, 9, 15, 255, 65535, 1000000008] {
            assert!(!is_probable_prime(&BigUint::from(c), &mut r), "{c}");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat but not Miller–Rabin.
        let mut r = rng();
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!is_probable_prime(&BigUint::from(c), &mut r), "{c}");
        }
    }

    #[test]
    fn known_large_prime() {
        let mut r = rng();
        // 2^127 - 1 is a Mersenne prime.
        let p = BigUint::one()
            .shl(127)
            .checked_sub(&BigUint::one())
            .unwrap();
        assert!(is_probable_prime(&p, &mut r));
        // 2^128 - 1 = 3 * 5 * 17 * ... is composite.
        let c = BigUint::one()
            .shl(128)
            .checked_sub(&BigUint::one())
            .unwrap();
        assert!(!is_probable_prime(&c, &mut r));
    }

    #[test]
    fn generated_primes_have_exact_bit_length() {
        let mut r = rng();
        for bits in [16usize, 32, 64, 128] {
            let p = generate_prime(bits, &mut r).unwrap();
            assert_eq!(p.bit_len(), bits);
            assert!(!p.is_even());
        }
    }

    #[test]
    fn generated_primes_differ() {
        let mut r = rng();
        let a = generate_prime(64, &mut r).unwrap();
        let b = generate_prime(64, &mut r).unwrap();
        assert_ne!(a, b);
    }
}
