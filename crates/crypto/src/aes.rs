//! AES block cipher (FIPS 197) with CBC and CTR modes of operation.
//!
//! The SDMMon installation protocol encrypts the package (binary ‖
//! monitoring graph ‖ hash parameter) under a random AES key; this module
//! provides the cipher the control processor uses to decrypt it.

use crate::CryptoError;
use sdmmon_rng::RngCore;

/// AES forward S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// AES inverse S-box, computed from [`SBOX`] at first use.
fn inv_sbox() -> &'static [u8; 256] {
    use std::sync::OnceLock;
    static INV: OnceLock<[u8; 256]> = OnceLock::new();
    INV.get_or_init(|| {
        let mut inv = [0u8; 256];
        for (i, &s) in SBOX.iter().enumerate() {
            inv[s as usize] = i as u8;
        }
        inv
    })
}

/// Multiplication in GF(2⁸) with the AES polynomial x⁸+x⁴+x³+x+1.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// AES key size variants supported by the cipher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 192-bit key, 12 rounds.
    Aes192,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    fn nk(self) -> usize {
        match self {
            KeySize::Aes128 => 4,
            KeySize::Aes192 => 6,
            KeySize::Aes256 => 8,
        }
    }

    fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes192 => 12,
            KeySize::Aes256 => 14,
        }
    }

    /// Key length in bytes.
    pub fn key_bytes(self) -> usize {
        self.nk() * 4
    }
}

/// An expanded AES key ready for block operations.
///
/// # Examples
///
/// ```
/// use sdmmon_crypto::aes::Aes;
///
/// # fn main() -> Result<(), sdmmon_crypto::CryptoError> {
/// let aes = Aes::new(&[0u8; 16])?;
/// let ct = aes.encrypt_block([0u8; 16]);
/// assert_eq!(aes.decrypt_block(ct), [0u8; 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    rounds: usize,
}

/// AES block size in bytes.
pub const BLOCK: usize = 16;

impl Aes {
    /// Expands `key` (16, 24, or 32 bytes) into round keys.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKey`] for other key lengths.
    pub fn new(key: &[u8]) -> Result<Aes, CryptoError> {
        let size = match key.len() {
            16 => KeySize::Aes128,
            24 => KeySize::Aes192,
            32 => KeySize::Aes256,
            n => return Err(CryptoError::InvalidKey(format!("AES key of {n} bytes"))),
        };
        let nk = size.nk();
        let rounds = size.rounds();
        let nwords = 4 * (rounds + 1);
        let mut w: Vec<[u8; 4]> = Vec::with_capacity(nwords);
        for chunk in key.chunks_exact(4) {
            w.push(chunk.try_into().expect("4-byte word"));
        }
        let mut rcon = 1u8;
        for i in nk..nwords {
            let mut t = w[i - 1];
            if i % nk == 0 {
                t.rotate_left(1);
                for b in &mut t {
                    *b = SBOX[*b as usize];
                }
                t[0] ^= rcon;
                rcon = gmul(rcon, 2);
            } else if nk > 6 && i % nk == 4 {
                for b in &mut t {
                    *b = SBOX[*b as usize];
                }
            }
            let prev = w[i - nk];
            w.push([
                t[0] ^ prev[0],
                t[1] ^ prev[1],
                t[2] ^ prev[2],
                t[3] ^ prev[3],
            ]);
        }
        let round_keys = w
            .chunks_exact(4)
            .map(|c| {
                let mut rk = [0u8; 16];
                for (j, word) in c.iter().enumerate() {
                    rk[j * 4..j * 4 + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        Ok(Aes { round_keys, rounds })
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, mut state: [u8; 16]) -> [u8; 16] {
        xor_block(&mut state, &self.round_keys[0]);
        for round in 1..=self.rounds {
            for b in &mut state {
                *b = SBOX[*b as usize];
            }
            shift_rows(&mut state);
            if round != self.rounds {
                mix_columns(&mut state);
            }
            xor_block(&mut state, &self.round_keys[round]);
        }
        state
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, mut state: [u8; 16]) -> [u8; 16] {
        let inv = inv_sbox();
        xor_block(&mut state, &self.round_keys[self.rounds]);
        for round in (1..=self.rounds).rev() {
            inv_shift_rows(&mut state);
            for b in &mut state {
                *b = inv[*b as usize];
            }
            xor_block(&mut state, &self.round_keys[round - 1]);
            if round != 1 {
                inv_mix_columns(&mut state);
            }
        }
        state
    }

    /// Encrypts `plaintext` in CBC mode with PKCS#7 padding, prepending the
    /// random IV to the ciphertext.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdmmon_crypto::aes::Aes;
    /// use sdmmon_rng::SeedableRng;
    ///
    /// # fn main() -> Result<(), sdmmon_crypto::CryptoError> {
    /// let aes = Aes::new(&[7u8; 16])?;
    /// let mut rng = sdmmon_rng::StdRng::seed_from_u64(1);
    /// let ct = aes.encrypt_cbc(b"attack at dawn", &mut rng);
    /// assert_eq!(aes.decrypt_cbc(&ct)?, b"attack at dawn");
    /// # Ok(())
    /// # }
    /// ```
    pub fn encrypt_cbc<R: RngCore + ?Sized>(&self, plaintext: &[u8], rng: &mut R) -> Vec<u8> {
        let mut iv = [0u8; BLOCK];
        rng.fill_bytes(&mut iv);
        self.encrypt_cbc_with_iv(plaintext, iv)
    }

    /// CBC encryption under a caller-supplied IV (still IV-prefixed and
    /// PKCS#7-padded, so [`Aes::decrypt_cbc`] reads it unchanged).
    ///
    /// This is the deterministic-encryption building block of the fleet
    /// delta path: deriving the IV from the plaintext (SIV-style) makes
    /// unchanged sections re-encrypt to identical ciphertext, which is what
    /// lets a delta download skip them. Callers own the IV-misuse tradeoff:
    /// equal `(key, iv, plaintext)` triples produce equal ciphertexts.
    pub fn encrypt_cbc_with_iv(&self, plaintext: &[u8], iv: [u8; BLOCK]) -> Vec<u8> {
        let mut out = iv.to_vec();
        let pad = BLOCK - plaintext.len() % BLOCK;
        let mut prev = iv;
        let mut buf = plaintext.to_vec();
        buf.extend(std::iter::repeat_n(pad as u8, pad));
        for chunk in buf.chunks_exact(BLOCK) {
            let mut block: [u8; 16] = chunk.try_into().expect("block chunk");
            xor_block(&mut block, &prev);
            prev = self.encrypt_block(block);
            out.extend_from_slice(&prev);
        }
        out
    }

    /// Decrypts an IV-prefixed CBC ciphertext, stripping PKCS#7 padding.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidPadding`] when the ciphertext length is
    /// not a positive multiple of the block size past the IV, or the padding
    /// bytes are inconsistent.
    pub fn decrypt_cbc(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if ciphertext.len() < 2 * BLOCK || !ciphertext.len().is_multiple_of(BLOCK) {
            return Err(CryptoError::InvalidPadding);
        }
        let mut prev: [u8; 16] = ciphertext[..BLOCK].try_into().expect("iv");
        let mut out = Vec::with_capacity(ciphertext.len() - BLOCK);
        for chunk in ciphertext[BLOCK..].chunks_exact(BLOCK) {
            let block: [u8; 16] = chunk.try_into().expect("block chunk");
            let mut plain = self.decrypt_block(block);
            xor_block(&mut plain, &prev);
            out.extend_from_slice(&plain);
            prev = block;
        }
        let pad = *out.last().ok_or(CryptoError::InvalidPadding)? as usize;
        if pad == 0 || pad > BLOCK || out.len() < pad {
            return Err(CryptoError::InvalidPadding);
        }
        if out[out.len() - pad..].iter().any(|&b| b as usize != pad) {
            return Err(CryptoError::InvalidPadding);
        }
        out.truncate(out.len() - pad);
        Ok(out)
    }

    /// CTR-mode keystream XOR: encryption and decryption are the same
    /// operation. The 16-byte `nonce_counter` is the initial counter block,
    /// incremented big-endian per block.
    pub fn apply_ctr(&self, nonce_counter: [u8; 16], data: &[u8]) -> Vec<u8> {
        let mut counter = nonce_counter;
        let mut out = Vec::with_capacity(data.len());
        for chunk in data.chunks(BLOCK) {
            let keystream = self.encrypt_block(counter);
            out.extend(chunk.iter().zip(keystream.iter()).map(|(d, k)| d ^ k));
            increment_counter(&mut counter);
        }
        out
    }
}

fn xor_block(state: &mut [u8; 16], key: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(key.iter()) {
        *s ^= k;
    }
}

/// AES state is column-major: byte `r + 4c` is row r, column c.
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col: [u8; 4] = state[4 * c..4 * c + 4].try_into().expect("column");
        state[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
        state[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col: [u8; 4] = state[4 * c..4 * c + 4].try_into().expect("column");
        state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        state[4 * c + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        state[4 * c + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        state[4 * c + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

fn increment_counter(counter: &mut [u8; 16]) {
    for b in counter.iter_mut().rev() {
        *b = b.wrapping_add(1);
        if *b != 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdmmon_rng::SeedableRng;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_aes128_vector() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f");
        let pt: [u8; 16] = from_hex("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        let aes = Aes::new(&key).unwrap();
        let ct = aes.encrypt_block(pt);
        assert_eq!(ct.to_vec(), from_hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(aes.decrypt_block(ct), pt);
    }

    #[test]
    fn fips197_aes192_vector() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f1011121314151617");
        let pt: [u8; 16] = from_hex("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        let aes = Aes::new(&key).unwrap();
        let ct = aes.encrypt_block(pt);
        assert_eq!(ct.to_vec(), from_hex("dda97ca4864cdfe06eaf70a0ec0d7191"));
        assert_eq!(aes.decrypt_block(ct), pt);
    }

    #[test]
    fn fips197_aes256_vector() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let pt: [u8; 16] = from_hex("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        let aes = Aes::new(&key).unwrap();
        let ct = aes.encrypt_block(pt);
        assert_eq!(ct.to_vec(), from_hex("8ea2b7ca516745bfeafc49904b496089"));
        assert_eq!(aes.decrypt_block(ct), pt);
    }

    #[test]
    fn sp800_38a_ctr_vector() {
        // NIST SP 800-38A F.5.1 CTR-AES128.
        let key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
        let counter: [u8; 16] = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
            .try_into()
            .unwrap();
        let pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
        let aes = Aes::new(&key).unwrap();
        let ct = aes.apply_ctr(counter, &pt);
        assert_eq!(ct, from_hex("874d6191b620e3261bef6864990db6ce"));
        // CTR is an involution.
        assert_eq!(aes.apply_ctr(counter, &ct), pt);
    }

    #[test]
    fn invalid_key_lengths_rejected() {
        for len in [0usize, 1, 15, 17, 23, 31, 33] {
            assert!(Aes::new(&vec![0u8; len]).is_err(), "len {len}");
        }
    }

    #[test]
    fn cbc_round_trip_various_lengths() {
        let aes = Aes::new(&[9u8; 32]).unwrap();
        let mut rng = sdmmon_rng::StdRng::seed_from_u64(5);
        for len in [0usize, 1, 15, 16, 17, 31, 32, 100, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = aes.encrypt_cbc(&pt, &mut rng);
            assert_eq!(aes.decrypt_cbc(&ct).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn cbc_tamper_detected_as_padding_or_garbage() {
        let aes = Aes::new(&[9u8; 16]).unwrap();
        let mut rng = sdmmon_rng::StdRng::seed_from_u64(5);
        let ct = aes.encrypt_cbc(b"network operator package", &mut rng);
        // Truncated / misaligned ciphertexts are rejected outright.
        assert_eq!(
            aes.decrypt_cbc(&ct[..ct.len() - 1]),
            Err(CryptoError::InvalidPadding)
        );
        assert_eq!(
            aes.decrypt_cbc(&ct[..BLOCK]),
            Err(CryptoError::InvalidPadding)
        );
        // Flipping a bit in the last block corrupts padding with high
        // probability; either way the plaintext must differ.
        let mut tampered = ct.clone();
        *tampered.last_mut().unwrap() ^= 1;
        match aes.decrypt_cbc(&tampered) {
            Err(CryptoError::InvalidPadding) => {}
            Ok(p) => assert_ne!(p, b"network operator package"),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn ctr_counter_wraps() {
        let mut c = [0xffu8; 16];
        increment_counter(&mut c);
        assert_eq!(c, [0u8; 16]);
    }

    #[test]
    fn key_size_metadata() {
        assert_eq!(KeySize::Aes128.key_bytes(), 16);
        assert_eq!(KeySize::Aes192.key_bytes(), 24);
        assert_eq!(KeySize::Aes256.key_bytes(), 32);
    }
}
