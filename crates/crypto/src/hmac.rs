//! HMAC-SHA-256 (RFC 2104), used as an integrity extension for package
//! transport experiments.

use crate::sha256::{sha256, Sha256};

const BLOCK: usize = 64;

/// Computes HMAC-SHA-256 of `message` under `key`.
///
/// # Examples
///
/// ```
/// let tag = sdmmon_crypto::hmac::hmac_sha256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-shape tag comparison (full scan regardless of mismatch point).
pub fn verify_hmac_sha256(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    let expect = hmac_sha256(key, message);
    if tag.len() != expect.len() {
        return false;
    }
    tag.iter()
        .zip(expect.iter())
        .fold(0u8, |acc, (a, b)| acc | (a ^ b))
        == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_test_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_test_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        // Test case 6: 131-byte key (hashed down before padding).
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify_hmac_sha256(b"k", b"m", &tag));
        assert!(!verify_hmac_sha256(b"k", b"other", &tag));
        assert!(!verify_hmac_sha256(b"k2", b"m", &tag));
        assert!(!verify_hmac_sha256(b"k", b"m", &tag[..31]));
    }
}
