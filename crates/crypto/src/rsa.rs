//! RSA key generation, PKCS#1 v1.5 encryption, and SHA-256 signatures.
//!
//! The SDMMon protocol uses RSA three ways, all reproduced here:
//!
//! 1. the **manufacturer** signs the network operator's public key to form
//!    the certificate installed at boot,
//! 2. the **network operator** signs each package of binary ‖ monitoring
//!    graph ‖ hash parameter,
//! 3. the package's random AES key is **encrypted to the specific router's
//!    public key** so no other device can decrypt it (security requirement
//!    SR4).

use crate::bignum::BigUint;
use crate::montgomery::MontgomeryContext;
use crate::prime::generate_prime;
use crate::sha256::sha256;
use crate::CryptoError;
use sdmmon_rng::RngCore;

/// The customary public exponent 65537.
const PUBLIC_EXPONENT: u64 = 65537;

/// DER prefix of the PKCS#1 v1.5 `DigestInfo` structure for SHA-256.
const SHA256_DIGEST_INFO: [u8; 19] = [
    0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02, 0x01, 0x05,
    0x00, 0x04, 0x20,
];

/// An RSA public key `(n, e)`.
///
/// # Examples
///
/// ```
/// use sdmmon_crypto::rsa::RsaKeyPair;
/// use sdmmon_rng::SeedableRng;
///
/// # fn main() -> Result<(), sdmmon_crypto::CryptoError> {
/// let mut rng = sdmmon_rng::StdRng::seed_from_u64(11);
/// let keys = RsaKeyPair::generate(512, &mut rng)?;
/// let ct = keys.public.encrypt(b"aes key bytes", &mut rng)?;
/// assert_eq!(keys.private.decrypt(&ct)?, b"aes key bytes");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
}

/// An RSA private key with CRT parameters (`p`, `q`, `d mod p-1`,
/// `d mod q-1`, `q⁻¹ mod p`), matching what OpenSSL — the paper's crypto
/// stack — stores and uses: the Chinese-remainder evaluation runs two
/// half-size exponentiations instead of one full-size one (≈4× fewer limb
/// multiplications).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaPrivateKey {
    n: BigUint,
    d: BigUint,
    p: BigUint,
    q: BigUint,
    dp: BigUint,
    dq: BigUint,
    qinv: BigUint,
    /// The matching public key, retained for convenience.
    public: RsaPublicKey,
}

/// A freshly generated public/private key pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaKeyPair {
    /// The shareable public half.
    pub public: RsaPublicKey,
    /// The secret half.
    pub private: RsaPrivateKey,
}

impl RsaKeyPair {
    /// Generates a key pair with a modulus of exactly `bits` bits
    /// (`e = 65537`).
    ///
    /// The paper uses 2048-bit keys; tests in this repository typically use
    /// 512-bit keys to keep wall-clock time low — the protocol code is
    /// size-agnostic.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKey`] when `bits < 128` (too small to
    /// carry even a padded AES key) and propagates prime-generation failure.
    pub fn generate<R: RngCore + ?Sized>(
        bits: usize,
        rng: &mut R,
    ) -> Result<RsaKeyPair, CryptoError> {
        if bits < 128 {
            return Err(CryptoError::InvalidKey(format!(
                "modulus of {bits} bits is too small"
            )));
        }
        let e = BigUint::from(PUBLIC_EXPONENT);
        let one = BigUint::one();
        loop {
            let p = generate_prime(bits / 2, rng)?;
            let q = generate_prime(bits - bits / 2, rng)?;
            if p == q {
                continue;
            }
            let n = &p * &q;
            if n.bit_len() != bits {
                continue;
            }
            let p_1 = &p - &one;
            let q_1 = &q - &one;
            let phi = &p_1 * &q_1;
            let Some(d) = e.mod_inv(&phi) else {
                continue;
            };
            let Some(qinv) = q.mod_inv(&p) else {
                continue; // cannot happen for distinct primes, but be safe
            };
            let dp = &d % &p_1;
            let dq = &d % &q_1;
            let public = RsaPublicKey {
                n: n.clone(),
                e: e.clone(),
            };
            let private = RsaPrivateKey {
                n,
                d,
                p,
                q,
                dp,
                dq,
                qinv,
                public: public.clone(),
            };
            return Ok(RsaKeyPair { public, private });
        }
    }
}

impl RsaPublicKey {
    /// Reconstructs a public key from its modulus and exponent bytes
    /// (big-endian), as carried inside certificates.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKey`] for a modulus under 128 bits or a
    /// zero/one exponent.
    pub fn from_parts(n: &[u8], e: &[u8]) -> Result<RsaPublicKey, CryptoError> {
        let n = BigUint::from_be_bytes(n);
        let e = BigUint::from_be_bytes(e);
        if n.bit_len() < 128 {
            return Err(CryptoError::InvalidKey("modulus too small".into()));
        }
        if e <= BigUint::one() {
            return Err(CryptoError::InvalidKey("exponent must exceed 1".into()));
        }
        Ok(RsaPublicKey { n, e })
    }

    /// The modulus as big-endian bytes.
    pub fn modulus_bytes(&self) -> Vec<u8> {
        self.n.to_be_bytes()
    }

    /// The public exponent as big-endian bytes.
    pub fn exponent_bytes(&self) -> Vec<u8> {
        self.e.to_be_bytes()
    }

    /// Modulus size in whole bytes (the RSA block size).
    pub fn modulus_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// Modulus size in bits.
    pub fn modulus_bits(&self) -> usize {
        self.n.bit_len()
    }

    /// The public operation `m^e mod n` through Montgomery arithmetic, with
    /// the dedicated 16-squarings-plus-one-multiply path for e = 65537.
    fn public_op(&self, m: &BigUint) -> BigUint {
        match MontgomeryContext::new(&self.n) {
            Some(ctx) if self.e == BigUint::from(PUBLIC_EXPONENT) => ctx.pow_65537(m),
            Some(ctx) => ctx.mod_pow(m, &self.e),
            // An even modulus is not a usable RSA key; keep the schoolbook
            // semantics rather than panicking.
            None => m.mod_pow(&self.e, &self.n),
        }
    }

    /// Encrypts `message` with PKCS#1 v1.5 type-2 padding.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::MessageTooLong`] when `message` exceeds
    /// `modulus_len() - 11` bytes.
    pub fn encrypt<R: RngCore + ?Sized>(
        &self,
        message: &[u8],
        rng: &mut R,
    ) -> Result<Vec<u8>, CryptoError> {
        sdmmon_obs::metrics().inc(sdmmon_obs::Counter::CryptoRsaWrap);
        let k = self.modulus_len();
        if message.len() + 11 > k {
            return Err(CryptoError::MessageTooLong);
        }
        let em = type2_pad(message, k, rng);
        let m = BigUint::from_be_bytes(&em);
        let c = self.public_op(&m);
        Ok(c.to_be_bytes_padded(k))
    }

    /// Verifies a PKCS#1 v1.5 SHA-256 signature over `message`.
    ///
    /// Returns `false` (never an error) for any malformed or mismatched
    /// signature, so callers cannot distinguish failure modes.
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> bool {
        sdmmon_obs::metrics().inc(sdmmon_obs::Counter::CryptoRsaVerify);
        if signature.len() != self.modulus_len() {
            return false;
        }
        let s = BigUint::from_be_bytes(signature);
        if s >= self.n {
            return false;
        }
        let em = self.public_op(&s).to_be_bytes_padded(self.modulus_len());
        em == expected_signature_em(message, self.modulus_len())
    }
}

impl RsaPrivateKey {
    /// The matching public key.
    pub fn public(&self) -> &RsaPublicKey {
        &self.public
    }

    /// The private-key operation `c^d mod n`, evaluated via the Chinese
    /// Remainder Theorem (two half-size exponentiations recombined with
    /// Garner's formula), exactly as OpenSSL does it. The two half-size
    /// exponentiations run in Montgomery form (RSA primes are odd).
    fn private_op(&self, c: &BigUint) -> BigUint {
        let m1 = c.mod_pow_fast(&self.dp, &self.p);
        let m2 = c.mod_pow_fast(&self.dq, &self.q);
        // h = qinv * (m1 - m2) mod p, with the subtraction lifted into p's
        // residue ring.
        let m2_mod_p = &m2 % &self.p;
        let diff = match m1.checked_sub(&m2_mod_p) {
            Some(d) => d,
            None => &(&m1 + &self.p) - &m2_mod_p,
        };
        let h = &(&self.qinv * &diff) % &self.p;
        &m2 + &(&h * &self.q)
    }

    /// Slow reference evaluation of the private operation (no CRT), used
    /// by tests to cross-check [`RsaPrivateKey::private_op`].
    #[doc(hidden)]
    pub fn private_op_plain(&self, c: &BigUint) -> BigUint {
        c.mod_pow(&self.d, &self.n)
    }

    #[doc(hidden)]
    pub fn private_op_crt(&self, c: &BigUint) -> BigUint {
        self.private_op(c)
    }

    /// Decrypts a PKCS#1 v1.5 type-2 ciphertext.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidPadding`] for wrong-length ciphertexts
    /// or malformed padding (including ciphertexts produced for a different
    /// key — this is exactly how SR4 manifests at the crypto layer).
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        sdmmon_obs::metrics().inc(sdmmon_obs::Counter::CryptoRsaUnwrap);
        let k = self.public.modulus_len();
        if ciphertext.len() != k {
            return Err(CryptoError::InvalidPadding);
        }
        let c = BigUint::from_be_bytes(ciphertext);
        if c >= self.n {
            return Err(CryptoError::InvalidPadding);
        }
        let em = self.private_op(&c).to_be_bytes_padded(k);
        if em[0] != 0x00 || em[1] != 0x02 {
            return Err(CryptoError::InvalidPadding);
        }
        let sep = em[2..]
            .iter()
            .position(|&b| b == 0)
            .ok_or(CryptoError::InvalidPadding)?;
        if sep < 8 {
            // PS must be at least 8 bytes.
            return Err(CryptoError::InvalidPadding);
        }
        Ok(em[sep + 3..].to_vec())
    }

    /// Produces a PKCS#1 v1.5 SHA-256 signature over `message`
    /// (deterministic).
    ///
    /// # Examples
    ///
    /// ```
    /// use sdmmon_crypto::rsa::RsaKeyPair;
    /// use sdmmon_rng::SeedableRng;
    ///
    /// # fn main() -> Result<(), sdmmon_crypto::CryptoError> {
    /// let mut rng = sdmmon_rng::StdRng::seed_from_u64(2);
    /// let keys = RsaKeyPair::generate(512, &mut rng)?;
    /// let sig = keys.private.sign(b"package");
    /// assert!(keys.public.verify(b"package", &sig));
    /// assert!(!keys.public.verify(b"tampered", &sig));
    /// # Ok(())
    /// # }
    /// ```
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        sdmmon_obs::metrics().inc(sdmmon_obs::Counter::CryptoRsaSign);
        let k = self.public.modulus_len();
        let em = expected_signature_em(message, k);
        let m = BigUint::from_be_bytes(&em);
        self.private_op(&m).to_be_bytes_padded(k)
    }
}

/// Builds the type-2 encoded message `0x00 02 PS 00 M` with non-zero
/// random padding `PS` drawn from `rng` by rejection sampling.
///
/// Callers must have checked `message.len() + 11 <= k`; the draw order
/// (one `next_u32` per accepted byte, retried on zero) is part of the
/// deterministic-replay contract and must not change.
fn type2_pad<R: RngCore + ?Sized>(message: &[u8], k: usize, rng: &mut R) -> Vec<u8> {
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x02);
    for _ in 0..k - message.len() - 3 {
        em.push(loop {
            let b = (rng.next_u32() & 0xff) as u8;
            if b != 0 {
                break b;
            }
        });
    }
    em.push(0x00);
    em.extend_from_slice(message);
    em
}

/// Wraps the same short secret under many recipient public keys in one
/// pass — the fleet key-wrap: one AES package key, N routers.
///
/// The padding stream is drawn from `rng` in recipient order, so the output
/// is byte-identical to calling [`RsaPublicKey::encrypt`] once per recipient
/// with the same rng (pinned by `batch_wrap_matches_sequential_encrypt`).
/// What the batch form amortizes is the Montgomery context: contexts are
/// built once per *distinct modulus* and reused, so a 10k-router deploy
/// drawing keys from a provisioning pool performs O(pool) context setups
/// instead of O(routers).
///
/// # Errors
///
/// Returns [`CryptoError::MessageTooLong`] if `secret` does not fit under
/// any recipient's modulus; validation happens up front so a failed batch
/// never half-advances the rng stream.
pub fn wrap_key_batch<R: RngCore + ?Sized>(
    secret: &[u8],
    recipients: &[&RsaPublicKey],
    rng: &mut R,
) -> Result<Vec<Vec<u8>>, CryptoError> {
    for key in recipients {
        if secret.len() + 11 > key.modulus_len() {
            return Err(CryptoError::MessageTooLong);
        }
    }
    let e_65537 = BigUint::from(PUBLIC_EXPONENT);
    let mut by_modulus: std::collections::BTreeMap<Vec<u8>, usize> =
        std::collections::BTreeMap::new();
    let mut contexts: Vec<Option<MontgomeryContext>> = Vec::new();
    let mut out = Vec::with_capacity(recipients.len());
    for key in recipients {
        let k = key.modulus_len();
        let slot = *by_modulus.entry(key.modulus_bytes()).or_insert_with(|| {
            contexts.push(MontgomeryContext::new(&key.n));
            contexts.len() - 1
        });
        let em = type2_pad(secret, k, rng);
        let m = BigUint::from_be_bytes(&em);
        let c = match &contexts[slot] {
            Some(ctx) if key.e == e_65537 => ctx.pow_65537(&m),
            Some(ctx) => ctx.mod_pow(&m, &key.e),
            None => m.mod_pow(&key.e, &key.n),
        };
        out.push(c.to_be_bytes_padded(k));
    }
    sdmmon_obs::metrics().add(sdmmon_obs::Counter::CryptoRsaWrap, recipients.len() as u64);
    Ok(out)
}

/// Builds the type-1 encoded message `0x00 01 FF… 00 DigestInfo digest`.
fn expected_signature_em(message: &[u8], k: usize) -> Vec<u8> {
    let digest = sha256(message);
    let t_len = SHA256_DIGEST_INFO.len() + digest.len();
    assert!(k >= t_len + 11, "modulus too small for SHA-256 signature");
    let mut em = Vec::with_capacity(k);
    em.push(0x00);
    em.push(0x01);
    em.extend(std::iter::repeat_n(0xff, k - t_len - 3));
    em.push(0x00);
    em.extend_from_slice(&SHA256_DIGEST_INFO);
    em.extend_from_slice(&digest);
    em
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdmmon_rng::SeedableRng;

    fn rng() -> sdmmon_rng::StdRng {
        sdmmon_rng::StdRng::seed_from_u64(0xBEEF)
    }

    fn keys(bits: usize) -> RsaKeyPair {
        RsaKeyPair::generate(bits, &mut rng()).unwrap()
    }

    #[test]
    fn modulus_has_requested_bits() {
        for bits in [128usize, 256, 512] {
            let k = keys(bits);
            assert_eq!(k.public.modulus_bits(), bits);
        }
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let k = keys(512);
        let mut r = rng();
        for msg in [&b""[..], b"x", b"a 32-byte AES-256 session key!!!"] {
            let ct = k.public.encrypt(msg, &mut r).unwrap();
            assert_eq!(ct.len(), 64);
            assert_eq!(k.private.decrypt(&ct).unwrap(), msg);
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let k = keys(512);
        let mut r = rng();
        let a = k.public.encrypt(b"same message", &mut r).unwrap();
        let b = k.public.encrypt(b"same message", &mut r).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn oversized_message_rejected() {
        let k = keys(256);
        let msg = vec![1u8; 32 - 11 + 1];
        assert_eq!(
            k.public.encrypt(&msg, &mut rng()),
            Err(CryptoError::MessageTooLong)
        );
    }

    #[test]
    fn decrypt_for_wrong_key_fails() {
        let alice = keys(512);
        let eve = RsaKeyPair::generate(512, &mut sdmmon_rng::StdRng::seed_from_u64(99)).unwrap();
        let ct = alice.public.encrypt(b"secret", &mut rng()).unwrap();
        // SR4 at the crypto layer: another device's key cannot decrypt.
        assert!(eve.private.decrypt(&ct).is_err());
    }

    #[test]
    fn signature_round_trip_and_tamper() {
        let k = keys(512);
        let sig = k.private.sign(b"binary || graph || param");
        assert!(k.public.verify(b"binary || graph || param", &sig));
        assert!(!k.public.verify(b"binary || graph || pwned", &sig));
        let mut bad = sig.clone();
        bad[10] ^= 0x40;
        assert!(!k.public.verify(b"binary || graph || param", &bad));
    }

    #[test]
    fn signature_is_deterministic() {
        let k = keys(512);
        assert_eq!(k.private.sign(b"m"), k.private.sign(b"m"));
    }

    #[test]
    fn verify_rejects_wrong_length_and_overflow() {
        let k = keys(512);
        let sig = k.private.sign(b"m");
        assert!(!k.public.verify(b"m", &sig[1..]));
        let too_big = k.public.modulus_bytes(); // n itself, >= n
        assert!(!k.public.verify(b"m", &too_big));
    }

    #[test]
    fn public_key_from_parts_round_trip() {
        let k = keys(256);
        let rebuilt =
            RsaPublicKey::from_parts(&k.public.modulus_bytes(), &k.public.exponent_bytes())
                .unwrap();
        assert_eq!(rebuilt, k.public);
    }

    #[test]
    fn from_parts_validates() {
        assert!(RsaPublicKey::from_parts(&[1, 2, 3], &[1, 0, 1]).is_err());
        let k = keys(256);
        assert!(RsaPublicKey::from_parts(&k.public.modulus_bytes(), &[1]).is_err());
    }

    #[test]
    fn tiny_modulus_rejected() {
        assert!(matches!(
            RsaKeyPair::generate(64, &mut rng()),
            Err(CryptoError::InvalidKey(_))
        ));
    }

    #[test]
    fn crt_matches_plain_exponentiation() {
        let k = keys(512);
        let mut r = rng();
        for _ in 0..10 {
            let c =
                BigUint::random_below(&BigUint::from_be_bytes(&k.public.modulus_bytes()), &mut r);
            assert_eq!(k.private.private_op_crt(&c), k.private.private_op_plain(&c));
        }
    }

    #[test]
    fn cross_key_signature_rejected() {
        let a = keys(512);
        let b = RsaKeyPair::generate(512, &mut sdmmon_rng::StdRng::seed_from_u64(1234)).unwrap();
        let sig = a.private.sign(b"msg");
        assert!(!b.public.verify(b"msg", &sig));
    }

    #[test]
    fn batch_wrap_matches_sequential_encrypt() {
        // Three distinct keys plus a repeat (the fleet key-pool case); the
        // batch must consume the rng exactly as the sequential loop does.
        let mut keygen = sdmmon_rng::StdRng::seed_from_u64(4242);
        let pool: Vec<RsaKeyPair> = (0..3)
            .map(|_| RsaKeyPair::generate(256, &mut keygen).unwrap())
            .collect();
        let recipients: Vec<&RsaPublicKey> = [0usize, 1, 2, 1, 0, 0]
            .iter()
            .map(|&i| &pool[i].public)
            .collect();
        let secret = [0x5a; 16];

        let mut seq_rng = sdmmon_rng::StdRng::seed_from_u64(77);
        let sequential: Vec<Vec<u8>> = recipients
            .iter()
            .map(|key| key.encrypt(&secret, &mut seq_rng).unwrap())
            .collect();

        let mut batch_rng = sdmmon_rng::StdRng::seed_from_u64(77);
        let batch = wrap_key_batch(&secret, &recipients, &mut batch_rng).unwrap();
        assert_eq!(batch, sequential);
        // Both streams ended at the same point.
        assert_eq!(seq_rng.next_u64(), batch_rng.next_u64());

        // Every wrap unwraps under its own private key.
        for (wrapped, &i) in batch.iter().zip([0usize, 1, 2, 1, 0, 0].iter()) {
            assert_eq!(pool[i].private.decrypt(wrapped).unwrap(), secret);
        }
    }

    #[test]
    fn batch_wrap_oversized_secret_rejected_upfront() {
        let k = keys(256);
        let recipients = [&k.public, &k.public];
        let secret = [9u8; 64]; // 64 + 11 > 32-byte modulus
        let mut r = rng();
        assert!(matches!(
            wrap_key_batch(&secret, &recipients, &mut r),
            Err(CryptoError::MessageTooLong)
        ));
        // The failed batch consumed no randomness.
        let mut fresh = rng();
        assert_eq!(r.next_u64(), fresh.next_u64());
    }
}
