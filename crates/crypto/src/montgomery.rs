//! Montgomery-form modular arithmetic for odd moduli.
//!
//! All RSA hot paths in the installation protocol — signing, decryption,
//! verification, and the Miller–Rabin rounds inside key generation — reduce
//! to modular exponentiation. The schoolbook [`BigUint::mod_pow`] pays a
//! full Knuth Algorithm D division after every multiplication; Montgomery
//! REDC replaces that division with a second multiplication against the
//! modulus, which the CIOS (coarsely integrated operand scanning) loop
//! below fuses into a single pass.
//!
//! [`MontgomeryContext::mod_pow`] adds fixed 4-bit-window exponentiation on
//! top: 15 precomputed odd powers trade one multiplication per window of
//! four exponent bits against the one-per-set-bit of square-and-multiply.
//! [`MontgomeryContext::pow_65537`] is the public-exponent fast path —
//! e = 2¹⁶ + 1 needs exactly 16 squarings and one multiplication.
//!
//! This code favours clarity over side-channel hardening (the simulation
//! threat model AC1–AC4 does not include timing attacks on the operator's
//! own signing box); exponent-dependent branches are therefore acceptable.
//!
//! # Examples
//!
//! ```
//! use sdmmon_crypto::bignum::BigUint;
//! use sdmmon_crypto::montgomery::MontgomeryContext;
//!
//! let n = BigUint::from(497u64); // odd modulus
//! let ctx = MontgomeryContext::new(&n).unwrap();
//! let r = ctx.mod_pow(&BigUint::from(4u64), &BigUint::from(13u64));
//! assert_eq!(r, BigUint::from(445u64));
//! // Bit-identical to the schoolbook path:
//! assert_eq!(r, BigUint::from(4u64).mod_pow(&BigUint::from(13u64), &n));
//! ```

use crate::bignum::BigUint;

/// Precomputed constants for Montgomery arithmetic modulo an odd `n`.
#[derive(Debug, Clone)]
pub struct MontgomeryContext {
    /// Modulus limbs, little-endian, length `k` (top limb non-zero).
    n: Vec<u64>,
    /// The modulus as a [`BigUint`], for reductions and fallbacks.
    n_big: BigUint,
    /// `-n⁻¹ mod 2⁶⁴` — the REDC folding constant.
    n0inv: u64,
    /// `R² mod n` where `R = 2^(64k)`, used to enter Montgomery form.
    r2: Vec<u64>,
    /// `R mod n` — the Montgomery form of 1.
    one: Vec<u64>,
}

/// A residue held in Montgomery form (`x·R mod n`), tied to the context
/// that produced it. The representation is canonical (`< n`), so equality
/// of elements is equality of the residues they represent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MontElem(Vec<u64>);

impl MontgomeryContext {
    /// Builds a context for `modulus`. Returns `None` when the modulus is
    /// even or `< 3` — Montgomery reduction requires `gcd(n, 2⁶⁴) = 1`.
    pub fn new(modulus: &BigUint) -> Option<MontgomeryContext> {
        if modulus.is_even() || modulus <= &BigUint::one() {
            return None;
        }
        let n = modulus.limbs().to_vec();
        let k = n.len();

        // n0inv = n[0]⁻¹ mod 2⁶⁴ by Newton iteration: each step doubles the
        // number of correct low bits, and x = n[0] is already correct mod 8.
        let n0 = n[0];
        let mut inv = n0;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n0inv = inv.wrapping_neg();

        // R² mod n via one full division — amortized over the hundreds of
        // REDC multiplications a single exponentiation performs.
        let r2_big = BigUint::one().shl(2 * 64 * k).div_rem(modulus).1;
        let r2 = pad(r2_big.limbs(), k);
        let one = pad(BigUint::one().shl(64 * k).div_rem(modulus).1.limbs(), k);

        Some(MontgomeryContext {
            n,
            n_big: modulus.clone(),
            n0inv,
            r2,
            one,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n_big
    }

    /// Converts `x` into Montgomery form (reducing mod n first).
    pub fn convert(&self, x: &BigUint) -> MontElem {
        let reduced = if x < &self.n_big {
            x.clone()
        } else {
            x.div_rem(&self.n_big).1
        };
        MontElem(self.redc_mul(&pad(reduced.limbs(), self.n.len()), &self.r2))
    }

    /// Converts a Montgomery-form element back to an ordinary residue.
    pub fn recover(&self, x: &MontElem) -> BigUint {
        let mut unit = vec![0u64; self.n.len()];
        unit[0] = 1;
        BigUint::from_limbs(self.redc_mul(&x.0, &unit))
    }

    /// The Montgomery form of 1.
    pub fn one_elem(&self) -> MontElem {
        MontElem(self.one.clone())
    }

    /// Montgomery product of two elements.
    pub fn mul(&self, a: &MontElem, b: &MontElem) -> MontElem {
        MontElem(self.redc_mul(&a.0, &b.0))
    }

    /// Raises a Montgomery-form base to `exponent` with fixed 4-bit-window
    /// exponentiation, staying in Montgomery form.
    pub fn pow(&self, base: &MontElem, exponent: &BigUint) -> MontElem {
        let bits = exponent.bit_len();
        if bits == 0 {
            return self.one_elem();
        }

        // table[i] = baseⁱ in Montgomery form, i in 0..16.
        let mut table = Vec::with_capacity(16);
        table.push(self.one_elem());
        table.push(base.clone());
        for i in 2..16 {
            table.push(self.mul(&table[i - 1], base));
        }

        let windows = bits.div_ceil(4);
        let window_at = |w: usize| -> usize {
            let lo = w * 4;
            (0..4)
                .filter(|&b| exponent.bit(lo + b))
                .fold(0usize, |acc, b| acc | (1 << b))
        };

        let mut acc = table[window_at(windows - 1)].clone();
        for w in (0..windows - 1).rev() {
            for _ in 0..4 {
                acc = self.mul(&acc, &acc);
            }
            let idx = window_at(w);
            if idx != 0 {
                acc = self.mul(&acc, &table[idx]);
            }
        }
        acc
    }

    /// Computes `base^exponent mod n` — the drop-in replacement for
    /// [`BigUint::mod_pow`] on odd moduli.
    pub fn mod_pow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        self.recover(&self.pow(&self.convert(base), exponent))
    }

    /// Fast path for the customary RSA public exponent e = 65537 = 2¹⁶ + 1:
    /// sixteen squarings and a single multiplication.
    pub fn pow_65537(&self, base: &BigUint) -> BigUint {
        let b = self.convert(base);
        let mut acc = b.clone();
        for _ in 0..16 {
            acc = self.mul(&acc, &acc);
        }
        self.recover(&self.mul(&acc, &b))
    }

    /// CIOS Montgomery multiplication: returns `a·b·R⁻¹ mod n` for inputs
    /// `< n`, interleaving the multiply and REDC passes limb by limb.
    fn redc_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.n.len();
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(b.len(), k);
        let mut t = vec![0u64; k + 2];

        for &ai in a {
            // t += ai * b
            let mut carry: u128 = 0;
            for j in 0..k {
                let s = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = (s >> 64) as u64;

            // Fold out the low limb: t = (t + m*n) / 2⁶⁴ with m chosen so
            // the low limb of the sum is zero.
            let m = t[0].wrapping_mul(self.n0inv);
            let s = t[0] as u128 + m as u128 * self.n[0] as u128;
            let mut carry = s >> 64;
            for j in 1..k {
                let s = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as u64;
            t[k] = t[k + 1].wrapping_add((s >> 64) as u64);
            t[k + 1] = 0;
        }

        // One conditional subtraction brings the result below n.
        if t[k] != 0 || ge(&t[..k], &self.n) {
            sub_in_place(&mut t, &self.n);
        }
        t.truncate(k);
        t
    }
}

/// Copies `limbs` into a fresh vector of exactly `k` limbs.
fn pad(limbs: &[u64], k: usize) -> Vec<u64> {
    debug_assert!(limbs.len() <= k);
    let mut out = vec![0u64; k];
    out[..limbs.len()].copy_from_slice(limbs);
    out
}

/// `a >= b` for equal-length little-endian limb slices.
fn ge(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// `a -= b` in place, where `a` has one extra (possibly set) top limb.
fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..b.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = u64::from(b1) + u64::from(b2);
    }
    a[b.len()] = a[b.len()].wrapping_sub(borrow);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdmmon_rng::{Rng, SeedableRng, StdRng};

    fn random_odd(rng: &mut StdRng, bits: usize) -> BigUint {
        let mut n = BigUint::random_exact_bits(bits, rng);
        if n.is_even() {
            n = &n + &BigUint::one();
        }
        n
    }

    #[test]
    fn rejects_even_and_trivial_moduli() {
        assert!(MontgomeryContext::new(&BigUint::from(10u64)).is_none());
        assert!(MontgomeryContext::new(&BigUint::zero()).is_none());
        assert!(MontgomeryContext::new(&BigUint::one()).is_none());
        assert!(MontgomeryContext::new(&BigUint::from(3u64)).is_some());
    }

    #[test]
    fn round_trip_through_montgomery_form() {
        let mut rng = StdRng::seed_from_u64(101);
        for bits in [64usize, 127, 512, 1024] {
            let n = random_odd(&mut rng, bits);
            let ctx = MontgomeryContext::new(&n).unwrap();
            for _ in 0..10 {
                let x = BigUint::random_below(&n, &mut rng);
                assert_eq!(ctx.recover(&ctx.convert(&x)), x);
            }
        }
    }

    #[test]
    fn mul_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(102);
        for bits in [64usize, 192, 521] {
            let n = random_odd(&mut rng, bits);
            let ctx = MontgomeryContext::new(&n).unwrap();
            for _ in 0..20 {
                let a = BigUint::random_below(&n, &mut rng);
                let b = BigUint::random_below(&n, &mut rng);
                let got = ctx.recover(&ctx.mul(&ctx.convert(&a), &ctx.convert(&b)));
                assert_eq!(got, &(&a * &b) % &n);
            }
        }
    }

    #[test]
    fn mod_pow_matches_oracle() {
        let mut rng = StdRng::seed_from_u64(103);
        for bits in [64usize, 160, 512] {
            let n = random_odd(&mut rng, bits);
            let ctx = MontgomeryContext::new(&n).unwrap();
            for _ in 0..8 {
                let base = BigUint::random_bits(bits + 17, &mut rng); // may exceed n
                let e = BigUint::random_bits(rng.gen_range(0..=96usize), &mut rng);
                assert_eq!(ctx.mod_pow(&base, &e), base.mod_pow(&e, &n));
            }
        }
    }

    #[test]
    fn zero_exponent_and_zero_base() {
        let n = BigUint::from(1009u64);
        let ctx = MontgomeryContext::new(&n).unwrap();
        assert_eq!(
            ctx.mod_pow(&BigUint::from(5u64), &BigUint::zero()),
            BigUint::one()
        );
        assert_eq!(
            ctx.mod_pow(&BigUint::zero(), &BigUint::from(5u64)),
            BigUint::zero()
        );
        // 1^n and n ≡ 0 cases
        assert_eq!(
            ctx.mod_pow(&BigUint::one(), &BigUint::from(999u64)),
            BigUint::one()
        );
        assert_eq!(ctx.mod_pow(&n, &BigUint::from(3u64)), BigUint::zero());
    }

    #[test]
    fn pow_65537_matches_generic() {
        let mut rng = StdRng::seed_from_u64(104);
        let e = BigUint::from(65537u64);
        for bits in [128usize, 512] {
            let n = random_odd(&mut rng, bits);
            let ctx = MontgomeryContext::new(&n).unwrap();
            for _ in 0..5 {
                let m = BigUint::random_below(&n, &mut rng);
                assert_eq!(ctx.pow_65537(&m), ctx.mod_pow(&m, &e));
                assert_eq!(ctx.pow_65537(&m), m.mod_pow(&e, &n));
            }
        }
    }

    #[test]
    fn fermat_little_theorem_holds() {
        // 2¹²⁷ − 1 is a Mersenne prime: a^(p−1) ≡ 1 (mod p).
        let p = BigUint::one()
            .shl(127)
            .checked_sub(&BigUint::one())
            .unwrap();
        let ctx = MontgomeryContext::new(&p).unwrap();
        let exp = p.checked_sub(&BigUint::one()).unwrap();
        let mut rng = StdRng::seed_from_u64(105);
        for _ in 0..4 {
            let a = BigUint::random_below(&p, &mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(ctx.mod_pow(&a, &exp), BigUint::one());
        }
    }

    #[test]
    fn mod_pow_fast_dispatches_correctly() {
        let mut rng = StdRng::seed_from_u64(106);
        // Odd modulus → Montgomery; even modulus → schoolbook fallback.
        for modulus in [BigUint::from(1001u64), BigUint::from(1000u64)] {
            for _ in 0..16 {
                let a = BigUint::random_bits(96, &mut rng);
                let e = BigUint::random_bits(40, &mut rng);
                assert_eq!(a.mod_pow_fast(&e, &modulus), a.mod_pow(&e, &modulus));
            }
        }
    }

    #[test]
    fn single_limb_and_max_limb_moduli() {
        // Edge shapes: modulus with top limb all ones, and tiny modulus.
        let n = BigUint::from_be_bytes(&[0xff; 16]); // 2¹²⁸ − 1, odd
        let ctx = MontgomeryContext::new(&n).unwrap();
        let mut rng = StdRng::seed_from_u64(107);
        for _ in 0..8 {
            let a = BigUint::random_bits(200, &mut rng);
            let e = BigUint::random_bits(24, &mut rng);
            assert_eq!(ctx.mod_pow(&a, &e), a.mod_pow(&e, &n));
        }
    }
}
