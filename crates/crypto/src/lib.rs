//! # sdmmon-crypto — cryptographic substrate for the SDMMon reproduction
//!
//! The DAC 2014 SDMMon prototype runs commercial-grade OpenSSL on a Nios II
//! control processor: RSA-2048 key pairs for the three entities, a
//! manufacturer-signed certificate, AES encryption of the installation
//! package, and SHA-based signatures. No such library is available to this
//! reproduction, so this crate implements the required primitives from
//! scratch:
//!
//! * [`bignum::BigUint`] — arbitrary-precision unsigned arithmetic
//!   (Knuth Algorithm D division, modular exponentiation, modular inverse)
//! * [`montgomery`] — Montgomery-form (REDC) modular arithmetic with
//!   4-bit-window exponentiation; the hot path under every RSA operation
//! * [`prime`] — Miller–Rabin probabilistic primality and prime generation
//! * [`rsa`] — RSA key generation, PKCS#1 v1.5 encryption and signatures
//! * [`aes`] — AES-128/192/256 block cipher with CBC and CTR modes
//! * [`sha256`] — SHA-256, plus [`hmac`] for HMAC-SHA-256
//!
//! **This is a simulation substrate, not production cryptography**: the
//! implementations are functionally correct (validated against published
//! test vectors) but make no constant-time claims. The paper's attacker
//! model (AC3/AC4) explicitly excludes side channels, so this matches the
//! fidelity the reproduction needs.
//!
//! # Examples
//!
//! ```
//! use sdmmon_crypto::{rsa::RsaKeyPair, sha256::sha256};
//! use sdmmon_rng::SeedableRng;
//!
//! # fn main() -> Result<(), sdmmon_crypto::CryptoError> {
//! let mut rng = sdmmon_rng::StdRng::seed_from_u64(7);
//! let keys = RsaKeyPair::generate(512, &mut rng)?;
//! let sig = keys.private.sign(b"monitoring graph");
//! assert!(keys.public.verify(b"monitoring graph", &sig));
//! assert_eq!(sha256(b"").len(), 32);
//! # Ok(())
//! # }
//! ```

pub mod aes;
pub mod bignum;
pub mod hmac;
pub mod montgomery;
pub mod prime;
pub mod rsa;
pub mod sha256;

use std::fmt;

/// Errors produced by the cryptographic substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A ciphertext or padded block had invalid structure.
    InvalidPadding,
    /// An input was too large for the key/modulus in use.
    MessageTooLong,
    /// A key parameter was structurally invalid (e.g. modulus too small).
    InvalidKey(String),
    /// Decryption produced data that failed an integrity check.
    IntegrityFailure,
    /// Prime generation exhausted its attempt budget.
    PrimeGenerationFailed,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidPadding => write!(f, "invalid padding"),
            CryptoError::MessageTooLong => write!(f, "message too long for key"),
            CryptoError::InvalidKey(why) => write!(f, "invalid key: {why}"),
            CryptoError::IntegrityFailure => write!(f, "integrity check failed"),
            CryptoError::PrimeGenerationFailed => write!(f, "prime generation failed"),
        }
    }
}

impl std::error::Error for CryptoError {}
