//! Offline analysis: extracting a monitoring graph from a processing
//! binary.
//!
//! The graph contains, per instruction, a short hash of the instruction
//! word and the set of valid successor addresses derived from the static
//! control-flow structure (Figure 1 of the paper):
//!
//! * sequential instructions — one successor, the next address;
//! * conditional branches — two successors ("the monitor considers both
//!   next operations as valid" because it has no data path);
//! * direct jumps — the jump target;
//! * indirect jumps (`jr`/`jalr`) — the conservative set of *plausible*
//!   targets: every recorded call-return site plus every registered entry
//!   point, since the monitor cannot evaluate register contents.
//!
//! The serialized form of the graph is what SDMMon ships inside the
//! encrypted, signed installation package.

use crate::hash::InstructionHash;
use sdmmon_isa::asm::Program;
use sdmmon_isa::{ControlFlow, Inst};
use std::fmt;

/// Magic bytes identifying a serialized monitoring graph.
const MAGIC: [u8; 4] = *b"SDMG";

/// Error produced by graph extraction or deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The binary is empty.
    EmptyProgram,
    /// A serialized graph was malformed.
    Malformed(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EmptyProgram => write!(f, "cannot extract a graph from an empty program"),
            GraphError::Malformed(why) => write!(f, "malformed monitoring graph: {why}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// One graph node: the hash of the instruction at this address and its
/// valid successors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Short hash of the instruction word (fits the hash's output width).
    pub hash: u8,
    /// Valid successor addresses. Empty for data words and terminal
    /// instructions (`break`).
    pub successors: Vec<u32>,
}

/// The monitoring graph for one processing binary.
///
/// # Examples
///
/// ```
/// use sdmmon_isa::asm::Assembler;
/// use sdmmon_monitor::{graph::MonitoringGraph, hash::MerkleTreeHash};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = Assembler::new().assemble("nop\nbeq $t0, $zero, 4\nnop\nbreak 0")?;
/// let graph = MonitoringGraph::extract(&program, &MerkleTreeHash::new(7))?;
/// // The branch at address 4 has two successors: fall-through 8 and target 12.
/// assert_eq!(graph.node(4).unwrap().successors, vec![8, 12]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitoringGraph {
    base: u32,
    hash_bits: u8,
    nodes: Vec<Node>,
}

impl MonitoringGraph {
    /// Runs the offline analysis over `program` using `hash`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyProgram`] for an empty image.
    pub fn extract<H: InstructionHash + ?Sized>(
        program: &Program,
        hash: &H,
    ) -> Result<MonitoringGraph, GraphError> {
        if program.words.is_empty() {
            return Err(GraphError::EmptyProgram);
        }
        let base = program.base;
        let end = base + 4 * program.words.len() as u32;
        let in_range = |addr: u32| addr >= base && addr < end;

        // Pass 1: collect the conservative indirect-target set — the return
        // site of every call (`jal`/`jalr`/linking branch).
        let mut indirect_targets: Vec<u32> = Vec::new();
        for (i, &word) in program.words.iter().enumerate() {
            let pc = base + 4 * i as u32;
            if let Ok(inst) = Inst::decode(word) {
                let linking = match inst.control_flow() {
                    ControlFlow::Jump { linking, .. } => linking,
                    ControlFlow::Indirect { linking } => linking,
                    ControlFlow::Branch { linking, .. } => linking,
                    ControlFlow::Sequential => false,
                };
                if linking && in_range(pc + 4) {
                    indirect_targets.push(pc + 4);
                }
            }
        }
        indirect_targets.sort_unstable();
        indirect_targets.dedup();

        // Pass 2: build nodes.
        let nodes = program
            .words
            .iter()
            .enumerate()
            .map(|(i, &word)| {
                let pc = base + 4 * i as u32;
                let successors = match Inst::decode(word) {
                    Err(_) => Vec::new(), // data word: never validly executed
                    Ok(Inst::Break { .. }) | Ok(Inst::Syscall { .. }) => Vec::new(),
                    Ok(inst) => match inst.control_flow() {
                        ControlFlow::Sequential => {
                            vec![pc + 4].into_iter().filter(|&a| in_range(a)).collect()
                        }
                        ControlFlow::Branch { .. } | ControlFlow::Jump { .. } => {
                            let cf = inst.control_flow();
                            let mut s = Vec::new();
                            if cf.falls_through() && in_range(pc + 4) {
                                s.push(pc + 4);
                            }
                            if let Some(t) = cf.taken_target(pc) {
                                if in_range(t) && !s.contains(&t) {
                                    s.push(t);
                                }
                            }
                            s
                        }
                        ControlFlow::Indirect { .. } => indirect_targets.clone(),
                    },
                };
                Node {
                    hash: hash.hash(word),
                    successors,
                }
            })
            .collect();

        Ok(MonitoringGraph {
            base,
            hash_bits: hash.output_bits(),
            nodes,
        })
    }

    /// Load address of the covered binary.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Hash output width the graph was built with.
    pub fn hash_bits(&self) -> u8 {
        self.hash_bits
    }

    /// Number of instruction slots covered.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph covers no instructions (never produced by
    /// [`MonitoringGraph::extract`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node at address `addr`, if covered.
    pub fn node(&self, addr: u32) -> Option<&Node> {
        if addr < self.base || !(addr - self.base).is_multiple_of(4) {
            return None;
        }
        self.nodes.get(((addr - self.base) / 4) as usize)
    }

    /// Iterates over `(address, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(move |(i, n)| (self.base + 4 * i as u32, n))
    }

    /// Size of the graph in the compact hardware representation, in bits.
    ///
    /// The model matches the paper's claim that the graph is "a fraction of
    /// the processing binary" and is processed with a single memory access
    /// per instruction: per node, the hash plus a 2-bit control-flow tag,
    /// plus a 16-bit target word for taken-branch/jump targets, plus one
    /// 16-bit entry per indirect target in the shared indirect table.
    pub fn compact_size_bits(&self) -> usize {
        let mut bits = 0usize;
        let mut indirect_table = 0usize;
        for node in &self.nodes {
            bits += self.hash_bits as usize + 2;
            match node.successors.len() {
                0 | 1 => {}
                2 => bits += 16,
                n => indirect_table = indirect_table.max(n),
            }
        }
        bits + indirect_table * 16
    }

    /// Serializes the graph (part of the SDMMon package payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.base.to_be_bytes());
        out.push(self.hash_bits);
        out.extend_from_slice(&(self.nodes.len() as u32).to_be_bytes());
        for node in &self.nodes {
            out.push(node.hash);
            out.extend_from_slice(&(node.successors.len() as u16).to_be_bytes());
            for s in &node.successors {
                out.extend_from_slice(&s.to_be_bytes());
            }
        }
        out
    }

    /// Deserializes a graph produced by [`MonitoringGraph::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Malformed`] on bad magic, truncation, or
    /// trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<MonitoringGraph, GraphError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(GraphError::Malformed("bad magic".into()));
        }
        let base = u32::from_be_bytes(r.take(4)?.try_into().expect("4 bytes"));
        let hash_bits = r.take(1)?[0];
        if hash_bits == 0 || hash_bits > 8 {
            return Err(GraphError::Malformed(format!("hash width {hash_bits}")));
        }
        let count = u32::from_be_bytes(r.take(4)?.try_into().expect("4 bytes")) as usize;
        let mut nodes = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let hash = r.take(1)?[0];
            let n = u16::from_be_bytes(r.take(2)?.try_into().expect("2 bytes")) as usize;
            let mut successors = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                successors.push(u32::from_be_bytes(r.take(4)?.try_into().expect("4 bytes")));
            }
            nodes.push(Node { hash, successors });
        }
        if r.pos != bytes.len() {
            return Err(GraphError::Malformed("trailing bytes".into()));
        }
        Ok(MonitoringGraph {
            base,
            hash_bits,
            nodes,
        })
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], GraphError> {
        if self.pos + n > self.bytes.len() {
            return Err(GraphError::Malformed("truncated".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::{BitcountHash, MerkleTreeHash};
    use sdmmon_isa::asm::Assembler;
    use sdmmon_npu::programs;

    fn graph_of(src: &str) -> MonitoringGraph {
        let p = Assembler::new().assemble(src).unwrap();
        MonitoringGraph::extract(&p, &MerkleTreeHash::new(1234)).unwrap()
    }

    #[test]
    fn sequential_chain() {
        let g = graph_of("nop\nnop\nbreak 0");
        assert_eq!(g.node(0).unwrap().successors, vec![4]);
        assert_eq!(g.node(4).unwrap().successors, vec![8]);
        assert!(
            g.node(8).unwrap().successors.is_empty(),
            "break is terminal"
        );
    }

    #[test]
    fn branch_has_both_successors() {
        let g = graph_of("beq $t0, $t1, skip\nnop\nskip: break 0");
        assert_eq!(g.node(0).unwrap().successors, vec![4, 8]);
    }

    #[test]
    fn jump_has_single_target() {
        let g = graph_of("j end\nnop\nend: break 0");
        assert_eq!(g.node(0).unwrap().successors, vec![8]);
    }

    #[test]
    fn jr_gets_return_sites() {
        let g = graph_of(
            "   jal f
                nop          # return site: 4
                jal f
                break 0      # return site: 12
             f: jr $ra",
        );
        assert_eq!(g.node(16).unwrap().successors, vec![4, 12]);
    }

    #[test]
    fn data_words_have_no_successors() {
        let g = graph_of("break 0\n.word 0xffffffff");
        assert!(g.node(4).unwrap().successors.is_empty());
    }

    #[test]
    fn out_of_range_targets_excluded() {
        // Branch backwards past the start of the image.
        let g = graph_of("beq $zero, $zero, -8\nbreak 0");
        assert_eq!(g.node(0).unwrap().successors, vec![4]);
    }

    #[test]
    fn node_lookup_edges() {
        let g = graph_of("nop\nbreak 0");
        assert!(g.node(2).is_none(), "unaligned");
        assert!(g.node(8).is_none(), "past end");
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
    }

    #[test]
    fn hashes_follow_hash_function() {
        let p = Assembler::new()
            .assemble("addiu $t0, $zero, 5\nbreak 0")
            .unwrap();
        let h = MerkleTreeHash::new(77);
        let g = MonitoringGraph::extract(&p, &h).unwrap();
        assert_eq!(g.node(0).unwrap().hash, h.hash(p.words[0]));
        assert_eq!(g.hash_bits(), 4);
    }

    #[test]
    fn different_parameters_give_different_graphs() {
        let p = programs::ipv4_forward().unwrap();
        let a = MonitoringGraph::extract(&p, &MerkleTreeHash::new(1)).unwrap();
        let b = MonitoringGraph::extract(&p, &MerkleTreeHash::new(2)).unwrap();
        assert_ne!(a, b);
        // Successor structure is identical; only hashes differ.
        for (addr, node) in a.iter() {
            assert_eq!(node.successors, b.node(addr).unwrap().successors);
        }
    }

    #[test]
    fn serialization_round_trip() {
        let p = programs::ipv4_cm().unwrap();
        let g = MonitoringGraph::extract(&p, &MerkleTreeHash::new(0xfeed)).unwrap();
        let restored = MonitoringGraph::from_bytes(&g.to_bytes()).unwrap();
        assert_eq!(restored, g);
    }

    #[test]
    fn deserialization_rejects_garbage() {
        assert!(MonitoringGraph::from_bytes(b"").is_err());
        assert!(MonitoringGraph::from_bytes(b"WRONG___").is_err());
        let p = programs::ipv4_forward().unwrap();
        let g = MonitoringGraph::extract(&p, &BitcountHash::new()).unwrap();
        let mut bytes = g.to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(MonitoringGraph::from_bytes(&bytes).is_err());
        let mut bytes = g.to_bytes();
        bytes.push(0);
        assert!(MonitoringGraph::from_bytes(&bytes).is_err());
    }

    #[test]
    fn empty_program_rejected() {
        let p = Assembler::new().assemble("").unwrap();
        assert_eq!(
            MonitoringGraph::extract(&p, &MerkleTreeHash::new(0)),
            Err(GraphError::EmptyProgram)
        );
    }

    #[test]
    fn graph_is_fraction_of_binary_size() {
        // The paper's motivation for hashing: the graph must be much
        // smaller than the binary it monitors.
        let p = programs::ipv4_forward().unwrap();
        let g = MonitoringGraph::extract(&p, &MerkleTreeHash::new(9)).unwrap();
        let binary_bits = p.words.len() * 32;
        assert!(
            g.compact_size_bits() * 2 < binary_bits,
            "graph {} bits vs binary {} bits",
            g.compact_size_bits(),
            binary_bits
        );
    }
}
