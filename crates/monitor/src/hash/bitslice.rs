//! Bit-sliced (SWAR) evaluation of the Merkle-tree instruction hash:
//! sixteen independent 4-bit lanes packed into each `u64`, so one pass of
//! the compression tree hashes a whole retirement block.
//!
//! # Data layout
//!
//! [`transpose`] turns 16 instruction words into 8 *nibble planes*. Plane
//! `j` collects nibble `j` (bits `4j..4j+4`) of every word, with word `i`
//! occupying bits `4i..4i+4` of the plane:
//!
//! ```text
//!              lane 15        lane 1   lane 0
//!            ┌────┄┄┄┄────┬────────┬────────┐
//! plane 0    │ w15[3:0]   │ w1[3:0]│ w0[3:0]│   (low nibble of each word)
//! plane 1    │ w15[7:4]   │ w1[7:4]│ w0[7:4]│
//!   ⋮        │     ⋮      │    ⋮   │    ⋮   │
//! plane 7    │ w15[31:28] │w1[31:28]│w0[31:28]│ (high nibble of each word)
//!            └────┄┄┄┄────┴────────┴────────┘
//! ```
//!
//! Each of the 15 tree nodes then runs once on whole planes instead of 16
//! times on scalar nibbles. The per-node cost:
//!
//! * **SumMod16** — one SWAR add with carry masking ([`swar_add_mod16`]):
//!   the low three bits of each lane are added with the lane's top bit
//!   masked off (a 3-bit sum cannot carry across the lane boundary), and
//!   the top bits are folded back in as XOR — their mod-2 sum.
//! * **Xor** — a single 64-bit XOR.
//! * **SBox** — the SWAR add followed by the PRESENT S-box as a bitsliced
//!   boolean network ([`sbox_planes`]): split the lane nibbles into four
//!   bit sub-planes, evaluate the S-box's algebraic normal form with
//!   shared subterms (~20 gates), recombine.
//! * **SipRound** — the SWAR add, an in-lane shift-add (×5 mod 16), an
//!   in-lane rotate, and a constant XOR; rotates are mask-and-shift pairs
//!   in this layout.
//!
//! Correctness is pinned by exhaustive differential tests against the
//! scalar path (`proptests.rs` randomizes params, words, and compressions;
//! the S-box network is additionally checked against its table on all 16
//! inputs).

use super::{Compression, MerkleTreeHash, BLOCK_LANES};

/// Bit 0 of every 4-bit lane.
const LANE_LSB: u64 = 0x1111_1111_1111_1111;
/// Low three bits of every lane (the carry-safe part of a SWAR add).
const LANE_LOW3: u64 = 0x7777_7777_7777_7777;
/// Top bit of every lane.
const LANE_MSB: u64 = 0x8888_8888_8888_8888;
/// Bits 2..4 of every lane (what an in-lane `<< 2` may keep).
const LANE_HI2: u64 = 0xCCCC_CCCC_CCCC_CCCC;
/// Bits 1..4 of every lane (what an in-lane `<< 1` may keep).
const LANE_HI3: u64 = 0xEEEE_EEEE_EEEE_EEEE;
/// The SipRound round constant `0x6`, broadcast to every lane.
const LANE_SIP_RC: u64 = 0x6666_6666_6666_6666;

/// Transposes a block of instruction words into the eight nibble planes
/// described in the module docs.
///
/// Implemented as a recursive in-register bit-matrix transpose rather
/// than a nibble-at-a-time gather (which costs 16×8 shift/mask/or
/// round-trips and erases the SWAR win). Pairing word `k` with word
/// `k + 8` in one `u64` puts two independent 8×8 nibble matrices side by
/// side — rows are words, columns are nibble positions — and three rounds
/// of delta swaps (block sizes 4, 2, 1; twelve swaps total) transpose
/// both halves at once. Row `j` of the transposed matrix is then exactly
/// plane `j`: its low half holds nibble `j` of words 0..8 in lanes 0..8,
/// its high half nibble `j` of words 8..16 in lanes 8..16.
#[inline]
pub fn transpose(words: &[u32; BLOCK_LANES]) -> [u64; 8] {
    let mut r: [u64; 8] =
        std::array::from_fn(|k| u64::from(words[k]) | (u64::from(words[k + 8]) << 32));
    // Swap the top-right and bottom-left 4×4 blocks (columns are nibbles,
    // so a 4-column block is 16 bits of each 32-bit half).
    for i in 0..4 {
        let t = ((r[i] >> 16) ^ r[i + 4]) & 0x0000_FFFF_0000_FFFF;
        r[i + 4] ^= t;
        r[i] ^= t << 16;
    }
    // Same exchange inside each 4×4 block (2×2 sub-blocks, 8 bits)...
    for i in [0, 1, 4, 5] {
        let t = ((r[i] >> 8) ^ r[i + 2]) & 0x00FF_00FF_00FF_00FF;
        r[i + 2] ^= t;
        r[i] ^= t << 8;
    }
    // ...and inside each 2×2 block (single nibbles).
    for i in [0, 2, 4, 6] {
        let t = ((r[i] >> 4) ^ r[i + 1]) & 0x0F0F_0F0F_0F0F_0F0F;
        r[i + 1] ^= t;
        r[i] ^= t << 4;
    }
    r
}

/// Lane-parallel `(a + b) mod 16` over all 16 lanes.
///
/// The carry-mask trick: `a + b` within a lane can carry into the next
/// lane, so the top lane bit is masked off both operands before the add
/// (three-bit operands sum to at most 14 — no cross-lane carry), and the
/// top bits' mod-2 sum (their XOR) is folded back in afterwards. The
/// discarded carry *out* of the top bit is exactly the mod-16 reduction.
#[inline]
pub fn swar_add_mod16(a: u64, b: u64) -> u64 {
    ((a & LANE_LOW3) + (b & LANE_LOW3)) ^ ((a ^ b) & LANE_MSB)
}

/// The PRESENT S-box applied to every lane of `x`, as a bitsliced boolean
/// network over the four bit sub-planes.
///
/// The network is a shared-subterm factoring of the S-box's algebraic
/// normal form (derived by Möbius transform, verified exhaustively in the
/// tests); complements are realized as XOR with [`LANE_LSB`] so bits
/// outside the sub-plane positions stay zero.
#[inline]
pub fn sbox_planes(x: u64) -> u64 {
    let x0 = x & LANE_LSB;
    let x1 = (x >> 1) & LANE_LSB;
    let x2 = (x >> 2) & LANE_LSB;
    let x3 = (x >> 3) & LANE_LSB;
    let s = x1 ^ x2;
    let t = x1 & x2;
    let u = x3 & s;
    let maj = t ^ u; // majority(x1, x2, x3)
    let y0 = x0 ^ x2 ^ x3 ^ t;
    let y1 = x1 ^ x3 ^ u ^ (x0 & maj);
    let y2 = LANE_LSB ^ x2 ^ x3 ^ (x0 & x1) ^ (x3 & ((x0 | x1) ^ (x0 & x2)));
    let y3 = LANE_LSB ^ x0 ^ x1 ^ x3 ^ (t & (x0 ^ LANE_LSB)) ^ ((x0 & x3) & s);
    y0 | (y1 << 1) | (y2 << 2) | (y3 << 3)
}

/// Lane-parallel [`Compression::SipRound`]: SWAR add, in-lane shift-add
/// (×5 mod 16), in-lane rotate-left 1, constant XOR.
#[inline]
pub fn sip_planes(a: u64, b: u64) -> u64 {
    let s = swar_add_mod16(a, b);
    let m = swar_add_mod16(s, (s << 2) & LANE_HI2); // 5·s mod 16 per lane
    (((m << 1) & LANE_HI3) | ((m >> 3) & LANE_LSB)) ^ LANE_SIP_RC
}

/// One compression node evaluated over whole planes — the lane-parallel
/// counterpart of [`Compression::compress`].
#[inline]
pub fn compress_planes(c: Compression, a: u64, b: u64) -> u64 {
    match c {
        Compression::SumMod16 => swar_add_mod16(a, b),
        Compression::Xor => a ^ b,
        Compression::SBox => sbox_planes(swar_add_mod16(a, b)),
        Compression::SipRound => sip_planes(a, b),
    }
}

/// Unpacks a lane-packed plane into per-lane nibbles: each 32-bit half
/// (eight lanes) is spread into eight bytes with a Morton-style
/// shift-or-mask cascade, then the two halves are stored as the low and
/// high eight output bytes — two wide stores instead of sixteen nibble
/// picks.
#[inline]
fn extract(plane: u64) -> [u8; BLOCK_LANES] {
    #[inline]
    fn spread(half: u64) -> u64 {
        let x = (half | (half << 16)) & 0x0000_FFFF_0000_FFFF;
        let x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
        (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F
    }
    let lo = spread(plane & 0xFFFF_FFFF).to_le_bytes();
    let hi = spread(plane >> 32).to_le_bytes();
    let mut out = [0u8; BLOCK_LANES];
    out[..8].copy_from_slice(&lo);
    out[8..].copy_from_slice(&hi);
    out
}

/// The bit-sliced evaluator for one [`MerkleTreeHash`] instance: the
/// secret parameter's nibbles pre-broadcast across all lanes, ready to
/// hash [`BLOCK_LANES`] instruction words per pass.
///
/// Produces bit-identical results to the scalar tree — `hash_block(w)[i]
/// == scalar.hash(w[i])` for every lane, every parameter, and every
/// compression (the monitor's block path relies on this, and the
/// differential proptests enforce it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitslicedMerkleHash {
    /// `param` nibble `j` broadcast to all 16 lanes of plane `j`.
    param_planes: [u64; 8],
    /// The parameter's whole-tree contribution, pre-folded, for the
    /// compressions whose tree collapses: `Σ pⱼ mod 16` (SumMod16) or
    /// `⊕ pⱼ` (Xor), broadcast to all lanes. Zero for the nonlinear
    /// compressions, which evaluate the tree node by node.
    param_fold: u64,
    compression: Compression,
}

impl BitslicedMerkleHash {
    /// Builds the evaluator for `param` under `compression`.
    pub fn new(param: u32, compression: Compression) -> BitslicedMerkleHash {
        let nib = |j: u32| (param >> (4 * j)) & 0xf;
        let param_fold = match compression {
            Compression::SumMod16 => u64::from((0..8).map(nib).sum::<u32>() & 0xf) * LANE_LSB,
            Compression::Xor => u64::from((0..8).fold(0, |acc, j| acc ^ nib(j))) * LANE_LSB,
            Compression::SBox | Compression::SipRound => 0,
        };
        BitslicedMerkleHash {
            param_planes: std::array::from_fn(|j| u64::from(nib(j as u32)) * LANE_LSB),
            param_fold,
            compression,
        }
    }

    /// Builds the evaluator matching a scalar hash instance.
    pub fn from_scalar(hash: &MerkleTreeHash) -> BitslicedMerkleHash {
        BitslicedMerkleHash::new(hash.param(), hash.compression())
    }

    /// Evaluates the tree down to the two level-2 planes (the 8-bit state
    /// the width-ablation wrappers consume).
    #[inline]
    fn level2_planes(&self, words: &[u32; BLOCK_LANES]) -> (u64, u64) {
        let c = self.compression;
        let word_planes = transpose(words);
        let mut leaves = [0u64; 8];
        for (j, leaf) in leaves.iter_mut().enumerate() {
            *leaf = compress_planes(c, self.param_planes[j], word_planes[j]);
        }
        let l1 = [
            compress_planes(c, leaves[0], leaves[1]),
            compress_planes(c, leaves[2], leaves[3]),
            compress_planes(c, leaves[4], leaves[5]),
            compress_planes(c, leaves[6], leaves[7]),
        ];
        (
            compress_planes(c, l1[0], l1[1]),
            compress_planes(c, l1[2], l1[3]),
        )
    }

    /// Hashes all [`BLOCK_LANES`] words in one tree pass.
    ///
    /// For [`Compression::SumMod16`] and [`Compression::Xor`] the tree is
    /// not evaluated node by node: both operations are associative and
    /// commutative (addition in ℤ/16, XOR in GF(2)⁴), so the 15-node tree
    /// over `{p₀..p₇, w₀..w₇}` equals one fold of the eight word planes
    /// plus the pre-folded parameter plane — bit-identical by reassociation
    /// (the differential tests pin it), at roughly half the plane ops. The
    /// nonlinear compressions (S-box, SipRound) take the full tree.
    pub fn hash_block(&self, words: &[u32; BLOCK_LANES]) -> [u8; BLOCK_LANES] {
        let plane = match self.compression {
            Compression::SumMod16 => {
                let w = transpose(words);
                let s01 = swar_add_mod16(w[0], w[1]);
                let s23 = swar_add_mod16(w[2], w[3]);
                let s45 = swar_add_mod16(w[4], w[5]);
                let s67 = swar_add_mod16(w[6], w[7]);
                let lo = swar_add_mod16(s01, s23);
                let hi = swar_add_mod16(s45, s67);
                swar_add_mod16(swar_add_mod16(lo, hi), self.param_fold)
            }
            Compression::Xor => {
                let w = transpose(words);
                w[0] ^ w[1] ^ w[2] ^ w[3] ^ w[4] ^ w[5] ^ w[6] ^ w[7] ^ self.param_fold
            }
            Compression::SBox | Compression::SipRound => {
                let (a, b) = self.level2_planes(words);
                compress_planes(self.compression, a, b)
            }
        };
        extract(plane)
    }

    /// The two level-2 outputs per lane, for the 8-bit width ablation.
    pub fn level2_block(
        &self,
        words: &[u32; BLOCK_LANES],
    ) -> ([u8; BLOCK_LANES], [u8; BLOCK_LANES]) {
        let (a, b) = self.level2_planes(words);
        (extract(a), extract(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::InstructionHash;

    #[test]
    fn sbox_network_matches_table_on_all_inputs() {
        for v in 0u64..16 {
            // Every lane loaded with the same nibble; every lane must come
            // back as the table entry.
            let plane = v * LANE_LSB;
            let out = sbox_planes(plane);
            let expect = Compression::SBox.compress(0, v as u8);
            // compress(SBox, 0, v) == SBOX4[v].
            for lane in extract(out) {
                assert_eq!(lane, expect, "S-box network wrong at input {v}");
            }
        }
    }

    #[test]
    fn sbox_network_is_lane_independent() {
        // Distinct values in every lane at once.
        let words: [u32; BLOCK_LANES] = std::array::from_fn(|i| i as u32);
        let plane = transpose(&words)[0];
        let out = extract(sbox_planes(plane));
        for (i, &lane) in out.iter().enumerate() {
            assert_eq!(lane, Compression::SBox.compress(0, i as u8));
        }
    }

    #[test]
    fn swar_add_matches_scalar_exhaustively() {
        for a in 0u64..16 {
            for b in 0u64..16 {
                let sum = swar_add_mod16(a * LANE_LSB, b * LANE_LSB);
                for lane in extract(sum) {
                    assert_eq!(lane, ((a + b) & 0xf) as u8);
                }
            }
        }
    }

    #[test]
    fn sip_planes_match_scalar_exhaustively() {
        for a in 0u8..16 {
            for b in 0u8..16 {
                let out = sip_planes(u64::from(a) * LANE_LSB, u64::from(b) * LANE_LSB);
                for lane in extract(out) {
                    assert_eq!(lane, Compression::SipRound.compress(a, b));
                }
            }
        }
    }

    #[test]
    fn transpose_layout() {
        let mut words = [0u32; BLOCK_LANES];
        words[3] = 0x8765_4321;
        let planes = transpose(&words);
        for (j, &plane) in planes.iter().enumerate() {
            // Only lane 3 is populated; its nibble j is digit j of the word.
            assert_eq!(plane, ((j as u64) + 1) << 12, "plane {j}");
        }
    }

    #[test]
    fn block_matches_scalar_for_every_compression() {
        let words: [u32; BLOCK_LANES] =
            std::array::from_fn(|i| (i as u32).wrapping_mul(0x9E37_79B9) ^ 0x1234_5678);
        for c in Compression::ALL {
            let scalar = MerkleTreeHash::with_compression(0xCAFE_F00D, c);
            let sliced = BitslicedMerkleHash::from_scalar(&scalar);
            let block = sliced.hash_block(&words);
            for (i, &w) in words.iter().enumerate() {
                assert_eq!(block[i], scalar.hash(w), "lane {i} under {c:?}");
            }
        }
    }
}
