//! Instruction-word hash functions for the hardware monitor.
//!
//! The monitor compares a short hash of every executed instruction against
//! the monitoring graph, so the hash must be computable within one
//! processor clock cycle. The paper contributes a **parameterizable
//! Merkle-tree hash** (Figure 4): a binary tree of 8-to-4-bit compression
//! nodes whose leaves mix 4 bits of a secret 32-bit parameter with 4 bits
//! of the instruction word. The parameter is chosen per router, defeating
//! cross-device attack reuse (SR2). A conventional **bitcount hash** is
//! implemented as the comparison baseline of Table 3.

use std::fmt;

pub mod bitslice;

/// Lanes processed by one [`InstructionHash::hash_block`] call — the width
/// of the bit-sliced data path (16 × 4-bit lanes fill one `u64` plane).
pub const BLOCK_LANES: usize = 16;

/// Full [`BLOCK_LANES`]-wide hash blocks the monitor verifies for a packet
/// that retired `steps` instructions (the trailing partial block goes
/// through the scalar path). The trace layer's `span.verify` events and
/// the trace-driven profiler attribute block budgets with this mapping.
pub fn full_blocks(steps: u64) -> u64 {
    steps / BLOCK_LANES as u64
}

/// Maps a 32-bit instruction word to a short hash value.
///
/// Implementations must be pure functions of `(parameter, word)` — the
/// monitoring graph is built offline with the same function the monitor
/// evaluates at runtime.
pub trait InstructionHash {
    /// Hash output width in bits (4 in the paper's deployment).
    fn output_bits(&self) -> u8;

    /// Hashes one instruction word; the result fits in
    /// [`InstructionHash::output_bits`] bits.
    fn hash(&self, word: u32) -> u8;

    /// Hashes a full block of [`BLOCK_LANES`] instruction words.
    ///
    /// Must produce exactly `[hash(words[0]), …, hash(words[15])]`. The
    /// default is the scalar loop; [`MerkleTreeHash`] and [`WidthHash`]
    /// override it with the [`bitslice`] SWAR evaluation, which is what
    /// the monitor's block-verification path consumes.
    fn hash_block(&self, words: &[u32; BLOCK_LANES]) -> [u8; BLOCK_LANES] {
        let mut out = [0u8; BLOCK_LANES];
        for (o, &w) in out.iter_mut().zip(words) {
            *o = self.hash(w);
        }
        out
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Compression function used at each Merkle-tree node (8 bits in, 4 out).
///
/// The paper's prototype uses the 4-bit arithmetic sum
/// ([`Compression::SumMod16`]). **Reproduction finding** (see
/// EXPERIMENTS.md): with the sum, the whole tree collapses to
/// `(nibble_sum(word) + nibble_sum(param)) mod 16`, so whether two words
/// *collide* does not depend on the parameter at all — a mimicry attack
/// built against one router's monitor then evades every router, defeating
/// the diversity goal (SR2). The same holds for [`Compression::Xor`]
/// (linear). The nonlinear [`Compression::SBox`] restores
/// parameter-dependent collisions and is what the SDMMon protocol layer of
/// this reproduction uses by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Compression {
    /// `(a + b) mod 16` — the paper's choice ("4-bit arithmetic sum of
    /// both 4-bit inputs").
    #[default]
    SumMod16,
    /// `a XOR b` — cheaper but weaker diffusion (linear).
    Xor,
    /// A fixed 4-bit S-box applied to `(a + b) mod 16` — stronger
    /// nonlinearity at slightly higher LUT cost.
    SBox,
    /// A keyed SipHash-style ARX round on `(a + b) mod 16`: shift-add
    /// multiply by 5 (mod 16), rotate-left 1, xor a round constant. Like
    /// SipHash, the only operations are add/rotate/xor — no lookup table —
    /// so the node costs three adders in hardware and bit-slices without a
    /// boolean network. The router's secret parameter is the key, mixed in
    /// at every tree leaf exactly as for the other compressions; the mod-16
    /// carries make the permutation nonlinear over GF(2), so collisions
    /// stay parameter-dependent (the SR2 diversity property the linear
    /// compressions lack).
    SipRound,
}

/// 4-bit S-box used by [`Compression::SBox`] (the PRESENT cipher S-box).
const SBOX4: [u8; 16] = [12, 5, 6, 11, 9, 0, 10, 13, 3, 14, 15, 8, 4, 7, 1, 2];

/// Scalar ARX round of [`Compression::SipRound`]: add (`⊞` mod 16),
/// shift-add multiply by 5, rotate-left 1, xor the round constant. The
/// result is a fixed bijection of `(a + b) mod 16`, so the compression is
/// bijective in each argument (uniform outputs over uniform inputs, which
/// the 16^-k escape model depends on).
#[inline]
fn sip_round(a: u8, b: u8) -> u8 {
    let s = (a + b) & 0xf;
    let m = (s + ((s << 2) & 0xf)) & 0xf; // 5·s mod 16, as shift-add
    (((m << 1) | (m >> 3)) & 0xf) ^ 0x6
}

impl Compression {
    /// All compression functions, for sweeps and campaign harnesses.
    pub const ALL: [Compression; 4] = [
        Compression::SumMod16,
        Compression::Xor,
        Compression::SBox,
        Compression::SipRound,
    ];

    /// Applies the 8→4-bit compression to two nibbles.
    ///
    /// Both inputs are masked to their low nibble up front: the scalar and
    /// bit-sliced paths must agree on malformed (out-of-range) input, and
    /// the unmasked `a + b` would overflow the `u8` in debug builds for
    /// large bytes while silently wrapping in release.
    #[inline]
    pub fn compress(self, a: u8, b: u8) -> u8 {
        let (a, b) = (a & 0xf, b & 0xf);
        match self {
            Compression::SumMod16 => (a + b) & 0xf,
            Compression::Xor => a ^ b,
            Compression::SBox => SBOX4[((a + b) & 0xf) as usize],
            Compression::SipRound => sip_round(a, b),
        }
    }

    /// Stable wire identifier (carried inside SDMMon packages so the device
    /// builds the same hash the operator extracted the graph with).
    pub fn to_id(self) -> u8 {
        match self {
            Compression::SumMod16 => 0,
            Compression::Xor => 1,
            Compression::SBox => 2,
            Compression::SipRound => 3,
        }
    }

    /// Inverse of [`Compression::to_id`].
    pub fn from_id(id: u8) -> Option<Compression> {
        match id {
            0 => Some(Compression::SumMod16),
            1 => Some(Compression::Xor),
            2 => Some(Compression::SBox),
            3 => Some(Compression::SipRound),
            _ => None,
        }
    }
}

/// The paper's parameterizable Merkle-tree hash (Figure 4).
///
/// Structure, bit-exact to the figure: the 32-bit instruction word and the
/// 32-bit secret parameter are split into eight nibbles each. Leaf node *i*
/// compresses `(param_nibble[i], word_nibble[i])`; the eight leaf outputs
/// are then reduced pairwise through two further levels of the same
/// compression function, producing the final 4-bit hash after
/// ⌈log₂⌉-depth = 4 dependent operations — cheap enough for one evaluation
/// per clock.
///
/// # Examples
///
/// ```
/// use sdmmon_monitor::hash::{InstructionHash, MerkleTreeHash};
///
/// let h1 = MerkleTreeHash::new(0x1111_1111);
/// let h2 = MerkleTreeHash::new(0x2222_2222);
/// let word = 0x2408_0005; // addiu $t0, $zero, 5
/// assert!(h1.hash(word) < 16);
/// // Different router parameters give (generally) different hashes.
/// assert_ne!(
///     (0..200u32).map(|w| h1.hash(w)).collect::<Vec<_>>(),
///     (0..200u32).map(|w| h2.hash(w)).collect::<Vec<_>>(),
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MerkleTreeHash {
    param: u32,
    compression: Compression,
    /// `param` split into its eight nibbles once at construction — the
    /// leaf-level key inputs, re-extracted per `level2` call before.
    param_nibbles: [u8; 8],
    /// The matching 16-lane SWAR evaluator (parameter planes
    /// pre-broadcast), built once so `hash_block` pays no per-block setup.
    bitsliced: bitslice::BitslicedMerkleHash,
}

/// Splits a 32-bit value into its eight nibbles, low nibble first.
#[inline]
fn nibbles(value: u32) -> [u8; 8] {
    std::array::from_fn(|i| ((value >> (i * 4)) & 0xf) as u8)
}

impl MerkleTreeHash {
    /// Creates the hash with a secret 32-bit `param` and the paper's
    /// sum-mod-16 compression.
    pub fn new(param: u32) -> MerkleTreeHash {
        MerkleTreeHash::with_compression(param, Compression::SumMod16)
    }

    /// Creates the hash with an explicit compression function (ablation).
    pub fn with_compression(param: u32, compression: Compression) -> MerkleTreeHash {
        MerkleTreeHash {
            param,
            compression,
            param_nibbles: nibbles(param),
            bitsliced: bitslice::BitslicedMerkleHash::new(param, compression),
        }
    }

    /// The secret parameter (transported encrypted inside SDMMon packages).
    pub fn param(&self) -> u32 {
        self.param
    }

    /// The compression function in use.
    pub fn compression(&self) -> Compression {
        self.compression
    }

    /// Evaluates the tree, returning the two level-2 outputs (8 bits of
    /// state) — used by the width-ablation wrappers.
    #[inline]
    fn level2(&self, word: u32) -> (u8, u8) {
        let c = self.compression;
        let mut leaves = [0u8; 8];
        for (i, leaf) in leaves.iter_mut().enumerate() {
            let w = ((word >> (i * 4)) & 0xf) as u8;
            *leaf = c.compress(self.param_nibbles[i], w);
        }
        let l1 = [
            c.compress(leaves[0], leaves[1]),
            c.compress(leaves[2], leaves[3]),
            c.compress(leaves[4], leaves[5]),
            c.compress(leaves[6], leaves[7]),
        ];
        (c.compress(l1[0], l1[1]), c.compress(l1[2], l1[3]))
    }
}

impl InstructionHash for MerkleTreeHash {
    fn output_bits(&self) -> u8 {
        4
    }

    #[inline]
    fn hash(&self, word: u32) -> u8 {
        let (a, b) = self.level2(word);
        self.compression.compress(a, b)
    }

    #[inline]
    fn hash_block(&self, words: &[u32; BLOCK_LANES]) -> [u8; BLOCK_LANES] {
        self.bitsliced.hash_block(words)
    }

    fn name(&self) -> &'static str {
        "merkle-tree"
    }
}

/// Width-ablated Merkle-tree hash producing 2, 4, or 8 output bits.
///
/// * 8 bits: the two level-2 node outputs concatenated (tree truncated one
///   level early).
/// * 4 bits: identical to [`MerkleTreeHash`].
/// * 2 bits: the final node folded once more (`high ⊕ low` 2-bit halves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WidthHash {
    inner: MerkleTreeHash,
    bits: u8,
}

impl WidthHash {
    /// Creates a width-ablated hash.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` is 2, 4, or 8.
    pub fn new(param: u32, bits: u8) -> WidthHash {
        assert!(matches!(bits, 2 | 4 | 8), "supported widths: 2, 4, 8");
        WidthHash {
            inner: MerkleTreeHash::new(param),
            bits,
        }
    }
}

impl InstructionHash for WidthHash {
    fn output_bits(&self) -> u8 {
        self.bits
    }

    fn hash(&self, word: u32) -> u8 {
        match self.bits {
            8 => {
                let (a, b) = self.inner.level2(word);
                (a << 4) | b
            }
            4 => self.inner.hash(word),
            _ => {
                let h = self.inner.hash(word);
                (h >> 2) ^ (h & 0x3)
            }
        }
    }

    fn hash_block(&self, words: &[u32; BLOCK_LANES]) -> [u8; BLOCK_LANES] {
        let sliced = bitslice::BitslicedMerkleHash::from_scalar(&self.inner);
        match self.bits {
            8 => {
                let (a, b) = sliced.level2_block(words);
                std::array::from_fn(|i| (a[i] << 4) | b[i])
            }
            4 => sliced.hash_block(words),
            _ => {
                let h = sliced.hash_block(words);
                std::array::from_fn(|i| (h[i] >> 2) ^ (h[i] & 0x3))
            }
        }
    }

    fn name(&self) -> &'static str {
        "merkle-tree-width"
    }
}

/// The conventional baseline of Table 3: the 4-bit folded population count
/// of the instruction word. Parameter-free, hence identical on every router
/// — the homogeneity weakness SDMMon is designed to remove.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct BitcountHash;

impl BitcountHash {
    /// Creates the bitcount hash.
    pub fn new() -> BitcountHash {
        BitcountHash
    }
}

impl InstructionHash for BitcountHash {
    fn output_bits(&self) -> u8 {
        4
    }

    fn hash(&self, word: u32) -> u8 {
        // A 32-bit word has 0..=32 set bits; fold the 6-bit count to 4.
        let count = word.count_ones();
        ((count & 0xf) ^ (count >> 4)) as u8
    }

    fn name(&self) -> &'static str {
        "bitcount"
    }
}

impl fmt::Display for MerkleTreeHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "merkle-tree(param=0x{:08x}, {:?})",
            self.param, self.compression
        )
    }
}

/// Hamming distance between two 4-bit (or 8-bit) hash values.
pub fn hamming(a: u8, b: u8) -> u32 {
    (a ^ b).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_blocks_counts_complete_lanes_only() {
        assert_eq!(full_blocks(0), 0);
        assert_eq!(full_blocks(15), 0);
        assert_eq!(full_blocks(16), 1);
        assert_eq!(full_blocks(57), 3);
        assert_eq!(full_blocks(16 * 7), 7);
    }

    #[test]
    fn outputs_fit_width() {
        let m = MerkleTreeHash::new(0xdead_beef);
        let b = BitcountHash::new();
        for word in (0..10_000u32).map(|i| i.wrapping_mul(2_654_435_761)) {
            assert!(m.hash(word) < 16);
            assert!(b.hash(word) < 16);
        }
        for bits in [2u8, 4, 8] {
            let w = WidthHash::new(1, bits);
            for word in 0..1000u32 {
                assert!((w.hash(word) as u16) < (1 << bits));
            }
        }
    }

    #[test]
    fn deterministic() {
        let m = MerkleTreeHash::new(42);
        assert_eq!(m.hash(0x1234_5678), m.hash(0x1234_5678));
    }

    #[test]
    fn paper_example_structure() {
        // With the sum compression and param 0, the hash is simply the sum
        // of the word's eight nibbles mod 16 — verifiable by hand.
        let m = MerkleTreeHash::new(0);
        assert_eq!(m.hash(0x1111_1111), 8);
        assert_eq!(m.hash(0x0000_0000), 0);
        assert_eq!(m.hash(0xffff_ffff), (15 * 8) % 16);
        assert_eq!(m.hash(0x0000_0007), 7);
    }

    #[test]
    fn parameter_changes_mapping() {
        // For the sum compression, param p shifts the hash by the nibble
        // sum of p; any nonzero nibble-sum param changes every hash.
        let base = MerkleTreeHash::new(0);
        let other = MerkleTreeHash::new(0x0000_0001);
        for word in 0..256u32 {
            assert_eq!(other.hash(word), (base.hash(word) + 1) & 0xf);
        }
    }

    #[test]
    fn hash_distribution_is_roughly_uniform() {
        let m = MerkleTreeHash::new(0x8badf00d);
        let mut counts = [0u32; 16];
        let samples = 160_000u32;
        for i in 0..samples {
            counts[m.hash(i.wrapping_mul(0x9E37_79B9)) as usize] += 1;
        }
        let expect = samples / 16;
        for (v, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < (expect / 10) as u64,
                "bucket {v} count {c} far from {expect}"
            );
        }
    }

    #[test]
    fn sbox_compression_differs_from_sum() {
        let sum = MerkleTreeHash::new(7);
        let sbox = MerkleTreeHash::with_compression(7, Compression::SBox);
        let differs = (0..64u32).any(|w| sum.hash(w) != sbox.hash(w));
        assert!(differs);
    }

    #[test]
    fn xor_compression_is_linear() {
        // XOR compression makes the whole hash linear in (word, param):
        // H(a ^ b) == H(a) ^ H(b) ^ H(0). This is the weakness the ablation
        // demonstrates.
        let m = MerkleTreeHash::with_compression(0x5a5a_5a5a, Compression::Xor);
        for (a, b) in [
            (0x1234_5678u32, 0x9abc_def0u32),
            (3, 4),
            (0xffff_0000, 0x0000_ffff),
        ] {
            assert_eq!(m.hash(a ^ b), m.hash(a) ^ m.hash(b) ^ m.hash(0));
        }
    }

    #[test]
    fn bitcount_matches_popcount_fold() {
        assert_eq!(BitcountHash::new().hash(0), 0);
        assert_eq!(BitcountHash::new().hash(0b111), 3);
        assert_eq!(BitcountHash::new().hash(u32::MAX), 2); // 32 = 0b100000 → 0 ^ 2
    }

    #[test]
    fn width_variants_are_consistent() {
        let four = WidthHash::new(99, 4);
        let reference = MerkleTreeHash::new(99);
        for w in 0..512u32 {
            assert_eq!(four.hash(w), reference.hash(w));
        }
    }

    #[test]
    #[should_panic(expected = "supported widths")]
    fn unsupported_width_panics() {
        WidthHash::new(0, 5);
    }

    #[test]
    fn sum_compression_collisions_are_parameter_invariant() {
        // The reproduction finding: under the paper's sum compression, two
        // words collide under one parameter iff they collide under every
        // parameter. The S-box compression does not have this property.
        let (a, b) = (0x2408_0005u32, 0x0000_0003u32); // nibble sums 19 and 3, equal mod 16
        assert_eq!(
            MerkleTreeHash::new(0).hash(a),
            MerkleTreeHash::new(0).hash(b),
            "chosen pair collides at param 0"
        );
        for param in [1u32, 0xdead_beef, 0x8000_0001, 42] {
            let h = MerkleTreeHash::new(param);
            assert_eq!(
                h.hash(a),
                h.hash(b),
                "collision persists at param {param:#x}"
            );
        }
        let breaks = [1u32, 0xdead_beef, 0x8000_0001, 42].iter().any(|&p| {
            let h = MerkleTreeHash::with_compression(p, Compression::SBox);
            h.hash(a) != h.hash(b)
        });
        assert!(
            breaks,
            "S-box compression must make collisions parameter-dependent"
        );
    }

    #[test]
    fn compression_id_round_trip() {
        for c in Compression::ALL {
            assert_eq!(Compression::from_id(c.to_id()), Some(c));
        }
        assert_eq!(Compression::from_id(9), None);
    }

    #[test]
    fn compress_masks_out_of_range_inputs() {
        // Regression: out-of-range nibbles used to overflow the `u8` add in
        // debug builds (SumMod16/SBox) and silently wrap in release. Both
        // inputs are masked now, so any byte behaves as its low nibble —
        // keeping the scalar and bit-sliced paths in agreement on
        // malformed input.
        for c in Compression::ALL {
            for (a, b) in [(0xffu8, 0xffu8), (0x10, 0x02), (0xa5, 0x5a), (16, 16)] {
                assert_eq!(
                    c.compress(a, b),
                    c.compress(a & 0xf, b & 0xf),
                    "{c:?} compress({a:#x}, {b:#x})"
                );
                assert!(c.compress(a, b) < 16);
            }
        }
    }

    #[test]
    fn sip_round_is_bijective_per_argument() {
        // Bijectivity in each argument keeps hash outputs uniform over
        // uniform words — the property the 16^-k escape model needs.
        for fixed in 0u8..16 {
            let mut by_a: Vec<u8> = (0..16)
                .map(|a| Compression::SipRound.compress(a, fixed))
                .collect();
            let mut by_b: Vec<u8> = (0..16)
                .map(|b| Compression::SipRound.compress(fixed, b))
                .collect();
            by_a.sort_unstable();
            by_b.sort_unstable();
            let all: Vec<u8> = (0..16).collect();
            assert_eq!(by_a, all);
            assert_eq!(by_b, all);
        }
    }

    #[test]
    fn sip_collisions_are_parameter_dependent() {
        // Like the S-box, the ARX round's GF(2) nonlinearity must break the
        // sum compression's parameter-invariant collisions (SR2).
        let (a, b) = (0x2408_0005u32, 0x0000_0003u32); // collide under sum at every param
        let breaks = [1u32, 0xdead_beef, 0x8000_0001, 42].iter().any(|&p| {
            let h = MerkleTreeHash::with_compression(p, Compression::SipRound);
            h.hash(a) != h.hash(b)
        });
        assert!(breaks, "SipRound must make collisions parameter-dependent");
    }

    #[test]
    fn sip_hash_distribution_is_roughly_uniform() {
        let m = MerkleTreeHash::with_compression(0x8badf00d, Compression::SipRound);
        let mut counts = [0u32; 16];
        let samples = 160_000u32;
        for i in 0..samples {
            counts[m.hash(i.wrapping_mul(0x9E37_79B9)) as usize] += 1;
        }
        let expect = samples / 16;
        for (v, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < (expect / 10) as u64,
                "bucket {v} count {c} far from {expect}"
            );
        }
    }

    #[test]
    fn default_hash_block_matches_scalar_loop() {
        // The trait default must be the scalar loop; BitcountHash does not
        // override it.
        let h = BitcountHash::new();
        let words: [u32; BLOCK_LANES] = std::array::from_fn(|i| (i as u32) * 0x0101_0101);
        let block = h.hash_block(&words);
        for (i, &w) in words.iter().enumerate() {
            assert_eq!(block[i], h.hash(w));
        }
    }

    #[test]
    fn hamming_helper() {
        assert_eq!(hamming(0b0000, 0b1111), 4);
        assert_eq!(hamming(5, 5), 0);
        assert_eq!(hamming(0b1000, 0b0000), 1);
    }
}
