//! Basic-block-granularity monitoring — the alternative design point of
//! the paper's related work (Arora et al. DATE'05, Ragel & Parameswaran
//! DAC'06 check per *block*, Mao & Wolf — and SDMMon — per *instruction*).
//!
//! Instead of one comparison per instruction, the block monitor folds the
//! per-instruction hashes into a running 4-bit digest and checks it once
//! per **transfer-delimited region**: the deterministic straight-line run
//! from a control-transfer target to the next control transfer. The
//! hardware analogue taps the core's branch-retirement signal, so the
//! runtime here decodes only the control-flow *class* of each word —
//! never its semantics.
//!
//! The trade-off this module makes measurable (see the
//! `ablation_granularity` bench): block checking needs one graph memory
//! access per block instead of per instruction, but detection waits for
//! the block boundary and an attacker only needs to collide one digest
//! per block instead of one hash per instruction.

use crate::graph::GraphError;
use crate::hash::{Compression, InstructionHash};
use sdmmon_isa::asm::Program;
use sdmmon_isa::{ControlFlow, Inst};
use sdmmon_npu::cpu::{ExecutionObserver, Observation};
use std::collections::BTreeMap;

/// One transfer-delimited region of the binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Number of instructions in the region (entry to ender, inclusive).
    pub len: u32,
    /// Folded 4-bit digest of the region's instruction hashes.
    pub digest: u8,
    /// Entry addresses of the possible next regions (empty for terminal
    /// regions ending in `break`/`syscall` or leaving the image).
    pub successors: Vec<u32>,
}

/// The block-granularity monitoring graph.
///
/// # Examples
///
/// ```
/// use sdmmon_isa::asm::Assembler;
/// use sdmmon_monitor::block::BlockGraph;
/// use sdmmon_monitor::hash::MerkleTreeHash;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = Assembler::new().assemble("nop\nbeq $t0, $zero, 4\nnop\nbreak 0")?;
/// let graph = BlockGraph::extract(&program, &MerkleTreeHash::new(3))?;
/// // Entry region: nop + beq (2 instructions), branching to 8 or 12.
/// let entry = graph.block(0).unwrap();
/// assert_eq!(entry.len, 2);
/// assert_eq!(entry.successors, vec![8, 12]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockGraph {
    blocks: BTreeMap<u32, Block>,
    compression: Compression,
    entry: u32,
}

impl BlockGraph {
    /// Runs the offline block analysis over `program`, with `hash`
    /// providing the per-instruction hashes. The digest fold is the S-box
    /// compression (see the inline note on why a linear fold would be
    /// unsound).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyProgram`] for an empty image.
    pub fn extract<H: InstructionHash + ?Sized>(
        program: &Program,
        hash: &H,
    ) -> Result<BlockGraph, GraphError> {
        if program.words.is_empty() {
            return Err(GraphError::EmptyProgram);
        }
        let base = program.base;
        let end = base + 4 * program.words.len() as u32;
        let in_range = |a: u32| a >= base && a < end;
        let word_at = |a: u32| program.words[((a - base) / 4) as usize];

        // Indirect-target set, as in the instruction-level analysis.
        let mut indirect_targets: Vec<u32> = Vec::new();
        for (i, &word) in program.words.iter().enumerate() {
            let pc = base + 4 * i as u32;
            if let Ok(inst) = Inst::decode(word) {
                let linking = matches!(
                    inst.control_flow(),
                    ControlFlow::Jump { linking: true, .. }
                        | ControlFlow::Indirect { linking: true }
                        | ControlFlow::Branch { linking: true, .. }
                );
                if linking && in_range(pc + 4) {
                    indirect_targets.push(pc + 4);
                }
            }
        }
        indirect_targets.sort_unstable();
        indirect_targets.dedup();

        // Worklist of region entries, seeded with the program entry.
        let mut blocks = BTreeMap::new();
        let mut work = vec![base];
        // The digest fold must be nonlinear: with a sum fold, whether two
        // regions collide would be independent of the hash parameter (the
        // per-instruction shift cancels), re-creating the SR2 transfer
        // weakness at block granularity. The S-box fold keeps collisions
        // parameter-dependent.
        let compression = Compression::SBox;
        while let Some(entry) = work.pop() {
            if blocks.contains_key(&entry) || !in_range(entry) {
                continue;
            }
            let mut digest = 0u8;
            let mut len = 0u32;
            let mut pc = entry;
            let successors = loop {
                if !in_range(pc) {
                    break Vec::new(); // runs off the image: terminal
                }
                let word = word_at(pc);
                digest = compression.compress(digest, hash.hash(word));
                len += 1;
                match Inst::decode(word) {
                    Err(_) => break Vec::new(), // data word: terminal
                    Ok(Inst::Break { .. }) | Ok(Inst::Syscall { .. }) => break Vec::new(),
                    Ok(inst) => match inst.control_flow() {
                        ControlFlow::Sequential => pc += 4,
                        cf @ ControlFlow::Branch { .. } => {
                            let mut s = vec![pc + 4];
                            if let Some(t) = cf.taken_target(pc) {
                                if t != pc + 4 {
                                    s.push(t);
                                }
                            }
                            break s.into_iter().filter(|&a| in_range(a)).collect();
                        }
                        cf @ ControlFlow::Jump { .. } => {
                            break cf
                                .taken_target(pc)
                                .into_iter()
                                .filter(|&a| in_range(a))
                                .collect()
                        }
                        ControlFlow::Indirect { .. } => break indirect_targets.clone(),
                    },
                }
            };
            work.extend(successors.iter().copied());
            blocks.insert(
                entry,
                Block {
                    len,
                    digest,
                    successors,
                },
            );
        }
        Ok(BlockGraph {
            blocks,
            compression,
            entry: base,
        })
    }

    /// The region starting at `entry`, if any.
    pub fn block(&self, entry: u32) -> Option<&Block> {
        self.blocks.get(&entry)
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when no regions were extracted (never after a successful
    /// [`BlockGraph::extract`]).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Iterates `(entry, block)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Block)> {
        self.blocks.iter().map(|(&a, b)| (a, b))
    }

    /// Compact hardware size in bits: per block a 4-bit digest, an 8-bit
    /// length, a 2-bit kind tag, and a 16-bit target for two-way exits
    /// (mirrors [`crate::graph::MonitoringGraph::compact_size_bits`]).
    pub fn compact_size_bits(&self) -> usize {
        let mut bits = 0usize;
        let mut indirect = 0usize;
        for block in self.blocks.values() {
            bits += 4 + 8 + 2;
            match block.successors.len() {
                0 | 1 => {}
                2 => bits += 16,
                n => indirect = indirect.max(n),
            }
        }
        bits + indirect * 16
    }
}

/// Counters kept by a [`BlockMonitor`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockMonitorStats {
    /// Packet runs observed.
    pub runs: u64,
    /// Instructions folded into digests.
    pub instructions_observed: u64,
    /// Block-boundary comparisons performed (the memory-access count the
    /// granularity trade-off is about).
    pub blocks_checked: u64,
    /// Violations flagged.
    pub violations: u64,
}

/// Runtime checker at block granularity.
///
/// Tracks the set of candidate regions, folds the observed instruction
/// hashes, and compares digest + length when the control-transfer signal
/// fires.
#[derive(Debug, Clone)]
pub struct BlockMonitor<H: InstructionHash> {
    graph: BlockGraph,
    hash: H,
    candidates: Vec<u32>,
    digest: u8,
    count: u32,
    stats: BlockMonitorStats,
}

impl<H: InstructionHash> BlockMonitor<H> {
    /// Couples a block graph with its hash function.
    pub fn new(graph: BlockGraph, hash: H) -> BlockMonitor<H> {
        BlockMonitor {
            graph,
            hash,
            candidates: Vec::new(),
            digest: 0,
            count: 0,
            stats: BlockMonitorStats::default(),
        }
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> BlockMonitorStats {
        self.stats
    }

    /// The installed block graph.
    pub fn graph(&self) -> &BlockGraph {
        &self.graph
    }
}

impl<H: InstructionHash> ExecutionObserver for BlockMonitor<H> {
    fn begin(&mut self, entry: u32) {
        self.stats.runs += 1;
        self.candidates.clear();
        self.candidates.push(entry);
        self.digest = 0;
        self.count = 0;
    }

    fn observe(&mut self, _pc: u32, word: u32) -> Observation {
        self.stats.instructions_observed += 1;
        self.digest = self
            .graph
            .compression
            .compress(self.digest, self.hash.hash(word));
        self.count += 1;
        // The control-transfer signal: the monitor classifies the word's
        // control-flow kind (hardware taps the branch-retirement line, and
        // the trap line for break/syscall).
        let is_ender = match Inst::decode(word) {
            Ok(Inst::Break { .. }) | Ok(Inst::Syscall { .. }) => true,
            Ok(inst) => inst.ends_basic_block(),
            Err(_) => true, // reserved word: the core traps right after
        };
        if !is_ender {
            return Observation::Continue;
        }
        self.stats.blocks_checked += 1;
        let mut next = Vec::new();
        let mut matched = false;
        for &entry in &self.candidates {
            if let Some(block) = self.graph.block(entry) {
                if block.len == self.count && block.digest == self.digest {
                    matched = true;
                    next.extend_from_slice(&block.successors);
                }
            }
        }
        if !matched {
            self.stats.violations += 1;
            return Observation::Violation;
        }
        next.sort_unstable();
        next.dedup();
        self.candidates = next;
        self.digest = 0;
        self.count = 0;
        Observation::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::MerkleTreeHash;
    use sdmmon_isa::asm::Assembler;
    use sdmmon_npu::core::Core;
    use sdmmon_npu::programs::{self, testing};
    use sdmmon_npu::runtime::{HaltReason, Verdict};

    fn block_monitored(program: &Program, param: u32) -> (Core, BlockMonitor<MerkleTreeHash>) {
        let hash = MerkleTreeHash::new(param);
        let graph = BlockGraph::extract(program, &hash).unwrap();
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        (core, BlockMonitor::new(graph, hash))
    }

    #[test]
    fn extraction_on_straight_line() {
        let p = Assembler::new().assemble("nop\nnop\nbreak 0").unwrap();
        let g = BlockGraph::extract(&p, &MerkleTreeHash::new(0)).unwrap();
        assert_eq!(g.len(), 1);
        let b = g.block(0).unwrap();
        assert_eq!(b.len, 3);
        assert!(b.successors.is_empty());
    }

    #[test]
    fn extraction_covers_both_branch_arms() {
        let p = Assembler::new()
            .assemble("beq $t0, $zero, skip\nnop\nskip: break 0")
            .unwrap();
        let g = BlockGraph::extract(&p, &MerkleTreeHash::new(0)).unwrap();
        assert_eq!(g.block(0).unwrap().successors, vec![4, 8]);
        assert!(g.block(4).is_some(), "fall-through region");
        assert!(g.block(8).is_some(), "taken region");
    }

    #[test]
    fn loops_do_not_diverge_extraction() {
        let p = Assembler::new()
            .assemble("top: addiu $t0, $t0, -1\nbgtz $t0, top\nbreak 0")
            .unwrap();
        let g = BlockGraph::extract(&p, &MerkleTreeHash::new(1)).unwrap();
        assert!(g.len() <= 3);
        assert!(g.block(0).unwrap().successors.contains(&0), "back edge");
    }

    #[test]
    fn legitimate_traffic_passes_all_workloads() {
        for program in [
            programs::ipv4_forward().unwrap(),
            programs::ipv4_cm().unwrap(),
            programs::vulnerable_forward().unwrap(),
        ] {
            let (mut core, mut monitor) = block_monitored(&program, 0xB10C);
            for dst in 1u8..5 {
                let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, dst], 64, b"x");
                let out = core.process_packet(&packet, &mut monitor);
                assert_eq!(out.halt, HaltReason::Completed);
                assert_eq!(out.verdict, Verdict::Forward(dst as u32));
            }
            assert_eq!(monitor.stats().violations, 0);
            // The granularity win: far fewer checks than instructions.
            let s = monitor.stats();
            assert!(
                s.blocks_checked * 3 < s.instructions_observed,
                "{} checks for {} instructions",
                s.blocks_checked,
                s.instructions_observed
            );
        }
    }

    #[test]
    fn hijack_detected_at_block_granularity_most_of_the_time() {
        // The granularity trade-off, quantified: the injected code is one
        // block, so it needs only a single digest+length collision to
        // escape (≈1/16 per parameter) — versus one collision *per
        // instruction* at instruction granularity. We therefore assert a
        // statistical majority, not certainty (the ablation bench measures
        // the rates).
        let program = programs::vulnerable_forward().unwrap();
        let attack =
            testing::hijack_packet("li $t4, 0x0007fff0\nli $t5, 15\nsw $t5, 0($t4)\nbreak 0")
                .unwrap();
        let params: Vec<u32> = (0..16)
            .map(|i| 0x9E37_79B9u32.wrapping_mul(i + 1))
            .collect();
        let mut detected = 0;
        let mut escaped = 0;
        for &param in &params {
            let (mut core, mut monitor) = block_monitored(&program, param);
            let out = core.process_packet(&attack, &mut monitor);
            match out.halt {
                HaltReason::MonitorViolation => {
                    detected += 1;
                    assert_eq!(out.verdict, Verdict::Drop, "param {param:#x}");
                }
                HaltReason::Completed => escaped += 1,
                other => panic!("unexpected halt {other:?} for param {param:#x}"),
            }
        }
        assert!(
            detected >= 11,
            "block monitor should catch the hijack usually ({detected} detected, {escaped} escaped of {})",
            params.len()
        );
    }

    #[test]
    fn detection_is_no_earlier_than_instruction_level() {
        // The block monitor can only flag at a block boundary, so its
        // violation (when both detect) comes at >= the instruction-level
        // monitor's step count.
        let program = programs::vulnerable_forward().unwrap();
        let attack =
            testing::hijack_packet("li $t4, 0x0007fff0\nli $t5, 15\nsw $t5, 0($t4)\nbreak 0")
                .unwrap();
        let param = 0xAB; // both monitors detect under this parameter
        let (mut core_i, mut mon_i) = {
            let hash = MerkleTreeHash::new(param);
            let graph = crate::graph::MonitoringGraph::extract(&program, &hash).unwrap();
            let mut core = Core::new();
            core.install(&program.to_bytes(), program.base);
            (core, crate::monitor::HardwareMonitor::new(graph, hash))
        };
        let (mut core_b, mut mon_b) = block_monitored(&program, param);
        let out_i = core_i.process_packet(&attack, &mut mon_i);
        let out_b = core_b.process_packet(&attack, &mut mon_b);
        if out_i.halt == HaltReason::MonitorViolation && out_b.halt == HaltReason::MonitorViolation
        {
            assert!(
                out_b.steps >= out_i.steps,
                "{} vs {}",
                out_b.steps,
                out_i.steps
            );
        }
    }

    #[test]
    fn block_graph_is_smaller_than_instruction_graph() {
        let program = programs::ipv4_cm().unwrap();
        let hash = MerkleTreeHash::new(5);
        let inst_graph = crate::graph::MonitoringGraph::extract(&program, &hash).unwrap();
        let block_graph = BlockGraph::extract(&program, &hash).unwrap();
        assert!(
            block_graph.compact_size_bits() < inst_graph.compact_size_bits(),
            "{} vs {}",
            block_graph.compact_size_bits(),
            inst_graph.compact_size_bits()
        );
    }

    #[test]
    fn empty_program_rejected() {
        let p = Assembler::new().assemble("").unwrap();
        assert_eq!(
            BlockGraph::extract(&p, &MerkleTreeHash::new(0)),
            Err(GraphError::EmptyProgram)
        );
    }

    #[test]
    fn monitor_resyncs_between_packets() {
        let program = programs::ipv4_forward().unwrap();
        let (mut core, mut monitor) = block_monitored(&program, 0xFEED);
        for _ in 0..4 {
            let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"");
            assert_eq!(
                core.process_packet(&packet, &mut monitor).halt,
                HaltReason::Completed
            );
        }
        assert_eq!(monitor.stats().runs, 4);
    }
}
