//! The runtime hardware monitor.
//!
//! The hardware design gets a 4-bit hash of the processor's current
//! operation each clock and compares it with the monitoring graph. Because
//! the monitor has no data path, it cannot know which way a branch went —
//! it tracks the *set* of graph positions consistent with the hash stream
//! observed so far (an NFA over the graph). An empty set means the
//! processor's behaviour matches no valid path: an attack is flagged.
//!
//! This also faithfully reproduces the probabilistic escape behaviour the
//! paper analyses: injected code survives one comparison only when its hash
//! happens to match some candidate position (chance ≈ 2⁻⁴ per
//! instruction), so the escape probability decreases geometrically with
//! attack length.

use crate::graph::MonitoringGraph;
use crate::hash::InstructionHash;
use sdmmon_npu::core::Core;
use sdmmon_npu::cpu::{ExecutionObserver, Observation};
use sdmmon_npu::runtime::PacketOutcome;

/// Valid bit of a packed [`HardwareMonitor::fused_next`] entry. (`0` alone
/// cannot be used as the empty sentinel: the all-zero word is a legitimate
/// instruction.)
const FUSED_VALID: u64 = 1 << 63;

/// Set in a [`HardwareMonitor::fused_next`] entry when the node has zero or
/// several distinct successors, so the fused fast path must advance through
/// the node's [`HardwareMonitor::fast_spans`] span instead of the packed
/// successor field.
const FUSED_MULTI: u64 = 1 << 62;

/// Set (together with [`FUSED_MULTI`]) when the node has exactly two
/// distinct successors that both fit [`ARM_BITS`]: the arms are packed into
/// the entry itself (bits 32.. and 46..), so a verified branch advance
/// resolves to the register pair without touching the edge tables.
const FUSED_PAIR: u64 = 1 << 61;

/// Width of one packed pair arm (two fit under the flag bits; graphs too
/// large for that — over 16 K nodes — simply fall back to the span walk).
const ARM_BITS: u32 = 14;

/// "No singleton candidate" sentinel for [`FusedRun::node`].
const NO_NODE: u32 = u32::MAX;

/// Slots in the direct-mapped [`HardwareMonitor::hash_memo`] (must be a
/// power of two). 1024 entries × 8 bytes covers every distinct word of the
/// packet workloads many times over and stays resident in L1.
const HASH_MEMO_SLOTS: usize = 1024;

/// Valid bit in a packed [`HardwareMonitor::hash_memo`] entry (the hash
/// occupies bits 0..8, wide enough for any supported hash width; the word
/// sits above the valid bit).
const HASH_MEMO_VALID: u64 = 1 << 8;

/// Counters kept by a monitor across its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Packet runs observed (calls to `begin`).
    pub runs: u64,
    /// Instructions checked against the graph.
    pub instructions_checked: u64,
    /// Violations flagged.
    pub violations: u64,
    /// High-water mark of the candidate set (hardware sizing input).
    pub max_candidates: usize,
}

/// A per-core hardware monitor: monitoring graph + parameterized hash +
/// candidate-set tracking.
///
/// Matching uses **only the hash stream**, never the reported pc, mirroring
/// the hardware. See the crate-level example for typical usage with a
/// [`sdmmon_npu::core::Core`].
#[derive(Debug, Clone)]
pub struct HardwareMonitor<H: InstructionHash> {
    graph: MonitoringGraph,
    hash: H,
    /// Per-node instruction hash, indexed by node index — the dense table
    /// the hardware actually compares against, one memory access per
    /// retired instruction.
    node_hashes: Vec<u8>,
    /// Flattened successor lists as node indices (not addresses).
    succ_edges: Vec<u32>,
    /// Per-node `(start, end)` span into [`Self::succ_edges`].
    succ_spans: Vec<(u32, u32)>,
    /// Per-node successor lists pre-sorted and deduplicated — exactly what
    /// the general path's `sort_unstable` + `dedup` produces for a
    /// singleton candidate set, computed once at construction so the fused
    /// per-packet path ([`ExecutionObserver::run_packet`]) advances with a
    /// span copy instead of a sort per instruction.
    fast_edges: Vec<u32>,
    /// Per-node `(start, end)` span into [`Self::fast_edges`].
    fast_spans: Vec<(u32, u32)>,
    /// Verified word memo, one packed entry per node, written whenever a
    /// full hash computation proves an observed `word` hashes to
    /// `node_hashes[n]`: bits 0..32 hold that word, [`FUSED_VALID`] marks
    /// the entry bound, and — for nodes with exactly one distinct
    /// successor — bits 32..62 hold that successor's index (otherwise
    /// [`FUSED_MULTI`] is set and the successors come from
    /// [`Self::fast_spans`]). The hash is a pure function of the word, so
    /// a later instruction matching the memo can skip the hash entirely:
    /// match, advance, and successor resolve in a *single* load on the
    /// fused path's straight-line fast case. Never invalidated; never
    /// serialized.
    fused_next: Vec<u64>,
    /// Direct-mapped word→hash memo for the fused path's fallback (used
    /// when the candidate set is not a singleton, e.g. while both arms of
    /// a branch are still live). Each entry packs
    /// `word << 9 | HASH_MEMO_VALID | hash`; again sound because the hash
    /// is pure in the word. Sized [`HASH_MEMO_SLOTS`].
    hash_memo: Box<[u64]>,
    /// Candidate graph positions (node indices) consistent with the
    /// observed hash stream.
    current: Vec<u32>,
    scratch: Vec<u32>,
    stats: MonitorStats,
}

impl<H: InstructionHash> HardwareMonitor<H> {
    /// Couples a monitoring graph with the hash function it was built
    /// under. (SDMMon guarantees the coupling cryptographically: graph and
    /// hash parameter travel in the same signed package.)
    ///
    /// The graph is compiled into dense index-based tables here, so the
    /// per-instruction check in [`ExecutionObserver::observe`] is a plain
    /// array compare with no address arithmetic or bounds decisions.
    /// Successor addresses that fall outside the graph (possible only in
    /// hand-crafted or corrupted serialized graphs) are dropped during
    /// compilation — they could never match any future hash, which is
    /// exactly how the uncompiled monitor treated them.
    ///
    /// # Panics
    ///
    /// Panics if the graph's hash width differs from the function's — a
    /// mismatched installation that hardware could not even wire up.
    pub fn new(graph: MonitoringGraph, hash: H) -> HardwareMonitor<H> {
        assert_eq!(
            graph.hash_bits(),
            hash.output_bits(),
            "graph and hash function disagree on output width"
        );
        let mut node_hashes = Vec::with_capacity(graph.len());
        let mut succ_edges = Vec::new();
        let mut succ_spans = Vec::with_capacity(graph.len());
        for (_, node) in graph.iter() {
            node_hashes.push(node.hash);
            let start = succ_edges.len() as u32;
            succ_edges.extend(
                node.successors
                    .iter()
                    .filter_map(|&addr| node_index(&graph, addr)),
            );
            succ_spans.push((start, succ_edges.len() as u32));
        }
        let mut fast_edges = Vec::with_capacity(succ_edges.len());
        let mut fast_spans = Vec::with_capacity(succ_spans.len());
        for &(start, end) in &succ_spans {
            let mut sorted: Vec<u32> = succ_edges[start as usize..end as usize].to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            let fast_start = fast_edges.len() as u32;
            fast_edges.extend(sorted);
            fast_spans.push((fast_start, fast_edges.len() as u32));
        }
        let fused_next = vec![0; node_hashes.len()];
        HardwareMonitor {
            graph,
            hash,
            node_hashes,
            succ_edges,
            succ_spans,
            fast_edges,
            fast_spans,
            fused_next,
            hash_memo: vec![0u64; HASH_MEMO_SLOTS].into_boxed_slice(),
            current: Vec::new(),
            scratch: Vec::new(),
            stats: MonitorStats::default(),
        }
    }

    /// The monitoring graph installed in this monitor.
    pub fn graph(&self) -> &MonitoringGraph {
        &self.graph
    }

    /// The hash function (with its secret parameter).
    pub fn hash_function(&self) -> &H {
        &self.hash
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// Number of graph positions currently considered possible.
    pub fn candidate_count(&self) -> usize {
        self.current.len()
    }
}

/// Maps an address to its dense node index, if it is a covered, aligned
/// graph position.
fn node_index(graph: &MonitoringGraph, addr: u32) -> Option<u32> {
    let off = addr.wrapping_sub(graph.base());
    if addr < graph.base() || !off.is_multiple_of(4) {
        return None;
    }
    let idx = off / 4;
    ((idx as usize) < graph.len()).then_some(idx)
}

/// The packed fused-next entry recording a proven `(node, word)` hash
/// match, built from the pre-sorted successor tables. Free-standing so both
/// the monitor's reference path and a [`FusedRun`] holding the tables by
/// value produce bit-identical entries.
#[inline]
fn packed_entry(fast_spans: &[(u32, u32)], fast_edges: &[u32], cand: usize, word: u32) -> u64 {
    let (start, end) = fast_spans[cand];
    entry_from_span(fast_edges, start, end, word)
}

/// Builds the packed entry for a node whose successor span is already in
/// hand: single successors go in bits 32..62, small two-arm branches pack
/// both arms ([`FUSED_PAIR`]), everything else defers to the span walk.
#[inline]
fn entry_from_span(fast_edges: &[u32], start: u32, end: u32, word: u32) -> u64 {
    let s = start as usize;
    match end - start {
        1 => u64::from(word) | (u64::from(fast_edges[s]) << 32) | FUSED_VALID,
        2 => {
            let (a, b) = (fast_edges[s], fast_edges[s + 1]);
            if a >> ARM_BITS == 0 && b >> ARM_BITS == 0 {
                u64::from(word)
                    | FUSED_VALID
                    | FUSED_MULTI
                    | FUSED_PAIR
                    | (u64::from(a) << 32)
                    | (u64::from(b) << (32 + ARM_BITS))
            } else {
                u64::from(word) | FUSED_VALID | FUSED_MULTI
            }
        }
        _ => u64::from(word) | FUSED_VALID | FUSED_MULTI,
    }
}

impl<H: InstructionHash> HardwareMonitor<H> {
    fn begin_impl(&mut self, entry: u32) {
        self.stats.runs += 1;
        self.current.clear();
        self.current.extend(node_index(&self.graph, entry));
    }

    /// The reference per-instruction check: hash the word, compare against
    /// every candidate, advance to the union of matched successors. This is
    /// the hardware's data path and the oracle the fused path must agree
    /// with. Every verified `(node, word)` match is memoized into
    /// [`Self::fused_next`] — sound because the hash is a pure function
    /// of the word, so the verdict for that pair can never change.
    fn observe_general(&mut self, word: u32) -> Observation {
        let observed = self.hash.hash(word);
        self.advance_candidates(word, observed)
    }

    /// Records a proven `(node, word)` hash match in [`Self::fused_next`].
    #[inline]
    fn learn(&mut self, cand: usize, word: u32) {
        self.fused_next[cand] = packed_entry(&self.fast_spans, &self.fast_edges, cand, word);
    }

    /// Candidate-set advance for an already-computed hash of `word`.
    fn advance_candidates(&mut self, word: u32, observed: u8) -> Observation {
        self.scratch.clear();
        let mut matched = false;
        for i in 0..self.current.len() {
            let cand = self.current[i] as usize;
            if self.node_hashes[cand] == observed {
                matched = true;
                self.learn(cand, word);
                let (start, end) = self.succ_spans[cand];
                self.scratch
                    .extend_from_slice(&self.succ_edges[start as usize..end as usize]);
            }
        }
        if !matched {
            self.stats.violations += 1;
            return Observation::Violation;
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();
        std::mem::swap(&mut self.current, &mut self.scratch);
        self.stats.max_candidates = self.stats.max_candidates.max(self.current.len());
        Observation::Continue
    }
}

/// The monomorphized view [`HardwareMonitor::run_packet`] hands to the
/// core: same monitor state, but `observe` goes through the fused check,
/// and the per-run bookkeeping lives in register-friendly locals merged
/// back into [`MonitorStats`] once per packet. Private on purpose — the
/// fused path is reachable only through [`ExecutionObserver::run_packet`],
/// keeping the trait's per-instruction `observe` the unchanged reference
/// implementation.
struct FusedRun<'a, H: InstructionHash> {
    mon: &'a mut HardwareMonitor<H>,
    /// The monitor's hot tables ([`HardwareMonitor::fused_next`],
    /// `node_hashes`, `hash_memo`, `fast_edges`, `fast_spans`), moved in
    /// for the duration of the run and moved back by [`Drop`]. Held by
    /// value so the per-instruction cases read observer-local state only:
    /// loads behind `mon` must be re-done after every interpreted store
    /// (the compiler cannot prove the core's memory writes don't alias
    /// them), while fields of the observer — a `noalias` parameter of the
    /// monomorphized run loop — stay in registers or L1.
    next_tab: Vec<u64>,
    node_hashes: Vec<u8>,
    hash_memo: Box<[u64]>,
    fast_edges: Vec<u32>,
    fast_spans: Vec<(u32, u32)>,
    /// The sole candidate while the set is a singleton ([`NO_NODE`]
    /// otherwise). Holding it here — instead of reading `current[0]` back
    /// each instruction — keeps the straight-line fast case to a single
    /// load of the fused-next table.
    node: u32,
    /// Both live arms of a branch while the set has exactly two
    /// candidates (`pair.0 == NO_NODE` otherwise; always sorted, like the
    /// sets the reference path produces). The pair resolves in-registers
    /// with two hash-table compares, so the branch round-trip — the most
    /// common non-singleton shape by far — never touches `mon.current`.
    pair: (u32, u32),
    /// Local high-water mark of the candidate-set sizes produced by the
    /// register-resident advances; merged into `stats.max_candidates` at
    /// the end of the packet (the materialized fallback updates the stat
    /// directly, and `max` is order-independent).
    max_seen: usize,
}

impl<'a, H: InstructionHash> FusedRun<'a, H> {
    /// Moves the monitor's hot tables into a run-local observer. The
    /// tables go back on drop, so the monitor is whole again even if the
    /// interpreter panics mid-run (the testkit's fault campaigns unwind
    /// through here).
    fn take(mon: &'a mut HardwareMonitor<H>) -> FusedRun<'a, H> {
        FusedRun {
            next_tab: std::mem::take(&mut mon.fused_next),
            node_hashes: std::mem::take(&mut mon.node_hashes),
            hash_memo: std::mem::take(&mut mon.hash_memo),
            fast_edges: std::mem::take(&mut mon.fast_edges),
            fast_spans: std::mem::take(&mut mon.fast_spans),
            mon,
            node: NO_NODE,
            pair: (NO_NODE, NO_NODE),
            max_seen: 0,
        }
    }

    /// Word→hash through the run-local direct-mapped memo, computing and
    /// filling on miss. Pure-function memoization: the returned value
    /// always equals `hash.hash(word)`.
    #[inline]
    fn memoized_hash(&mut self, word: u32) -> u8 {
        let slot = (word.wrapping_mul(0x9e37_79b1) >> 22) as usize & (HASH_MEMO_SLOTS - 1);
        let packed = self.hash_memo[slot];
        if packed >> 9 == u64::from(word) && packed & HASH_MEMO_VALID != 0 {
            return (packed & 0xff) as u8;
        }
        let hashed = self.mon.hash.hash(word);
        self.hash_memo[slot] = (u64::from(word) << 9) | HASH_MEMO_VALID | u64::from(hashed);
        hashed
    }

    /// Records a proven `(node, word)` hash match in the run-local table —
    /// the same packed entry [`HardwareMonitor::learn`] would write.
    #[inline]
    fn learn_local(&mut self, cand: usize, word: u32) {
        self.next_tab[cand] = packed_entry(&self.fast_spans, &self.fast_edges, cand, word);
    }

    /// After a proven match on `cand`, move to its pre-sorted, pre-deduped
    /// successor span, picking the cheapest mode for the new set size and
    /// recording the high-water statistic the reference path would.
    #[inline]
    fn advance_span(&mut self, cand: usize) {
        let (start, end) = self.fast_spans[cand];
        match end - start {
            1 => {
                self.node = self.fast_edges[start as usize];
                self.pair = (NO_NODE, NO_NODE);
                self.max_seen = self.max_seen.max(1);
            }
            2 => {
                self.node = NO_NODE;
                self.pair = (
                    self.fast_edges[start as usize],
                    self.fast_edges[start as usize + 1],
                );
                self.max_seen = self.max_seen.max(2);
            }
            n => {
                self.node = NO_NODE;
                self.pair = (NO_NODE, NO_NODE);
                self.mon.current.clear();
                self.mon
                    .current
                    .extend_from_slice(&self.fast_edges[start as usize..end as usize]);
                self.max_seen = self.max_seen.max(n as usize);
            }
        }
    }

    /// [`Self::learn_local`] and [`Self::advance_span`] fused over a single
    /// span load (the pair path runs this on every resolved branch arm):
    /// writes the same packed entry and lands in the same mode.
    #[inline]
    fn learn_and_advance(&mut self, cand: usize, word: u32) {
        let (start, end) = self.fast_spans[cand];
        self.next_tab[cand] = entry_from_span(&self.fast_edges, start, end, word);
        match end - start {
            1 => {
                self.node = self.fast_edges[start as usize];
                self.pair = (NO_NODE, NO_NODE);
                self.max_seen = self.max_seen.max(1);
            }
            2 => {
                self.node = NO_NODE;
                self.pair = (
                    self.fast_edges[start as usize],
                    self.fast_edges[start as usize + 1],
                );
                self.max_seen = self.max_seen.max(2);
            }
            n => {
                self.node = NO_NODE;
                self.pair = (NO_NODE, NO_NODE);
                self.mon.current.clear();
                self.mon
                    .current
                    .extend_from_slice(&self.fast_edges[start as usize..end as usize]);
                self.max_seen = self.max_seen.max(n as usize);
            }
        }
    }

    /// Writes the register-resident candidate set (singleton or pair) back
    /// into `mon.current` and leaves the run in general mode. No-op when
    /// the set already lives there.
    fn materialize(&mut self) {
        if self.node != NO_NODE {
            self.mon.current.clear();
            self.mon.current.push(self.node);
            self.node = NO_NODE;
        } else if self.pair.0 != NO_NODE {
            self.mon.current.clear();
            self.mon.current.push(self.pair.0);
            self.mon.current.push(self.pair.1);
            self.pair = (NO_NODE, NO_NODE);
        }
    }

    /// Re-enters the cheapest mode for whatever set the materialized
    /// fallback left in `mon.current` (which stays a stale copy while a
    /// register mode is active).
    fn sync_mode(&mut self) {
        match *self.mon.current.as_slice() {
            [only] => {
                self.node = only;
                self.pair = (NO_NODE, NO_NODE);
            }
            [a, b] => {
                self.node = NO_NODE;
                self.pair = (a, b);
            }
            _ => {
                self.node = NO_NODE;
                self.pair = (NO_NODE, NO_NODE);
            }
        }
    }

    /// Pair-mode check: resolve both arms of a live branch with the
    /// memoized hash and the run-local node-hash table, entirely in
    /// registers. The both-match case (a hash collision between the arms)
    /// takes the materialized reference-shaped fallback.
    fn observe_pair(&mut self, word: u32) -> Observation {
        let (pa, pb) = (self.pair.0 as usize, self.pair.1 as usize);
        let observed = self.memoized_hash(word);
        let m0 = self.node_hashes[pa] == observed;
        let m1 = self.node_hashes[pb] == observed;
        if m0 != m1 {
            let cand = if m0 { pa } else { pb };
            self.learn_and_advance(cand, word);
            return Observation::Continue;
        }
        if !m0 {
            self.mon.stats.violations += 1;
            return Observation::Violation;
        }
        self.materialize();
        let obs = self.advance_fallback(word);
        self.sync_mode();
        obs
    }

    /// The non-register half of `observe`: materialize the live set, run
    /// the reference-shaped check, re-enter a register mode if the result
    /// is small again.
    fn observe_slow(&mut self, word: u32) -> Observation {
        self.materialize();
        let obs = self.advance_fallback(word);
        self.sync_mode();
        obs
    }

    /// Candidate advance over `mon.current` with the memoized hash and a
    /// small-set sort specialization. Must stay in lockstep with
    /// [`HardwareMonitor::advance_candidates`] — same matches, same
    /// resulting set, same statistics; only the arithmetic shortcuts
    /// differ (memoized hash instead of recomputed, compare-swap instead
    /// of `sort_unstable` for two-element sets).
    fn advance_fallback(&mut self, word: u32) -> Observation {
        let observed = self.memoized_hash(word);
        self.mon.scratch.clear();
        let mut matched = false;
        for i in 0..self.mon.current.len() {
            let cand = self.mon.current[i] as usize;
            if self.node_hashes[cand] == observed {
                matched = true;
                self.learn_local(cand, word);
                let (start, end) = self.mon.succ_spans[cand];
                self.mon
                    .scratch
                    .extend_from_slice(&self.mon.succ_edges[start as usize..end as usize]);
            }
        }
        if !matched {
            self.mon.stats.violations += 1;
            return Observation::Violation;
        }
        match self.mon.scratch.len() {
            0 | 1 => {}
            2 => {
                if self.mon.scratch[0] > self.mon.scratch[1] {
                    self.mon.scratch.swap(0, 1);
                } else if self.mon.scratch[0] == self.mon.scratch[1] {
                    self.mon.scratch.pop();
                }
            }
            _ => {
                self.mon.scratch.sort_unstable();
                self.mon.scratch.dedup();
            }
        }
        std::mem::swap(&mut self.mon.current, &mut self.mon.scratch);
        self.mon.stats.max_candidates = self.mon.stats.max_candidates.max(self.mon.current.len());
        Observation::Continue
    }
}

impl<H: InstructionHash> Drop for FusedRun<'_, H> {
    fn drop(&mut self) {
        self.mon.fused_next = std::mem::take(&mut self.next_tab);
        self.mon.node_hashes = std::mem::take(&mut self.node_hashes);
        self.mon.hash_memo = std::mem::take(&mut self.hash_memo);
        self.mon.fast_edges = std::mem::take(&mut self.fast_edges);
        self.mon.fast_spans = std::mem::take(&mut self.fast_spans);
    }
}

impl<H: InstructionHash> ExecutionObserver for FusedRun<'_, H> {
    fn begin(&mut self, entry: u32) {
        self.mon.begin_impl(entry);
        self.sync_mode();
    }

    #[inline(always)]
    fn observe(&mut self, _pc: u32, word: u32) -> Observation {
        // Observability hook for the fused hot loop: a no-op sink unless
        // the `obs-hot` feature opts into per-retired-instruction
        // recording (the default level settles instruction counts once per
        // packet in the NP instead — see `sdmmon-obs`).
        #[cfg(feature = "obs-hot")]
        sdmmon_obs::metrics().inc(sdmmon_obs::Counter::MonitorHotInstructions);
        let node = self.node;
        if node != NO_NODE {
            // The overwhelmingly common case — straight-line code under a
            // singleton candidate whose word was verified before: one load
            // resolves match and successor (the general path would record
            // `max(.., 1)` and re-learn the same packed entry here). The
            // masked compare checks word and [`FUSED_VALID`] in one test;
            // a cursor out of table range (impossible by construction)
            // reads as unlearned and re-validates on the slow path.
            let packed = self.next_tab.get(node as usize).map_or(0, |&p| p);
            if packed & (FUSED_VALID | 0xffff_ffff) == u64::from(word) | FUSED_VALID {
                if packed & FUSED_MULTI == 0 {
                    self.node = ((packed >> 32) & 0x1fff_ffff) as u32;
                    self.max_seen = self.max_seen.max(1);
                    return Observation::Continue;
                }
                if packed & FUSED_PAIR != 0 {
                    // Both arms of the branch come out of the entry itself:
                    // the whole multi-successor advance is one load.
                    self.node = NO_NODE;
                    self.pair = (
                        ((packed >> 32) as u32) & ((1 << ARM_BITS) - 1),
                        ((packed >> (32 + ARM_BITS)) as u32) & ((1 << ARM_BITS) - 1),
                    );
                    self.max_seen = self.max_seen.max(2);
                    return Observation::Continue;
                }
                self.advance_span(node as usize);
                return Observation::Continue;
            }
            return self.observe_slow(word);
        }
        if self.pair.0 != NO_NODE {
            return self.observe_pair(word);
        }
        self.observe_slow(word)
    }
}

impl<H: InstructionHash> ExecutionObserver for HardwareMonitor<H> {
    fn begin(&mut self, entry: u32) {
        self.begin_impl(entry);
    }

    fn observe(&mut self, _pc: u32, word: u32) -> Observation {
        self.stats.instructions_checked += 1;
        self.observe_general(word)
    }

    /// The fused per-packet path: one virtual call per packet, then a
    /// fully monomorphized interpret–check loop (the generic
    /// [`Core::process_packet`] inlines [`FusedRun::observe`], which uses
    /// the memoized-word singleton fast path). Outcomes and statistics are
    /// identical to the default per-instruction dispatch.
    fn run_packet(&mut self, core: &mut Core, packet: &[u8]) -> PacketOutcome {
        let mut fused = FusedRun::take(self);
        let out = core.process_packet(packet, &mut fused);
        // The candidate set must survive the run (`candidate_count` is
        // public API and `begin` of the next packet reads nothing else),
        // so flush whatever register mode the run ended in.
        fused.materialize();
        let max_seen = fused.max_seen;
        drop(fused); // moves the hot tables back into the monitor

        // `observe` fires exactly once per retired instruction — the count
        // the core already returns — so the per-instruction counter the
        // general path keeps can be settled once per packet here.
        self.stats.instructions_checked += out.steps;
        self.stats.max_candidates = self.stats.max_candidates.max(max_seen);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::MerkleTreeHash;
    use sdmmon_npu::core::Core;
    use sdmmon_npu::programs::{self, testing};
    use sdmmon_npu::runtime::{HaltReason, Verdict};

    fn monitored_core(
        program: &sdmmon_isa::asm::Program,
        param: u32,
    ) -> (Core, HardwareMonitor<MerkleTreeHash>) {
        let hash = MerkleTreeHash::new(param);
        let graph = MonitoringGraph::extract(program, &hash).unwrap();
        let monitor = HardwareMonitor::new(graph, hash);
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        (core, monitor)
    }

    #[test]
    fn legitimate_traffic_passes_all_workloads() {
        for program in [
            programs::ipv4_forward().unwrap(),
            programs::ipv4_cm().unwrap(),
            programs::vulnerable_forward().unwrap(),
        ] {
            let (mut core, mut monitor) = monitored_core(&program, 0x1357_9bdf);
            for dst in 1u8..6 {
                let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, dst], 64, b"data");
                let out = core.process_packet(&packet, &mut monitor);
                assert_eq!(out.halt, HaltReason::Completed);
                assert_eq!(out.verdict, Verdict::Forward(dst as u32));
            }
            assert_eq!(monitor.stats().violations, 0);
            assert!(monitor.stats().instructions_checked > 100);
        }
    }

    #[test]
    fn benign_options_pass_the_vulnerable_binary() {
        let program = programs::vulnerable_forward().unwrap();
        let (mut core, mut monitor) = monitored_core(&program, 0xABCD_EF01);
        let out = core.process_packet(&testing::benign_options_packet(3), &mut monitor);
        assert_eq!(out.halt, HaltReason::Completed);
        assert_eq!(out.verdict, Verdict::Forward(3));
    }

    #[test]
    fn stack_smash_hijack_is_detected() {
        // The same attack that silently succeeds without a monitor
        // (see sdmmon-npu tests) is caught here. We test several router
        // parameters; each escape needs a fresh hash collision per injected
        // instruction, so detection before clean completion is
        // overwhelmingly likely — and the verdict is forced to Drop.
        let program = programs::vulnerable_forward().unwrap();
        let attack = testing::hijack_packet(
            "li $t4, 0x0007fff0
             li $t5, 15
             sw $t5, 0($t4)
             li $t6, 0x1234
             li $t7, 0x5678
             break 0",
        )
        .unwrap();
        let mut detected = 0;
        for param in [1u32, 0xdead_beef, 0x0bad_f00d, 42, 0x8000_0001] {
            let (mut core, mut monitor) = monitored_core(&program, param);
            let out = core.process_packet(&attack, &mut monitor);
            assert_eq!(out.verdict, Verdict::Drop, "param {param:#x}");
            if out.halt == HaltReason::MonitorViolation {
                detected += 1;
            }
        }
        assert_eq!(detected, 5, "all parameters should detect this attack");
    }

    #[test]
    fn corrupted_instruction_detected() {
        // Flip one bit in the installed binary: the monitor flags the first
        // execution of the corrupted instruction (unless the 4-bit hash
        // collides; we pick a parameter where it does not).
        let program = programs::ipv4_forward().unwrap();
        let hash = MerkleTreeHash::new(7);
        // Corrupting word 3 changes its hash under the sum compression
        // whenever the flipped nibble sum differs; flipping bit 0 changes
        // nibble 0 by ±1, so the hash always differs.
        let (mut core, mut monitor) = monitored_core(&program, 7);
        let addr = program.base + 12;
        let word = core.memory().load_u32(addr).unwrap();
        core.memory_mut().store_u32(addr, word ^ 1).unwrap();
        let _ = hash; // parameter choice documented above
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"");
        let out = core.process_packet(&packet, &mut monitor);
        assert_eq!(out.halt, HaltReason::MonitorViolation);
        assert_eq!(monitor.stats().violations, 1);
    }

    #[test]
    fn graph_for_wrong_parameter_rejects_immediately() {
        // SR2: a monitoring graph built for router A's parameter is useless
        // (flags instantly) under router B's parameter. With the sum
        // compression, parameter 1 shifts every hash by 1, so the very
        // first instruction mismatches.
        let program = programs::ipv4_forward().unwrap();
        let graph_a = MonitoringGraph::extract(&program, &MerkleTreeHash::new(0)).unwrap();
        let mut monitor = HardwareMonitor::new(graph_a, MerkleTreeHash::new(1));
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"");
        let out = core.process_packet(&packet, &mut monitor);
        assert_eq!(out.halt, HaltReason::MonitorViolation);
        assert_eq!(out.steps, 1, "first comparison already fails");
    }

    #[test]
    fn monitor_resyncs_between_packets() {
        let program = programs::ipv4_forward().unwrap();
        let (mut core, mut monitor) = monitored_core(&program, 0x600D_CAFE);
        for _ in 0..5 {
            let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"");
            let out = core.process_packet(&packet, &mut monitor);
            assert_eq!(out.halt, HaltReason::Completed);
        }
        assert_eq!(monitor.stats().runs, 5);
    }

    #[test]
    fn candidate_set_stays_small_on_straightline_code() {
        let program = programs::ipv4_forward().unwrap();
        let (mut core, mut monitor) = monitored_core(&program, 3);
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"");
        core.process_packet(&packet, &mut monitor);
        // Bounded by the return-site set plus hash-collision ambiguity;
        // must stay far below the program size for hardware viability.
        assert!(
            monitor.stats().max_candidates <= 8,
            "{}",
            monitor.stats().max_candidates
        );
    }

    #[test]
    fn compiled_tables_mirror_graph() {
        // The dense index tables built at construction must be a faithful
        // compilation of the address-keyed graph.
        let program = programs::ipv4_cm().unwrap();
        let hash = MerkleTreeHash::new(0x1234);
        let graph = MonitoringGraph::extract(&program, &hash).unwrap();
        let monitor = HardwareMonitor::new(graph.clone(), hash);
        for (i, (addr, node)) in graph.iter().enumerate() {
            assert_eq!(monitor.node_hashes[i], node.hash, "hash at {addr:#x}");
            let (start, end) = monitor.succ_spans[i];
            let succ_addrs: Vec<u32> = monitor.succ_edges[start as usize..end as usize]
                .iter()
                .map(|&idx| graph.base() + 4 * idx)
                .collect();
            assert_eq!(succ_addrs, node.successors, "successors at {addr:#x}");
        }
    }

    #[test]
    #[should_panic(expected = "output width")]
    fn mismatched_widths_rejected() {
        let program = programs::ipv4_forward().unwrap();
        let graph = MonitoringGraph::extract(&program, &crate::hash::WidthHash::new(0, 8)).unwrap();
        let _ = HardwareMonitor::new(graph, MerkleTreeHash::new(0));
    }

    #[test]
    fn works_through_network_processor_recovery() {
        // Full loop: NP with monitored cores; attack packet detected,
        // dropped, core recovered, next packets fine.
        let program = programs::vulnerable_forward().unwrap();
        let image = program.to_bytes();
        let mut np = sdmmon_npu::np::NetworkProcessor::new(2);
        np.install_all(&image, program.base, |i| {
            let hash = MerkleTreeHash::new(0x5eed_0000 + i as u32);
            let graph = MonitoringGraph::extract(&program, &hash).unwrap();
            Box::new(HardwareMonitor::new(graph, hash))
        });
        let attack = testing::hijack_packet("li $t5, 15\nli $t6, 3\nli $t7, 9\nbreak 0").unwrap();
        let good = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"");
        np.process(&attack);
        let (_, out) = np.process(&good); // other core
        assert_eq!(out.verdict, Verdict::Forward(2));
        let (_, out) = np.process(&good); // recovered core
        assert_eq!(out.verdict, Verdict::Forward(2));
        let stats = np.stats();
        assert_eq!(stats.violations, 1);
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.forwarded, 2);
    }
}
