//! The runtime hardware monitor.
//!
//! The hardware design gets a 4-bit hash of the processor's current
//! operation each clock and compares it with the monitoring graph. Because
//! the monitor has no data path, it cannot know which way a branch went —
//! it tracks the *set* of graph positions consistent with the hash stream
//! observed so far (an NFA over the graph). An empty set means the
//! processor's behaviour matches no valid path: an attack is flagged.
//!
//! This also faithfully reproduces the probabilistic escape behaviour the
//! paper analyses: injected code survives one comparison only when its hash
//! happens to match some candidate position (chance ≈ 2⁻⁴ per
//! instruction), so the escape probability decreases geometrically with
//! attack length.

use crate::graph::MonitoringGraph;
use crate::hash::{InstructionHash, BLOCK_LANES};
use sdmmon_npu::core::{BlockObserver, Core, RETIRE_BLOCK};
use sdmmon_npu::cpu::{ExecutionObserver, Observation};
use sdmmon_npu::runtime::PacketOutcome;

/// "No singleton candidate" sentinel for [`BlockRun::node`].
const NO_NODE: u32 = u32::MAX;

// The core's retirement buffer and the bit-sliced hash data path must agree
// on the block width; a full buffer flush is exactly one SWAR pass.
const _: () = assert!(RETIRE_BLOCK == BLOCK_LANES);

/// Counters kept by a monitor across its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Packet runs observed (calls to `begin`).
    pub runs: u64,
    /// Instructions checked against the graph.
    pub instructions_checked: u64,
    /// Violations flagged.
    pub violations: u64,
    /// High-water mark of the candidate set (hardware sizing input).
    pub max_candidates: usize,
}

/// A per-core hardware monitor: monitoring graph + parameterized hash +
/// candidate-set tracking.
///
/// Matching uses **only the hash stream**, never the reported pc, mirroring
/// the hardware. See the crate-level example for typical usage with a
/// [`sdmmon_npu::core::Core`].
#[derive(Debug, Clone)]
pub struct HardwareMonitor<H: InstructionHash> {
    graph: MonitoringGraph,
    hash: H,
    /// Per-node instruction hash, indexed by node index — the dense table
    /// the hardware actually compares against, one memory access per
    /// retired instruction.
    node_hashes: Vec<u8>,
    /// Flattened successor lists as node indices (not addresses).
    succ_edges: Vec<u32>,
    /// Per-node `(start, end)` span into [`Self::succ_edges`].
    succ_spans: Vec<(u32, u32)>,
    /// Per-node successor lists pre-sorted and deduplicated — exactly what
    /// the general path's `sort_unstable` + `dedup` produces for a
    /// singleton candidate set, computed once at construction so the
    /// block-verification path ([`ExecutionObserver::run_packet`]) advances
    /// with a span copy instead of a sort per instruction.
    fast_edges: Vec<u32>,
    /// Per-node `(start, end)` span into [`Self::fast_edges`].
    fast_spans: Vec<(u32, u32)>,
    /// Candidate graph positions (node indices) consistent with the
    /// observed hash stream.
    current: Vec<u32>,
    scratch: Vec<u32>,
    stats: MonitorStats,
}

impl<H: InstructionHash> HardwareMonitor<H> {
    /// Couples a monitoring graph with the hash function it was built
    /// under. (SDMMon guarantees the coupling cryptographically: graph and
    /// hash parameter travel in the same signed package.)
    ///
    /// The graph is compiled into dense index-based tables here, so the
    /// per-instruction check in [`ExecutionObserver::observe`] is a plain
    /// array compare with no address arithmetic or bounds decisions.
    /// Successor addresses that fall outside the graph (possible only in
    /// hand-crafted or corrupted serialized graphs) are dropped during
    /// compilation — they could never match any future hash, which is
    /// exactly how the uncompiled monitor treated them.
    ///
    /// # Panics
    ///
    /// Panics if the graph's hash width differs from the function's — a
    /// mismatched installation that hardware could not even wire up.
    pub fn new(graph: MonitoringGraph, hash: H) -> HardwareMonitor<H> {
        assert_eq!(
            graph.hash_bits(),
            hash.output_bits(),
            "graph and hash function disagree on output width"
        );
        let mut node_hashes = Vec::with_capacity(graph.len());
        let mut succ_edges = Vec::new();
        let mut succ_spans = Vec::with_capacity(graph.len());
        for (_, node) in graph.iter() {
            node_hashes.push(node.hash);
            let start = succ_edges.len() as u32;
            succ_edges.extend(
                node.successors
                    .iter()
                    .filter_map(|&addr| node_index(&graph, addr)),
            );
            succ_spans.push((start, succ_edges.len() as u32));
        }
        let mut fast_edges = Vec::with_capacity(succ_edges.len());
        let mut fast_spans = Vec::with_capacity(succ_spans.len());
        for &(start, end) in &succ_spans {
            let mut sorted: Vec<u32> = succ_edges[start as usize..end as usize].to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            let fast_start = fast_edges.len() as u32;
            fast_edges.extend(sorted);
            fast_spans.push((fast_start, fast_edges.len() as u32));
        }
        HardwareMonitor {
            graph,
            hash,
            node_hashes,
            succ_edges,
            succ_spans,
            fast_edges,
            fast_spans,
            current: Vec::new(),
            scratch: Vec::new(),
            stats: MonitorStats::default(),
        }
    }

    /// The monitoring graph installed in this monitor.
    pub fn graph(&self) -> &MonitoringGraph {
        &self.graph
    }

    /// The hash function (with its secret parameter).
    pub fn hash_function(&self) -> &H {
        &self.hash
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// Number of graph positions currently considered possible.
    pub fn candidate_count(&self) -> usize {
        self.current.len()
    }
}

/// Maps an address to its dense node index, if it is a covered, aligned
/// graph position.
fn node_index(graph: &MonitoringGraph, addr: u32) -> Option<u32> {
    let off = addr.wrapping_sub(graph.base());
    if addr < graph.base() || !off.is_multiple_of(4) {
        return None;
    }
    let idx = off / 4;
    ((idx as usize) < graph.len()).then_some(idx)
}

impl<H: InstructionHash> HardwareMonitor<H> {
    fn begin_impl(&mut self, entry: u32) {
        self.stats.runs += 1;
        self.current.clear();
        self.current.extend(node_index(&self.graph, entry));
    }

    /// The reference per-instruction check: hash the word, compare against
    /// every candidate, advance to the union of matched successors. This is
    /// the hardware's data path and the oracle the block-verification path
    /// must agree with.
    fn observe_general(&mut self, word: u32) -> Observation {
        let observed = self.hash.hash(word);
        self.advance_candidates(observed)
    }

    /// Candidate-set advance for an already-computed hash value.
    fn advance_candidates(&mut self, observed: u8) -> Observation {
        self.scratch.clear();
        let mut matched = false;
        for i in 0..self.current.len() {
            let cand = self.current[i] as usize;
            if self.node_hashes[cand] == observed {
                matched = true;
                let (start, end) = self.succ_spans[cand];
                self.scratch
                    .extend_from_slice(&self.succ_edges[start as usize..end as usize]);
            }
        }
        if !matched {
            self.stats.violations += 1;
            return Observation::Violation;
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();
        std::mem::swap(&mut self.current, &mut self.scratch);
        self.stats.max_candidates = self.stats.max_candidates.max(self.current.len());
        Observation::Continue
    }
}

/// The block-verification observer [`HardwareMonitor::run_packet`] hands
/// to [`Core::process_packet_blocks`]: full retirement blocks are hashed in
/// one bit-sliced pass ([`InstructionHash::hash_block`]) and the NFA walk
/// consumes the precomputed lane hashes; partial final blocks (trap,
/// `break 0`, step-limit) take the scalar tail. Per-run bookkeeping lives
/// in register-friendly locals merged back into [`MonitorStats`] once per
/// packet. Private on purpose — the block path is reachable only through
/// [`ExecutionObserver::run_packet`], keeping the trait's per-instruction
/// `observe` the unchanged reference implementation (the differential
/// oracle).
struct BlockRun<'a, H: InstructionHash> {
    mon: &'a mut HardwareMonitor<H>,
    /// The sole candidate while the set is a singleton ([`NO_NODE`]
    /// otherwise) — the overwhelmingly common straight-line mode, kept in
    /// a register instead of `current[0]`.
    node: u32,
    /// Both live arms of a branch while the set has exactly two
    /// candidates (`pair.0 == NO_NODE` otherwise; always sorted, like the
    /// sets the reference path produces). The pair resolves with two
    /// table compares, so the branch round-trip — the most common
    /// non-singleton shape by far — never touches `mon.current`.
    pair: (u32, u32),
    /// Local high-water mark of the candidate-set sizes produced by the
    /// register-resident advances; merged into `stats.max_candidates` at
    /// the end of the packet (the materialized fallback updates the stat
    /// directly, and `max` is order-independent).
    max_seen: usize,
    /// Full 16-lane blocks hashed bit-sliced this run.
    blocks: u64,
    /// Instructions hashed by the scalar tail this run.
    tail: u64,
    /// Per-lane hashes of the block being walked.
    hashes: [u8; BLOCK_LANES],
}

impl<'a, H: InstructionHash> BlockRun<'a, H> {
    fn new(mon: &'a mut HardwareMonitor<H>) -> BlockRun<'a, H> {
        BlockRun {
            mon,
            node: NO_NODE,
            pair: (NO_NODE, NO_NODE),
            max_seen: 0,
            blocks: 0,
            tail: 0,
            hashes: [0; BLOCK_LANES],
        }
    }

    /// After a proven match on `cand`, move to its pre-sorted, pre-deduped
    /// successor span, picking the cheapest mode for the new set size and
    /// recording the high-water statistic the reference path would.
    #[inline]
    fn advance_span(&mut self, cand: usize) {
        let (start, end) = self.mon.fast_spans[cand];
        let span = &self.mon.fast_edges[start as usize..end as usize];
        match *span {
            [next] => {
                self.node = next;
                self.pair = (NO_NODE, NO_NODE);
                self.max_seen = self.max_seen.max(1);
            }
            [a, b] => {
                self.node = NO_NODE;
                self.pair = (a, b);
                self.max_seen = self.max_seen.max(2);
            }
            _ => {
                self.node = NO_NODE;
                self.pair = (NO_NODE, NO_NODE);
                self.max_seen = self.max_seen.max(span.len());
                self.mon.current.clear();
                self.mon.current.extend_from_slice(span);
            }
        }
    }

    /// Writes the register-resident candidate set (singleton or pair) back
    /// into `mon.current` and leaves the run in general mode. No-op when
    /// the set already lives there.
    fn materialize(&mut self) {
        if self.node != NO_NODE {
            self.mon.current.clear();
            self.mon.current.push(self.node);
            self.node = NO_NODE;
        } else if self.pair.0 != NO_NODE {
            self.mon.current.clear();
            self.mon.current.push(self.pair.0);
            self.mon.current.push(self.pair.1);
            self.pair = (NO_NODE, NO_NODE);
        }
    }

    /// Re-enters the cheapest mode for whatever set the materialized
    /// fallback left in `mon.current` (which stays a stale copy while a
    /// register mode is active).
    fn sync_mode(&mut self) {
        match *self.mon.current.as_slice() {
            [only] => {
                self.node = only;
                self.pair = (NO_NODE, NO_NODE);
            }
            [a, b] => {
                self.node = NO_NODE;
                self.pair = (a, b);
            }
            _ => {
                self.node = NO_NODE;
                self.pair = (NO_NODE, NO_NODE);
            }
        }
    }

    /// One NFA step for a precomputed lane hash. Must stay in lockstep
    /// with [`HardwareMonitor::advance_candidates`] — same matches, same
    /// resulting set, same statistics; only the dispatch differs (register
    /// modes for singleton/pair sets, the reference-shaped fallback for
    /// everything else). On a violation the candidate state is left
    /// untouched, exactly like the reference path.
    #[inline]
    fn advance(&mut self, observed: u8) -> Observation {
        let node = self.node;
        if node != NO_NODE {
            if self.mon.node_hashes[node as usize] == observed {
                self.advance_span(node as usize);
                return Observation::Continue;
            }
            self.mon.stats.violations += 1;
            return Observation::Violation;
        }
        if self.pair.0 != NO_NODE {
            return self.advance_pair(observed);
        }
        let obs = self.mon.advance_candidates(observed);
        if obs == Observation::Continue {
            self.sync_mode();
        }
        obs
    }

    /// Pair-mode step: resolve both arms of a live branch with two table
    /// compares. The both-match case (a hash collision between the arms)
    /// takes the materialized reference-shaped fallback.
    fn advance_pair(&mut self, observed: u8) -> Observation {
        let (pa, pb) = (self.pair.0 as usize, self.pair.1 as usize);
        let m0 = self.mon.node_hashes[pa] == observed;
        let m1 = self.mon.node_hashes[pb] == observed;
        if m0 != m1 {
            self.advance_span(if m0 { pa } else { pb });
            return Observation::Continue;
        }
        if !m0 {
            self.mon.stats.violations += 1;
            return Observation::Violation;
        }
        self.materialize();
        let obs = self.mon.advance_candidates(observed);
        if obs == Observation::Continue {
            self.sync_mode();
        }
        obs
    }
}

impl<H: InstructionHash> BlockObserver for BlockRun<'_, H> {
    fn begin(&mut self, entry: u32) {
        self.mon.begin_impl(entry);
        self.sync_mode();
    }

    fn observe_block(&mut self, words: &[u32]) -> Option<usize> {
        // Full blocks go through the bit-sliced tree — one SWAR pass for
        // all 16 lanes; the partial final block falls back to the scalar
        // hash (the block path's scalar tail).
        if let Ok(full) = <&[u32; BLOCK_LANES]>::try_from(words) {
            self.hashes = self.mon.hash.hash_block(full);
            self.blocks += 1;
        } else {
            for (h, &w) in self.hashes.iter_mut().zip(words) {
                *h = self.mon.hash.hash(w);
            }
            self.tail += words.len() as u64;
        }
        for i in 0..words.len() {
            // Observability hook for the hot loop: a no-op sink unless the
            // `obs-hot` feature opts into per-retired-instruction
            // recording (the default level settles instruction counts once
            // per packet in the NP instead — see `sdmmon-obs`).
            #[cfg(feature = "obs-hot")]
            sdmmon_obs::metrics().inc(sdmmon_obs::Counter::MonitorHotInstructions);
            let observed = self.hashes[i];
            if self.advance(observed) == Observation::Violation {
                return Some(i);
            }
        }
        None
    }
}

impl<H: InstructionHash> ExecutionObserver for HardwareMonitor<H> {
    fn begin(&mut self, entry: u32) {
        self.begin_impl(entry);
    }

    fn observe(&mut self, _pc: u32, word: u32) -> Observation {
        self.stats.instructions_checked += 1;
        self.observe_general(word)
    }

    /// The block per-packet path: the core retires instructions into
    /// 16-word blocks ([`Core::process_packet_blocks`]), full blocks are
    /// hashed in one bit-sliced SWAR pass, and the NFA walk consumes the
    /// precomputed lane hashes. Outcomes and statistics are identical to
    /// the default per-instruction dispatch — the block loop rolls the
    /// step count back to the violating lane and discards speculative
    /// over-execution.
    fn run_packet(&mut self, core: &mut Core, packet: &[u8]) -> PacketOutcome {
        let mut run = BlockRun::new(self);
        let out = core.process_packet_blocks(packet, &mut run);
        // The candidate set must survive the run (`candidate_count` is
        // public API and `begin` of the next packet reads nothing else),
        // so flush whatever register mode the run ended in.
        run.materialize();
        let (max_seen, blocks, tail) = (run.max_seen, run.blocks, run.tail);

        // The block loop checks exactly one hash per retired instruction —
        // the count the core already returns — so the per-instruction
        // counter the general path keeps can be settled once per packet.
        self.stats.instructions_checked += out.steps;
        self.stats.max_candidates = self.stats.max_candidates.max(max_seen);
        let metrics = sdmmon_obs::metrics();
        metrics.add(sdmmon_obs::Counter::MonitorBlocksVerified, blocks);
        metrics.add(sdmmon_obs::Counter::MonitorScalarTailInstructions, tail);
        metrics.observe(sdmmon_obs::Hist::MonitorBlocksPerPacket, blocks);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::MerkleTreeHash;
    use sdmmon_npu::core::Core;
    use sdmmon_npu::programs::{self, testing};
    use sdmmon_npu::runtime::{HaltReason, Verdict};

    fn monitored_core(
        program: &sdmmon_isa::asm::Program,
        param: u32,
    ) -> (Core, HardwareMonitor<MerkleTreeHash>) {
        let hash = MerkleTreeHash::new(param);
        let graph = MonitoringGraph::extract(program, &hash).unwrap();
        let monitor = HardwareMonitor::new(graph, hash);
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        (core, monitor)
    }

    #[test]
    fn legitimate_traffic_passes_all_workloads() {
        for program in [
            programs::ipv4_forward().unwrap(),
            programs::ipv4_cm().unwrap(),
            programs::vulnerable_forward().unwrap(),
        ] {
            let (mut core, mut monitor) = monitored_core(&program, 0x1357_9bdf);
            for dst in 1u8..6 {
                let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, dst], 64, b"data");
                let out = core.process_packet(&packet, &mut monitor);
                assert_eq!(out.halt, HaltReason::Completed);
                assert_eq!(out.verdict, Verdict::Forward(dst as u32));
            }
            assert_eq!(monitor.stats().violations, 0);
            assert!(monitor.stats().instructions_checked > 100);
        }
    }

    #[test]
    fn benign_options_pass_the_vulnerable_binary() {
        let program = programs::vulnerable_forward().unwrap();
        let (mut core, mut monitor) = monitored_core(&program, 0xABCD_EF01);
        let out = core.process_packet(&testing::benign_options_packet(3), &mut monitor);
        assert_eq!(out.halt, HaltReason::Completed);
        assert_eq!(out.verdict, Verdict::Forward(3));
    }

    #[test]
    fn stack_smash_hijack_is_detected() {
        // The same attack that silently succeeds without a monitor
        // (see sdmmon-npu tests) is caught here. We test several router
        // parameters; each escape needs a fresh hash collision per injected
        // instruction, so detection before clean completion is
        // overwhelmingly likely — and the verdict is forced to Drop.
        let program = programs::vulnerable_forward().unwrap();
        let attack = testing::hijack_packet(
            "li $t4, 0x0007fff0
             li $t5, 15
             sw $t5, 0($t4)
             li $t6, 0x1234
             li $t7, 0x5678
             break 0",
        )
        .unwrap();
        let mut detected = 0;
        for param in [1u32, 0xdead_beef, 0x0bad_f00d, 42, 0x8000_0001] {
            let (mut core, mut monitor) = monitored_core(&program, param);
            let out = core.process_packet(&attack, &mut monitor);
            assert_eq!(out.verdict, Verdict::Drop, "param {param:#x}");
            if out.halt == HaltReason::MonitorViolation {
                detected += 1;
            }
        }
        assert_eq!(detected, 5, "all parameters should detect this attack");
    }

    #[test]
    fn corrupted_instruction_detected() {
        // Flip one bit in the installed binary: the monitor flags the first
        // execution of the corrupted instruction (unless the 4-bit hash
        // collides; we pick a parameter where it does not).
        let program = programs::ipv4_forward().unwrap();
        let hash = MerkleTreeHash::new(7);
        // Corrupting word 3 changes its hash under the sum compression
        // whenever the flipped nibble sum differs; flipping bit 0 changes
        // nibble 0 by ±1, so the hash always differs.
        let (mut core, mut monitor) = monitored_core(&program, 7);
        let addr = program.base + 12;
        let word = core.memory().load_u32(addr).unwrap();
        core.memory_mut().store_u32(addr, word ^ 1).unwrap();
        let _ = hash; // parameter choice documented above
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"");
        let out = core.process_packet(&packet, &mut monitor);
        assert_eq!(out.halt, HaltReason::MonitorViolation);
        assert_eq!(monitor.stats().violations, 1);
    }

    #[test]
    fn graph_for_wrong_parameter_rejects_immediately() {
        // SR2: a monitoring graph built for router A's parameter is useless
        // (flags instantly) under router B's parameter. With the sum
        // compression, parameter 1 shifts every hash by 1, so the very
        // first instruction mismatches.
        let program = programs::ipv4_forward().unwrap();
        let graph_a = MonitoringGraph::extract(&program, &MerkleTreeHash::new(0)).unwrap();
        let mut monitor = HardwareMonitor::new(graph_a, MerkleTreeHash::new(1));
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"");
        let out = core.process_packet(&packet, &mut monitor);
        assert_eq!(out.halt, HaltReason::MonitorViolation);
        assert_eq!(out.steps, 1, "first comparison already fails");
    }

    #[test]
    fn monitor_resyncs_between_packets() {
        let program = programs::ipv4_forward().unwrap();
        let (mut core, mut monitor) = monitored_core(&program, 0x600D_CAFE);
        for _ in 0..5 {
            let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"");
            let out = core.process_packet(&packet, &mut monitor);
            assert_eq!(out.halt, HaltReason::Completed);
        }
        assert_eq!(monitor.stats().runs, 5);
    }

    #[test]
    fn candidate_set_stays_small_on_straightline_code() {
        let program = programs::ipv4_forward().unwrap();
        let (mut core, mut monitor) = monitored_core(&program, 3);
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"");
        core.process_packet(&packet, &mut monitor);
        // Bounded by the return-site set plus hash-collision ambiguity;
        // must stay far below the program size for hardware viability.
        assert!(
            monitor.stats().max_candidates <= 8,
            "{}",
            monitor.stats().max_candidates
        );
    }

    #[test]
    fn compiled_tables_mirror_graph() {
        // The dense index tables built at construction must be a faithful
        // compilation of the address-keyed graph.
        let program = programs::ipv4_cm().unwrap();
        let hash = MerkleTreeHash::new(0x1234);
        let graph = MonitoringGraph::extract(&program, &hash).unwrap();
        let monitor = HardwareMonitor::new(graph.clone(), hash);
        for (i, (addr, node)) in graph.iter().enumerate() {
            assert_eq!(monitor.node_hashes[i], node.hash, "hash at {addr:#x}");
            let (start, end) = monitor.succ_spans[i];
            let succ_addrs: Vec<u32> = monitor.succ_edges[start as usize..end as usize]
                .iter()
                .map(|&idx| graph.base() + 4 * idx)
                .collect();
            assert_eq!(succ_addrs, node.successors, "successors at {addr:#x}");
        }
    }

    #[test]
    #[should_panic(expected = "output width")]
    fn mismatched_widths_rejected() {
        let program = programs::ipv4_forward().unwrap();
        let graph = MonitoringGraph::extract(&program, &crate::hash::WidthHash::new(0, 8)).unwrap();
        let _ = HardwareMonitor::new(graph, MerkleTreeHash::new(0));
    }

    #[test]
    fn works_through_network_processor_recovery() {
        // Full loop: NP with monitored cores; attack packet detected,
        // dropped, core recovered, next packets fine.
        let program = programs::vulnerable_forward().unwrap();
        let image = program.to_bytes();
        let mut np = sdmmon_npu::np::NetworkProcessor::new(2);
        np.install_all(&image, program.base, |i| {
            let hash = MerkleTreeHash::new(0x5eed_0000 + i as u32);
            let graph = MonitoringGraph::extract(&program, &hash).unwrap();
            Box::new(HardwareMonitor::new(graph, hash))
        });
        let attack = testing::hijack_packet("li $t5, 15\nli $t6, 3\nli $t7, 9\nbreak 0").unwrap();
        let good = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"");
        np.process(&attack);
        let (_, out) = np.process(&good); // other core
        assert_eq!(out.verdict, Verdict::Forward(2));
        let (_, out) = np.process(&good); // recovered core
        assert_eq!(out.verdict, Verdict::Forward(2));
        let stats = np.stats();
        assert_eq!(stats.violations, 1);
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.forwarded, 2);
    }
}
