//! # sdmmon-monitor — hardware monitors for network processors
//!
//! This crate models the per-instruction hardware monitor of Mao & Wolf
//! (IEEE ToC 2010) that the SDMMon paper builds on:
//!
//! 1. **Offline analysis** ([`graph::MonitoringGraph::extract`]) turns a
//!    processing binary into a *monitoring graph*: for every instruction, a
//!    short (default 4-bit) hash of the instruction word plus the set of
//!    valid successor addresses derived from the control-flow structure.
//! 2. **Runtime checking** ([`monitor::HardwareMonitor`]) observes the hash
//!    of each instruction the core retires and tracks the set of graph
//!    positions consistent with the observed hash stream. If the set
//!    becomes empty the processor deviated from programmed behaviour — an
//!    attack is flagged and the core is reset.
//! 3. **Parameterizable hashing** ([`hash::MerkleTreeHash`]) gives every
//!    router its own secret 32-bit hash parameter, so a hash-collision
//!    attack built for one device does not transfer to any other — the
//!    paper's answer to fleet homogeneity (SR2).
//!
//! The monitor deliberately matches on the *hash stream only* (never the
//! program counter), exactly like the hardware design: the pc argument of
//! the observer interface is used for diagnostics alone.
//!
//! # Examples
//!
//! ```
//! use sdmmon_monitor::{graph::MonitoringGraph, hash::MerkleTreeHash, monitor::HardwareMonitor};
//! use sdmmon_npu::{core::Core, programs, runtime::HaltReason};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = programs::ipv4_forward()?;
//! let hash = MerkleTreeHash::new(0xC0FF_EE42);
//! let graph = MonitoringGraph::extract(&program, &hash)?;
//! let mut monitor = HardwareMonitor::new(graph, hash);
//!
//! let mut core = Core::new();
//! core.install(&program.to_bytes(), program.base);
//! let packet = programs::testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"hi");
//! let outcome = core.process_packet(&packet, &mut monitor);
//! assert_eq!(outcome.halt, HaltReason::Completed); // legit traffic passes
//! # Ok(())
//! # }
//! ```

pub mod block;
pub mod graph;
pub mod hash;
pub mod monitor;

pub use graph::MonitoringGraph;
pub use hash::{full_blocks, BitcountHash, InstructionHash, MerkleTreeHash};
pub use monitor::HardwareMonitor;
