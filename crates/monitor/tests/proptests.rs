//! Randomized property tests for the monitoring stack — the soundness
//! property the whole paper rests on: **legitimate execution is never
//! flagged**, for any workload, parameter, compression, and traffic.
//!
//! Cases are drawn from seeded [`StdRng`] streams so failures reproduce.

use sdmmon_isa::asm::Assembler;
use sdmmon_monitor::block::{BlockGraph, BlockMonitor};
use sdmmon_monitor::graph::MonitoringGraph;
use sdmmon_monitor::hash::{Compression, InstructionHash, MerkleTreeHash, WidthHash, BLOCK_LANES};
use sdmmon_monitor::monitor::HardwareMonitor;
use sdmmon_npu::core::Core;
use sdmmon_npu::cpu::ExecutionObserver;
use sdmmon_npu::programs::{self, testing};
use sdmmon_npu::runtime::HaltReason;
use sdmmon_rng::{Rng, RngCore, SeedableRng, StdRng};

const CASES: usize = 64;

fn arb_compression(rng: &mut StdRng) -> Compression {
    Compression::ALL[rng.gen_range(0..Compression::ALL.len())]
}

/// No false positives: any parameter, any compression, any valid or
/// malformed packet — the instruction-level monitor never flags the
/// legitimate binary.
#[test]
fn no_false_positives_instruction_level() {
    let program = programs::ipv4_forward().expect("workload assembles");
    let mut rng = StdRng::seed_from_u64(0x4D0_0001);
    for _ in 0..CASES {
        let param = rng.next_u32();
        let compression = arb_compression(&mut rng);
        let dst = rng.gen::<u8>();
        let ttl = rng.gen::<u8>();
        let mut payload = vec![0u8; rng.gen_range(0..128usize)];
        rng.fill_bytes(&mut payload);
        let hash = MerkleTreeHash::with_compression(param, compression);
        let graph = MonitoringGraph::extract(&program, &hash).expect("graph extracts");
        let mut monitor = HardwareMonitor::new(graph, hash);
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, dst], ttl, &payload);
        let out = core.process_packet(&packet, &mut monitor);
        assert_eq!(out.halt, HaltReason::Completed);
        assert_eq!(monitor.stats().violations, 0);
    }
}

/// Same soundness for the block-granularity monitor.
#[test]
fn no_false_positives_block_level() {
    let program = programs::ipv4_cm().expect("workload assembles");
    let mut rng = StdRng::seed_from_u64(0x4D0_0002);
    for _ in 0..CASES {
        let param = rng.next_u32();
        let dst = rng.gen::<u8>();
        let mut payload = vec![0u8; rng.gen_range(0..128usize)];
        rng.fill_bytes(&mut payload);
        let hash = MerkleTreeHash::new(param);
        let graph = BlockGraph::extract(&program, &hash).expect("graph extracts");
        let mut monitor = BlockMonitor::new(graph, hash);
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, dst], 64, &payload);
        let out = core.process_packet(&packet, &mut monitor);
        assert_eq!(out.halt, HaltReason::Completed);
        assert_eq!(monitor.stats().violations, 0);
    }
}

/// Width-ablated monitors are sound too.
#[test]
fn no_false_positives_any_width() {
    let program = programs::ipv4_forward().expect("workload assembles");
    let mut rng = StdRng::seed_from_u64(0x4D0_0003);
    for _ in 0..CASES {
        let param = rng.next_u32();
        let width = [2, 4, 8][rng.gen_range(0..3usize)];
        let dst = rng.gen_range(1..10u8);
        let hash = WidthHash::new(param, width);
        let graph = MonitoringGraph::extract(&program, &hash).expect("graph extracts");
        let mut monitor = HardwareMonitor::new(graph, hash);
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, dst], 64, b"x");
        let out = core.process_packet(&packet, &mut monitor);
        assert_eq!(out.halt, HaltReason::Completed);
    }
}

/// Graph serialization round-trips for arbitrary small programs built from
/// random (mostly invalid) words — the graph treats undecodable words as
/// data and must survive them.
#[test]
fn graph_serialization_round_trips_any_program() {
    let mut rng = StdRng::seed_from_u64(0x4D0_0004);
    for _ in 0..CASES {
        let words: Vec<u32> = (0..rng.gen_range(1..64usize))
            .map(|_| rng.next_u32())
            .collect();
        let param = rng.next_u32();
        let program = sdmmon_isa::asm::Program {
            base: 0,
            words,
            symbols: Default::default(),
        };
        let hash = MerkleTreeHash::new(param);
        let graph = MonitoringGraph::extract(&program, &hash).expect("graph extracts");
        let restored = MonitoringGraph::from_bytes(&graph.to_bytes()).expect("round trip");
        assert_eq!(restored, graph);
    }
}

/// Corrupting any single instruction of the binary is detected when that
/// instruction executes on the hot path — or at worst the run completes
/// with identical observable behaviour (a 4-bit hash collision AND
/// semantically harmless change). The monitor must never produce a *wrong
/// verdict silently while flagging nothing on a changed hash*.
#[test]
fn corruption_is_detected_or_collides() {
    let program = programs::ipv4_forward().expect("workload assembles");
    let mut rng = StdRng::seed_from_u64(0x4D0_0005);
    for _ in 0..CASES {
        let param = rng.next_u32();
        let word_index = rng.gen_range(0..program.words.len().min(40));
        let bit = rng.gen_range(0..32usize);
        let hash = MerkleTreeHash::with_compression(param, Compression::SBox);
        let graph = MonitoringGraph::extract(&program, &hash).expect("graph extracts");
        let mut monitor = HardwareMonitor::new(graph, hash);
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        let addr = program.base + 4 * word_index as u32;
        let original = core.memory().load_u32(addr).expect("in range");
        let corrupted = original ^ (1 << bit);
        core.memory_mut()
            .store_u32(addr, corrupted)
            .expect("in range");
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"pp");
        let out = core.process_packet(&packet, &mut monitor);
        if out.halt == HaltReason::MonitorViolation {
            // Detected: fine. The hash of the corrupted word must indeed
            // differ... from at least the corrupted position's node
            // (otherwise the monitor had a real reason elsewhere).
            assert_eq!(monitor.stats().violations, 1);
        } else {
            // Not flagged: either the corrupted word never executed, or its
            // hash collided. In both cases the run must have ended in an
            // orderly way.
            assert!(matches!(
                out.halt,
                HaltReason::Completed | HaltReason::Fault(_) | HaltReason::StepLimit
            ));
        }
    }
}

/// Monitoring-graph structure is parameter-independent: only hashes change
/// with the parameter, never successor sets.
#[test]
fn graph_structure_is_parameter_independent() {
    let program = programs::vulnerable_forward().expect("workload assembles");
    let mut rng = StdRng::seed_from_u64(0x4D0_0006);
    for _ in 0..16 {
        let (a, b) = (rng.next_u32(), rng.next_u32());
        let ga = MonitoringGraph::extract(&program, &MerkleTreeHash::new(a)).expect("graph");
        let gb = MonitoringGraph::extract(&program, &MerkleTreeHash::new(b)).expect("graph");
        for (addr, node) in ga.iter() {
            assert_eq!(
                &node.successors,
                &gb.node(addr).expect("same shape").successors
            );
        }
    }
}

/// Deterministic: a graph extracted from one workload rejects execution of
/// a different workload almost immediately (cross-binary install guard).
#[test]
fn wrong_binary_graph_rejects_quickly() {
    let fwd = programs::ipv4_forward().unwrap();
    let cm = programs::ipv4_cm().unwrap();
    let hash = MerkleTreeHash::new(0x1122_3344);
    let graph_for_cm = MonitoringGraph::extract(&cm, &hash).unwrap();
    let mut monitor = HardwareMonitor::new(graph_for_cm, hash);
    let mut core = Core::new();
    core.install(&fwd.to_bytes(), fwd.base);
    let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"");
    let out = core.process_packet(&packet, &mut monitor);
    assert_eq!(out.halt, HaltReason::MonitorViolation);
    assert!(
        out.steps < 40,
        "mismatch found within a few instructions: {}",
        out.steps
    );
}

/// The bit-sliced block hash is a drop-in for the scalar tree: for every
/// compression, random parameters, and random instruction words, all 16
/// lanes of [`InstructionHash::hash_block`] agree with the scalar
/// [`InstructionHash::hash`] — including words whose nibbles exercise the
/// full 0..16 range in every plane.
#[test]
fn bitsliced_block_hash_matches_scalar_all_compressions() {
    let mut rng = StdRng::seed_from_u64(0x4D0_0007);
    for _ in 0..CASES {
        let param = rng.next_u32();
        for compression in Compression::ALL {
            let hash = MerkleTreeHash::with_compression(param, compression);
            let mut words = [0u32; BLOCK_LANES];
            for w in &mut words {
                *w = rng.next_u32();
            }
            let block = hash.hash_block(&words);
            for (i, &w) in words.iter().enumerate() {
                assert_eq!(
                    block[i],
                    hash.hash(w),
                    "lane {i} param {param:#010x} {compression:?}"
                );
            }
        }
    }
}

/// [`WidthHash`] block hashing agrees with its scalar path at every
/// ablation width (2, 4, 8 bits), random parameters and words.
#[test]
fn width_hash_block_path_matches_scalar() {
    let mut rng = StdRng::seed_from_u64(0x4D0_0008);
    for _ in 0..CASES {
        let param = rng.next_u32();
        for width in [2, 4, 8] {
            let hash = WidthHash::new(param, width);
            let mut words = [0u32; BLOCK_LANES];
            for w in &mut words {
                *w = rng.next_u32();
            }
            let block = hash.hash_block(&words);
            for (i, &w) in words.iter().enumerate() {
                assert_eq!(block[i], hash.hash(w), "lane {i} width {width}");
            }
        }
    }
}

/// The block-verification packet path ([`ExecutionObserver::run_packet`],
/// which retires 16-instruction blocks and hashes them bit-sliced) is
/// observationally identical to the per-instruction reference dispatch:
/// same verdict, halt reason, and step count, same monitor statistics and
/// final candidate set — for random parameters, compressions, packets, and
/// randomly corrupted binaries (so violations land at arbitrary offsets
/// inside a block, including partial final blocks of 1..=15 instructions).
#[test]
fn block_path_is_byte_identical_to_reference_path() {
    let program = programs::ipv4_forward().expect("workload assembles");
    let mut rng = StdRng::seed_from_u64(0x4D0_0009);
    for case in 0..CASES * 2 {
        let param = rng.next_u32();
        let compression = arb_compression(&mut rng);
        let dst = rng.gen::<u8>();
        let ttl = rng.gen::<u8>();
        let mut payload = vec![0u8; rng.gen_range(0..96usize)];
        rng.fill_bytes(&mut payload);
        let corrupt = rng.gen_bool(0.5);

        let hash = MerkleTreeHash::with_compression(param, compression);
        let graph = MonitoringGraph::extract(&program, &hash).expect("graph extracts");
        let mut reference = HardwareMonitor::new(graph.clone(), hash);
        let mut blockwise = HardwareMonitor::new(graph, hash);

        let mut core_a = Core::new();
        let mut core_b = Core::new();
        core_a.install(&program.to_bytes(), program.base);
        core_b.install(&program.to_bytes(), program.base);
        if corrupt {
            let word_index = rng.gen_range(0..program.words.len().min(40));
            let bit = rng.gen_range(0..32usize);
            let addr = program.base + 4 * word_index as u32;
            let original = core_a.memory().load_u32(addr).expect("in range");
            let patched = original ^ (1 << bit);
            core_a
                .memory_mut()
                .store_u32(addr, patched)
                .expect("in range");
            core_b
                .memory_mut()
                .store_u32(addr, patched)
                .expect("in range");
        }

        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, dst], ttl, &payload);
        // Reference: the trait's default per-instruction observe loop.
        let ref_out = core_a.process_packet(&packet, &mut reference);
        // Under test: the block path behind `run_packet`.
        let blk_out = blockwise.run_packet(&mut core_b, &packet);

        assert_eq!(blk_out, ref_out, "case {case} outcome");
        assert_eq!(blockwise.stats(), reference.stats(), "case {case} stats");
        assert_eq!(
            blockwise.candidate_count(),
            reference.candidate_count(),
            "case {case} candidates"
        );
    }
}

/// Deterministic: monitors survive tiny synthetic programs with odd shapes
/// (single instruction, all-data, immediate self-loop).
#[test]
fn degenerate_programs_are_handled() {
    for src in ["break 0", "spin: b spin", ".word 0xffffffff"] {
        let program = Assembler::new().assemble(src).unwrap();
        let hash = MerkleTreeHash::new(9);
        let graph = MonitoringGraph::extract(&program, &hash).unwrap();
        assert_eq!(graph.len(), program.words.len(), "{src}");
        let block_graph = BlockGraph::extract(&program, &hash).unwrap();
        assert!(!block_graph.is_empty(), "{src}");
    }
}
