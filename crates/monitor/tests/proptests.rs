//! Property-based tests for the monitoring stack — the soundness property
//! the whole paper rests on: **legitimate execution is never flagged**,
//! for any workload, parameter, compression, and traffic.

use proptest::prelude::*;
use sdmmon_isa::asm::Assembler;
use sdmmon_monitor::block::{BlockGraph, BlockMonitor};
use sdmmon_monitor::graph::MonitoringGraph;
use sdmmon_monitor::hash::{Compression, MerkleTreeHash, WidthHash};
use sdmmon_monitor::monitor::HardwareMonitor;
use sdmmon_npu::core::Core;
use sdmmon_npu::programs::{self, testing};
use sdmmon_npu::runtime::HaltReason;

fn arb_compression() -> impl Strategy<Value = Compression> {
    prop_oneof![
        Just(Compression::SumMod16),
        Just(Compression::Xor),
        Just(Compression::SBox),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No false positives: any parameter, any compression, any valid or
    /// malformed packet — the instruction-level monitor never flags the
    /// legitimate binary.
    #[test]
    fn no_false_positives_instruction_level(
        param in any::<u32>(),
        compression in arb_compression(),
        dst in any::<u8>(),
        ttl in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let program = programs::ipv4_forward().expect("workload assembles");
        let hash = MerkleTreeHash::with_compression(param, compression);
        let graph = MonitoringGraph::extract(&program, &hash).expect("graph extracts");
        let mut monitor = HardwareMonitor::new(graph, hash);
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, dst], ttl, &payload);
        let out = core.process_packet(&packet, &mut monitor);
        prop_assert_eq!(out.halt, HaltReason::Completed);
        prop_assert_eq!(monitor.stats().violations, 0);
    }

    /// Same soundness for the block-granularity monitor.
    #[test]
    fn no_false_positives_block_level(
        param in any::<u32>(),
        dst in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let program = programs::ipv4_cm().expect("workload assembles");
        let hash = MerkleTreeHash::new(param);
        let graph = BlockGraph::extract(&program, &hash).expect("graph extracts");
        let mut monitor = BlockMonitor::new(graph, hash);
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, dst], 64, &payload);
        let out = core.process_packet(&packet, &mut monitor);
        prop_assert_eq!(out.halt, HaltReason::Completed);
        prop_assert_eq!(monitor.stats().violations, 0);
    }

    /// Width-ablated monitors are sound too.
    #[test]
    fn no_false_positives_any_width(
        param in any::<u32>(),
        width_sel in 0usize..3,
        dst in 1u8..10,
    ) {
        let program = programs::ipv4_forward().expect("workload assembles");
        let hash = WidthHash::new(param, [2, 4, 8][width_sel]);
        let graph = MonitoringGraph::extract(&program, &hash).expect("graph extracts");
        let mut monitor = HardwareMonitor::new(graph, hash);
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, dst], 64, b"x");
        let out = core.process_packet(&packet, &mut monitor);
        prop_assert_eq!(out.halt, HaltReason::Completed);
    }

    /// Graph serialization round-trips for arbitrary small programs built
    /// from random (mostly invalid) words — the graph treats undecodable
    /// words as data and must survive them.
    #[test]
    fn graph_serialization_round_trips_any_program(
        words in prop::collection::vec(any::<u32>(), 1..64),
        param in any::<u32>(),
    ) {
        let program = sdmmon_isa::asm::Program { base: 0, words, symbols: Default::default() };
        let hash = MerkleTreeHash::new(param);
        let graph = MonitoringGraph::extract(&program, &hash).expect("graph extracts");
        let restored = MonitoringGraph::from_bytes(&graph.to_bytes()).expect("round trip");
        prop_assert_eq!(restored, graph);
    }

    /// Corrupting any single instruction of the binary is detected when
    /// that instruction executes on the hot path — or at worst the run
    /// completes with identical observable behaviour (a 4-bit hash
    /// collision AND semantically harmless change). The monitor must never
    /// produce a *wrong verdict silently while flagging nothing on a
    /// changed hash*.
    #[test]
    fn corruption_is_detected_or_collides(
        param in any::<u32>(),
        word_index in 0usize..40,
        bit in 0usize..32,
    ) {
        let program = programs::ipv4_forward().expect("workload assembles");
        prop_assume!(word_index < program.words.len());
        let hash = MerkleTreeHash::with_compression(param, Compression::SBox);
        let graph = MonitoringGraph::extract(&program, &hash).expect("graph extracts");
        let mut monitor = HardwareMonitor::new(graph, hash);
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        let addr = program.base + 4 * word_index as u32;
        let original = core.memory().load_u32(addr).expect("in range");
        let corrupted = original ^ (1 << bit);
        core.memory_mut().store_u32(addr, corrupted).expect("in range");
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"pp");
        let out = core.process_packet(&packet, &mut monitor);
        if out.halt == HaltReason::MonitorViolation {
            // Detected: fine. The hash of the corrupted word must indeed
            // differ... from at least the corrupted position's node
            // (otherwise the monitor had a real reason elsewhere).
            prop_assert_eq!(monitor.stats().violations, 1);
        } else {
            // Not flagged: either the corrupted word never executed, or
            // its hash collided. In both cases the run must have ended in
            // an orderly way.
            prop_assert!(matches!(
                out.halt,
                HaltReason::Completed | HaltReason::Fault(_) | HaltReason::StepLimit
            ));
        }
    }

    /// Monitoring-graph structure is parameter-independent: only hashes
    /// change with the parameter, never successor sets.
    #[test]
    fn graph_structure_is_parameter_independent(a in any::<u32>(), b in any::<u32>()) {
        let program = programs::vulnerable_forward().expect("workload assembles");
        let ga = MonitoringGraph::extract(&program, &MerkleTreeHash::new(a)).expect("graph");
        let gb = MonitoringGraph::extract(&program, &MerkleTreeHash::new(b)).expect("graph");
        for (addr, node) in ga.iter() {
            prop_assert_eq!(&node.successors, &gb.node(addr).expect("same shape").successors);
        }
    }
}

/// Deterministic: a graph extracted from one workload rejects execution of
/// a different workload almost immediately (cross-binary install guard).
#[test]
fn wrong_binary_graph_rejects_quickly() {
    let fwd = programs::ipv4_forward().unwrap();
    let cm = programs::ipv4_cm().unwrap();
    let hash = MerkleTreeHash::new(0x1122_3344);
    let graph_for_cm = MonitoringGraph::extract(&cm, &hash).unwrap();
    let mut monitor = HardwareMonitor::new(graph_for_cm, hash);
    let mut core = Core::new();
    core.install(&fwd.to_bytes(), fwd.base);
    let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"");
    let out = core.process_packet(&packet, &mut monitor);
    assert_eq!(out.halt, HaltReason::MonitorViolation);
    assert!(out.steps < 40, "mismatch found within a few instructions: {}", out.steps);
}

/// Deterministic: monitors survive tiny synthetic programs with odd shapes
/// (single instruction, all-data, immediate self-loop).
#[test]
fn degenerate_programs_are_handled() {
    for src in ["break 0", "spin: b spin", ".word 0xffffffff"] {
        let program = Assembler::new().assemble(src).unwrap();
        let hash = MerkleTreeHash::new(9);
        let graph = MonitoringGraph::extract(&program, &hash).unwrap();
        assert_eq!(graph.len(), program.words.len(), "{src}");
        let block_graph = BlockGraph::extract(&program, &hash).unwrap();
        assert!(!block_graph.is_empty(), "{src}");
    }
}
