//! Randomized property tests for the monitoring stack — the soundness
//! property the whole paper rests on: **legitimate execution is never
//! flagged**, for any workload, parameter, compression, and traffic.
//!
//! Cases are drawn from seeded [`StdRng`] streams so failures reproduce.

use sdmmon_isa::asm::Assembler;
use sdmmon_monitor::block::{BlockGraph, BlockMonitor};
use sdmmon_monitor::graph::MonitoringGraph;
use sdmmon_monitor::hash::{Compression, MerkleTreeHash, WidthHash};
use sdmmon_monitor::monitor::HardwareMonitor;
use sdmmon_npu::core::Core;
use sdmmon_npu::programs::{self, testing};
use sdmmon_npu::runtime::HaltReason;
use sdmmon_rng::{Rng, RngCore, SeedableRng, StdRng};

const CASES: usize = 64;

fn arb_compression(rng: &mut StdRng) -> Compression {
    match rng.gen_range(0..3u8) {
        0 => Compression::SumMod16,
        1 => Compression::Xor,
        _ => Compression::SBox,
    }
}

/// No false positives: any parameter, any compression, any valid or
/// malformed packet — the instruction-level monitor never flags the
/// legitimate binary.
#[test]
fn no_false_positives_instruction_level() {
    let program = programs::ipv4_forward().expect("workload assembles");
    let mut rng = StdRng::seed_from_u64(0x4D0_0001);
    for _ in 0..CASES {
        let param = rng.next_u32();
        let compression = arb_compression(&mut rng);
        let dst = rng.gen::<u8>();
        let ttl = rng.gen::<u8>();
        let mut payload = vec![0u8; rng.gen_range(0..128usize)];
        rng.fill_bytes(&mut payload);
        let hash = MerkleTreeHash::with_compression(param, compression);
        let graph = MonitoringGraph::extract(&program, &hash).expect("graph extracts");
        let mut monitor = HardwareMonitor::new(graph, hash);
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, dst], ttl, &payload);
        let out = core.process_packet(&packet, &mut monitor);
        assert_eq!(out.halt, HaltReason::Completed);
        assert_eq!(monitor.stats().violations, 0);
    }
}

/// Same soundness for the block-granularity monitor.
#[test]
fn no_false_positives_block_level() {
    let program = programs::ipv4_cm().expect("workload assembles");
    let mut rng = StdRng::seed_from_u64(0x4D0_0002);
    for _ in 0..CASES {
        let param = rng.next_u32();
        let dst = rng.gen::<u8>();
        let mut payload = vec![0u8; rng.gen_range(0..128usize)];
        rng.fill_bytes(&mut payload);
        let hash = MerkleTreeHash::new(param);
        let graph = BlockGraph::extract(&program, &hash).expect("graph extracts");
        let mut monitor = BlockMonitor::new(graph, hash);
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, dst], 64, &payload);
        let out = core.process_packet(&packet, &mut monitor);
        assert_eq!(out.halt, HaltReason::Completed);
        assert_eq!(monitor.stats().violations, 0);
    }
}

/// Width-ablated monitors are sound too.
#[test]
fn no_false_positives_any_width() {
    let program = programs::ipv4_forward().expect("workload assembles");
    let mut rng = StdRng::seed_from_u64(0x4D0_0003);
    for _ in 0..CASES {
        let param = rng.next_u32();
        let width = [2, 4, 8][rng.gen_range(0..3usize)];
        let dst = rng.gen_range(1..10u8);
        let hash = WidthHash::new(param, width);
        let graph = MonitoringGraph::extract(&program, &hash).expect("graph extracts");
        let mut monitor = HardwareMonitor::new(graph, hash);
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, dst], 64, b"x");
        let out = core.process_packet(&packet, &mut monitor);
        assert_eq!(out.halt, HaltReason::Completed);
    }
}

/// Graph serialization round-trips for arbitrary small programs built from
/// random (mostly invalid) words — the graph treats undecodable words as
/// data and must survive them.
#[test]
fn graph_serialization_round_trips_any_program() {
    let mut rng = StdRng::seed_from_u64(0x4D0_0004);
    for _ in 0..CASES {
        let words: Vec<u32> = (0..rng.gen_range(1..64usize))
            .map(|_| rng.next_u32())
            .collect();
        let param = rng.next_u32();
        let program = sdmmon_isa::asm::Program {
            base: 0,
            words,
            symbols: Default::default(),
        };
        let hash = MerkleTreeHash::new(param);
        let graph = MonitoringGraph::extract(&program, &hash).expect("graph extracts");
        let restored = MonitoringGraph::from_bytes(&graph.to_bytes()).expect("round trip");
        assert_eq!(restored, graph);
    }
}

/// Corrupting any single instruction of the binary is detected when that
/// instruction executes on the hot path — or at worst the run completes
/// with identical observable behaviour (a 4-bit hash collision AND
/// semantically harmless change). The monitor must never produce a *wrong
/// verdict silently while flagging nothing on a changed hash*.
#[test]
fn corruption_is_detected_or_collides() {
    let program = programs::ipv4_forward().expect("workload assembles");
    let mut rng = StdRng::seed_from_u64(0x4D0_0005);
    for _ in 0..CASES {
        let param = rng.next_u32();
        let word_index = rng.gen_range(0..program.words.len().min(40));
        let bit = rng.gen_range(0..32usize);
        let hash = MerkleTreeHash::with_compression(param, Compression::SBox);
        let graph = MonitoringGraph::extract(&program, &hash).expect("graph extracts");
        let mut monitor = HardwareMonitor::new(graph, hash);
        let mut core = Core::new();
        core.install(&program.to_bytes(), program.base);
        let addr = program.base + 4 * word_index as u32;
        let original = core.memory().load_u32(addr).expect("in range");
        let corrupted = original ^ (1 << bit);
        core.memory_mut()
            .store_u32(addr, corrupted)
            .expect("in range");
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"pp");
        let out = core.process_packet(&packet, &mut monitor);
        if out.halt == HaltReason::MonitorViolation {
            // Detected: fine. The hash of the corrupted word must indeed
            // differ... from at least the corrupted position's node
            // (otherwise the monitor had a real reason elsewhere).
            assert_eq!(monitor.stats().violations, 1);
        } else {
            // Not flagged: either the corrupted word never executed, or its
            // hash collided. In both cases the run must have ended in an
            // orderly way.
            assert!(matches!(
                out.halt,
                HaltReason::Completed | HaltReason::Fault(_) | HaltReason::StepLimit
            ));
        }
    }
}

/// Monitoring-graph structure is parameter-independent: only hashes change
/// with the parameter, never successor sets.
#[test]
fn graph_structure_is_parameter_independent() {
    let program = programs::vulnerable_forward().expect("workload assembles");
    let mut rng = StdRng::seed_from_u64(0x4D0_0006);
    for _ in 0..16 {
        let (a, b) = (rng.next_u32(), rng.next_u32());
        let ga = MonitoringGraph::extract(&program, &MerkleTreeHash::new(a)).expect("graph");
        let gb = MonitoringGraph::extract(&program, &MerkleTreeHash::new(b)).expect("graph");
        for (addr, node) in ga.iter() {
            assert_eq!(
                &node.successors,
                &gb.node(addr).expect("same shape").successors
            );
        }
    }
}

/// Deterministic: a graph extracted from one workload rejects execution of
/// a different workload almost immediately (cross-binary install guard).
#[test]
fn wrong_binary_graph_rejects_quickly() {
    let fwd = programs::ipv4_forward().unwrap();
    let cm = programs::ipv4_cm().unwrap();
    let hash = MerkleTreeHash::new(0x1122_3344);
    let graph_for_cm = MonitoringGraph::extract(&cm, &hash).unwrap();
    let mut monitor = HardwareMonitor::new(graph_for_cm, hash);
    let mut core = Core::new();
    core.install(&fwd.to_bytes(), fwd.base);
    let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"");
    let out = core.process_packet(&packet, &mut monitor);
    assert_eq!(out.halt, HaltReason::MonitorViolation);
    assert!(
        out.steps < 40,
        "mismatch found within a few instructions: {}",
        out.steps
    );
}

/// Deterministic: monitors survive tiny synthetic programs with odd shapes
/// (single instruction, all-data, immediate self-loop).
#[test]
fn degenerate_programs_are_handled() {
    for src in ["break 0", "spin: b spin", ".word 0xffffffff"] {
        let program = Assembler::new().assemble(src).unwrap();
        let hash = MerkleTreeHash::new(9);
        let graph = MonitoringGraph::extract(&program, &hash).unwrap();
        assert_eq!(graph.len(), program.words.len(), "{src}");
        let block_graph = BlockGraph::extract(&program, &hash).unwrap();
        assert!(!block_graph.is_empty(), "{src}");
    }
}
