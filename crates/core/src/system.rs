//! Full-system flows: secure deployment over the network, router fleets,
//! and the homogeneity (SR2) experiment.
//!
//! The fleet experiment reproduces the paper's core argument against
//! monitoring-system homogeneity: an attacker who — by brute force or
//! device compromise — finds an instruction sequence whose hashes evade
//! *one* router's monitor gains nothing against any other router, because
//! every router runs a different secret hash parameter.
//! [`craft_evasive_hijack`] plays the attacker: given one router's
//! parameter, it searches for a hash-colliding attack packet; the bench
//! harness then shows that packet failing across the rest of the fleet.

use crate::entities::{InstallReport, Manufacturer, NetworkOperator, RouterDevice};
use crate::package::InstallationBundle;
use crate::SdmmonError;
use sdmmon_isa::asm::Program;
use sdmmon_monitor::hash::Compression;
use sdmmon_monitor::{HardwareMonitor, MerkleTreeHash, MonitoringGraph};
use sdmmon_net::channel::{Channel, FileServer};
use sdmmon_net::download::{DownloadClient, DownloadError, RetryPolicy};
use sdmmon_net::resilience::{FlakyServer, LossyChannel};
use sdmmon_npu::core::Core;
use sdmmon_npu::engine::{shard_spans, WorkerPool};
use sdmmon_npu::programs::testing::hijack_packet;
use sdmmon_npu::runtime::{HaltReason, PacketOutcome, Verdict};
use sdmmon_npu::supervisor::SupervisorPolicy;
use sdmmon_obs::{metrics, Counter, Event, EventBus};
use sdmmon_rng::{RngCore, SeedableRng};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// The process-wide control-plane worker pool, spawned on first use and
/// reused by every subsequent deployment. The PR 1 `Fleet::deploy` spawned
/// one scoped OS thread per router per call; fleets are deployed repeatedly
/// (redeploys, the healing loop, benches), so the spawn/join churn was pure
/// overhead. Guarded by a mutex because [`WorkerPool`]'s completion
/// channels are single-consumer; concurrent deploys simply take turns.
fn deploy_pool() -> &'static Mutex<WorkerPool> {
    static POOL: OnceLock<Mutex<WorkerPool>> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 8);
        Mutex::new(WorkerPool::new(workers))
    })
}

/// Runs `task(i)` for every index over the persistent deploy pool and
/// writes each result into its own slot: contiguous index chunks, one per
/// worker, merged **by index** — so the outcome is independent of worker
/// scheduling and byte-identical to a serial loop whenever `task` is a
/// pure function of its index.
fn run_indexed<T, F>(slots: &mut [Option<T>], task: F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if slots.is_empty() {
        return;
    }
    let pool = deploy_pool().lock().unwrap_or_else(|e| e.into_inner());
    let spans = shard_spans(slots.len(), pool.len().min(slots.len()));
    let task = &task;
    let mut rest: &mut [Option<T>] = slots;
    let mut consumed = 0;
    let mut jobs: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(pool.len());
    for span in &spans {
        let (chunk, tail) = rest.split_at_mut(span.end - consumed);
        rest = tail;
        consumed = span.end;
        let start = span.start;
        jobs.push(Box::new(move || {
            for (offset, slot) in chunk.iter_mut().enumerate() {
                *slot = Some(task(start + offset));
            }
        }));
    }
    // Fewer chunks than workers: pad with no-ops (run_batch is 1:1).
    while jobs.len() < pool.len() {
        jobs.push(Box::new(|| {}));
    }
    pool.run_batch(jobs);
}

/// Outcome of a complete deployment (download + install).
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentReport {
    /// Modelled download duration over the channel.
    pub download_time: Duration,
    /// The control-processor installation report.
    pub install: InstallReport,
}

impl DeploymentReport {
    /// Total modelled wall-clock of the deployment (Table 2's "Total").
    pub fn total_time(&self) -> Duration {
        self.download_time + self.install.timing.total()
    }
}

/// Runs the paper's end-to-end flow for one router: the operator prepares
/// and publishes a bundle on its file server, the router downloads it over
/// `channel` and performs the secure installation on `cores`.
///
/// # Errors
///
/// Propagates packaging, download, and verification failures; nothing is
/// installed if any step fails.
pub fn deploy<R: RngCore + ?Sized>(
    operator: &NetworkOperator,
    program: &Program,
    router: &mut RouterDevice,
    cores: &[usize],
    server: &mut FileServer,
    channel: &Channel,
    rng: &mut R,
) -> Result<DeploymentReport, SdmmonError> {
    let bundle = operator.prepare_package(program, router.public_key(), rng)?;
    let path = format!("pkg/{}.sdmmon", router.name());
    server.publish(path.clone(), bundle.to_bytes());
    let (bytes, download_time) = server
        .fetch(&path, channel)
        .map_err(|e| SdmmonError::Download(e.to_string()))?;
    let bundle = InstallationBundle::from_bytes(&bytes)
        .map_err(|e| SdmmonError::MalformedPackage(e.to_string()))?;
    let install = router.install_bundle(&bundle, cores)?;
    Ok(DeploymentReport {
        download_time,
        install,
    })
}

/// A fleet of identical routers running the same binary — the homogeneity
/// scenario of the paper's introduction — each with its own secret hash
/// parameter thanks to per-router packages.
#[derive(Debug)]
pub struct Fleet {
    routers: Vec<RouterDevice>,
    reports: Vec<InstallReport>,
}

impl Fleet {
    /// Provisions `count` routers from `manufacturer`, then securely
    /// installs `program` on all cores of each via `operator`. Every
    /// router receives a freshly parameterized package.
    ///
    /// Per-router work (RSA key generation, graph extraction, packaging,
    /// installation) is fanned out over the persistent process-wide deploy
    /// pool ([`deploy_pool`]) — the PR 1 implementation spawned and joined
    /// one OS thread per router on every call. Determinism is preserved by
    /// construction: a single master seed is drawn from `rng`, router `i`
    /// derives its own seed as `split_seed(master, i)` and its package
    /// sequence from a block reserved up front, and results merge by router
    /// index, so the result is byte-identical to [`Fleet::deploy_serial`]
    /// regardless of worker scheduling.
    ///
    /// # Errors
    ///
    /// Propagates provisioning and installation failures.
    pub fn deploy<R: RngCore + ?Sized>(
        manufacturer: &Manufacturer,
        operator: &NetworkOperator,
        program: &Program,
        count: usize,
        cores_each: usize,
        key_bits: usize,
        rng: &mut R,
    ) -> Result<Fleet, SdmmonError> {
        let master = rng.next_u64();
        let first_seq = operator.reserve_sequences(count as u64);
        let mut slots: Vec<Option<Result<(RouterDevice, InstallReport), SdmmonError>>> =
            (0..count).map(|_| None).collect();
        run_indexed(&mut slots, |i| {
            deploy_one(
                manufacturer,
                operator,
                program,
                i,
                cores_each,
                key_bits,
                sdmmon_rng::split_seed(master, i as u64),
                first_seq + i as u64,
            )
        });
        Fleet::collect(slots.into_iter().map(|s| s.expect("pool ran every job")))
    }

    /// The serial reference implementation of [`Fleet::deploy`]: identical
    /// seed and sequence derivation, one router at a time. Exists so the
    /// parallel path can be differentially tested (and benchmarked)
    /// against it.
    ///
    /// # Errors
    ///
    /// Propagates provisioning and installation failures.
    pub fn deploy_serial<R: RngCore + ?Sized>(
        manufacturer: &Manufacturer,
        operator: &NetworkOperator,
        program: &Program,
        count: usize,
        cores_each: usize,
        key_bits: usize,
        rng: &mut R,
    ) -> Result<Fleet, SdmmonError> {
        let master = rng.next_u64();
        let first_seq = operator.reserve_sequences(count as u64);
        Fleet::collect((0..count).map(|i| {
            deploy_one(
                manufacturer,
                operator,
                program,
                i,
                cores_each,
                key_bits,
                sdmmon_rng::split_seed(master, i as u64),
                first_seq + i as u64,
            )
        }))
    }

    fn collect(
        results: impl Iterator<Item = Result<(RouterDevice, InstallReport), SdmmonError>>,
    ) -> Result<Fleet, SdmmonError> {
        let mut routers = Vec::new();
        let mut reports = Vec::new();
        for result in results {
            let (router, report) = result?;
            routers.push(router);
            reports.push(report);
        }
        Ok(Fleet { routers, reports })
    }

    /// The deployed routers.
    pub fn routers(&self) -> &[RouterDevice] {
        &self.routers
    }

    /// Per-router installation reports, in router order.
    pub fn reports(&self) -> &[InstallReport] {
        &self.reports
    }

    /// Mutable access (for processing traffic).
    pub fn routers_mut(&mut self) -> &mut [RouterDevice] {
        &mut self.routers
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.routers.len()
    }

    /// True when the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.routers.is_empty()
    }

    /// Sends the same packet to core 0 of every router (the paper's
    /// Internet-scale attack scenario), returning the per-router outcomes.
    pub fn broadcast(&mut self, packet: &[u8]) -> Vec<PacketOutcome> {
        self.routers
            .iter_mut()
            .map(|r| r.process_on(0, packet))
            .collect()
    }
}

/// Knobs of [`Fleet::deploy_resilient`].
#[derive(Debug, Clone)]
pub struct ResilientConfig {
    /// Fault model of the link between the operator's server and every
    /// router (loss / corruption / stall probabilities).
    pub link: LossyChannel,
    /// Per-download transport retry policy (attempt budget, backoff,
    /// chunking).
    pub retry: RetryPolicy,
    /// Full download + verify + install cycles per router before the
    /// deployment gives up and quarantines it.
    pub max_deploy_attempts: u32,
    /// Supervisor policy installed on every successfully deployed router
    /// (the runtime half of the healing loop).
    pub supervisor: SupervisorPolicy,
}

impl Default for ResilientConfig {
    fn default() -> ResilientConfig {
        ResilientConfig {
            link: LossyChannel::clean(Channel::paper_testbed()),
            retry: RetryPolicy::default(),
            max_deploy_attempts: 3,
            supervisor: SupervisorPolicy::default(),
        }
    }
}

/// Where a router's deployment state machine ended up
/// (pending → downloading → verifying → installed | quarantined).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeployPhase {
    /// Every reachable router finishes here.
    Installed,
    /// The attempt budget ran out; the router is excluded from the fleet.
    Quarantined,
}

/// Per-router record of one resilient deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterDeployment {
    /// Router name (`router-<i>`).
    pub router: String,
    /// Terminal state of the deployment state machine.
    pub phase: DeployPhase,
    /// Download + verify + install cycles spent (1 = first try worked).
    pub deploy_attempts: u32,
    /// Transport attempts across all download cycles.
    pub transport_attempts: u32,
    /// Modelled time on the wire across all cycles.
    pub transfer_time: Duration,
    /// Modelled backoff time across all cycles.
    pub backoff_time: Duration,
    /// Whole-file restarts forced by the transport integrity re-check.
    pub integrity_restarts: u32,
    /// The last error, for quarantined routers.
    pub error: Option<String>,
}

impl RouterDeployment {
    /// Total modelled wall-clock the transport layer spent on this router.
    pub fn network_time(&self) -> Duration {
        self.transfer_time + self.backoff_time
    }
}

/// Result of [`Fleet::deploy_resilient`]: the routers that made it, plus a
/// deployment record for *every* requested router (partial-fleet success).
#[derive(Debug)]
pub struct ResilientFleet {
    /// The successfully deployed routers (quarantined ones are excluded).
    pub fleet: Fleet,
    /// One record per requested router, in router order — including the
    /// quarantined ones.
    pub deployments: Vec<RouterDeployment>,
}

impl ResilientFleet {
    /// Routers that reached `Installed`.
    pub fn installed(&self) -> usize {
        self.deployments
            .iter()
            .filter(|d| d.phase == DeployPhase::Installed)
            .count()
    }

    /// Routers that ended `Quarantined`.
    pub fn quarantined(&self) -> usize {
        self.deployments.len() - self.installed()
    }
}

impl Fleet {
    /// Deploys a fleet over a *faulty* transport, driving each router's
    /// deployment state machine (pending → downloading → verifying →
    /// installed | quarantined) to a terminal state:
    ///
    /// * each cycle prepares a **fresh** bundle (new sequence, parameter,
    ///   and keys — a re-download of a stale bundle would be rejected as a
    ///   replay), publishes it on `server`, and downloads it through
    ///   `config.link` with the retrying, resuming
    ///   [`DownloadClient`];
    /// * verification failures (a corrupted transfer that slipped past the
    ///   transport checksum, a stale sequence) roll back atomically —
    ///   [`RouterDevice::install_bundle`] programs nothing on any error —
    ///   and burn one of the router's `max_deploy_attempts` cycles;
    /// * a router whose budget runs out is **quarantined**: recorded in
    ///   [`ResilientFleet::deployments`] but excluded from the returned
    ///   fleet, without failing the routers that did deploy
    ///   (partial-fleet success);
    /// * every deployed router gets `config.supervisor` installed, so the
    ///   runtime half of the healing loop (redeploy/quarantine ladder,
    ///   degraded dispatch) is armed.
    ///
    /// Deployment overlaps the expensive per-router provisioning (RSA key
    /// generation) across the persistent deploy pool, then drives the
    /// download/verify/install cycles **serially in router-index order**:
    /// the flaky server's fault clock is attempt-ordered shared state, so
    /// every server interaction must happen in one deterministic sequence.
    /// Each router's RNG state flows from its provisioning job into its
    /// install cycles, and results merge by router index, so the outcome
    /// is byte-identical to a fully serial deployment: a given (rng,
    /// server-seed, config) triple replays byte-identically.
    ///
    /// # Errors
    ///
    /// Returns an error only for *systemic* failures (provisioning or
    /// packaging — e.g. a missing operator certificate). Transport and
    /// verification failures never error; they end in quarantine records.
    #[allow(clippy::too_many_arguments)]
    pub fn deploy_resilient<R: RngCore + ?Sized>(
        manufacturer: &Manufacturer,
        operator: &NetworkOperator,
        program: &Program,
        count: usize,
        cores_each: usize,
        key_bits: usize,
        server: &mut FlakyServer,
        config: &ResilientConfig,
        rng: &mut R,
    ) -> Result<ResilientFleet, SdmmonError> {
        Fleet::deploy_resilient_observed(
            manufacturer,
            operator,
            program,
            count,
            cores_each,
            key_bits,
            server,
            config,
            rng,
            None,
        )
    }

    /// [`Fleet::deploy_resilient`] with an optional observability bus: when
    /// `bus` is attached, the serial download/install phase narrates each
    /// router's state machine as structured events — one `deploy.cycle` per
    /// download + verify + install cycle, the download attempt timeline via
    /// [`DownloadReport::to_events`](sdmmon_net::download::DownloadReport::to_events),
    /// `deploy.verify_failed` for rejected bundles, and a terminal
    /// `deploy.installed` or `deploy.quarantined`. Every event's logical
    /// clock is the flaky server's transport-attempt count (the fault
    /// clock), which the serial router-index ordering makes deterministic,
    /// so the stream replays byte-identically per (rng, server-seed,
    /// config). Fleet counters are recorded on the global metrics registry
    /// either way.
    #[allow(clippy::too_many_arguments)]
    pub fn deploy_resilient_observed<R: RngCore + ?Sized>(
        manufacturer: &Manufacturer,
        operator: &NetworkOperator,
        program: &Program,
        count: usize,
        cores_each: usize,
        key_bits: usize,
        server: &mut FlakyServer,
        config: &ResilientConfig,
        rng: &mut R,
        bus: Option<&EventBus>,
    ) -> Result<ResilientFleet, SdmmonError> {
        let master = rng.next_u64();
        let client = DownloadClient::new(config.retry);
        // Phase one — overlapped: provision every router (keygen dominates)
        // on the deploy pool. Each job seeds its own RNG from the split
        // master and hands the *advanced* RNG back, so phase two continues
        // the per-router stream exactly where a serial loop would be.
        type Provisioned = Result<(RouterDevice, sdmmon_rng::StdRng), SdmmonError>;
        let mut provisioned: Vec<Option<Provisioned>> = (0..count).map(|_| None).collect();
        run_indexed(&mut provisioned, |i| {
            let mut router_rng =
                sdmmon_rng::StdRng::seed_from_u64(sdmmon_rng::split_seed(master, i as u64));
            let router = manufacturer.provision_router(
                &format!("router-{i}"),
                cores_each,
                key_bits,
                &mut router_rng,
            )?;
            Ok((router, router_rng))
        });
        // Phase two — serial, router-index order: all interaction with the
        // shared fault clock (publish, download attempts) in one
        // deterministic sequence, merged by index.
        let mut routers = Vec::new();
        let mut reports = Vec::new();
        let mut deployments = Vec::with_capacity(count);
        for slot in provisioned {
            let (mut router, mut router_rng) = slot.expect("pool ran every job")?;
            let path = format!("pkg/{}.sdmmon", router.name());
            let cores: Vec<usize> = (0..cores_each).collect();
            let mut record = RouterDeployment {
                router: router.name().to_owned(),
                phase: DeployPhase::Quarantined,
                deploy_attempts: 0,
                transport_attempts: 0,
                transfer_time: Duration::ZERO,
                backoff_time: Duration::ZERO,
                integrity_restarts: 0,
                error: None,
            };
            let mut outcome = None;
            while record.deploy_attempts < config.max_deploy_attempts.max(1) {
                record.deploy_attempts += 1;
                metrics().inc(Counter::FleetDeployCycles);
                // The fault clock: every probe/fetch ticks it, and the
                // serial router order makes it a deterministic logical time.
                let clock0 = server.attempts();
                if let Some(bus) = bus {
                    bus.record(
                        Event::new("deploy.cycle", clock0)
                            .field("router", record.router.as_str())
                            .field("cycle", record.deploy_attempts),
                    );
                }
                // Pending → Downloading: fresh bundle every cycle.
                let bundle =
                    operator.prepare_package(program, router.public_key(), &mut router_rng)?;
                server.server_mut().publish(path.clone(), bundle.to_bytes());
                let download = match client.download(server, &path, &config.link, &mut router_rng) {
                    Ok(d) => d,
                    Err(e) => {
                        record.error = Some(e.to_string());
                        if let DownloadError::AttemptsExhausted { attempts, .. } = &e {
                            record.transport_attempts += attempts;
                        }
                        if let Some(bus) = bus {
                            bus.record(
                                Event::new("deploy.download_failed", server.attempts())
                                    .field("router", record.router.as_str())
                                    .field("cycle", record.deploy_attempts)
                                    .field("error", e.to_string()),
                            );
                        }
                        continue;
                    }
                };
                record.transport_attempts += download.attempts.len() as u32;
                record.transfer_time += download.transfer_time();
                record.backoff_time += download.backoff_time();
                record.integrity_restarts += download.integrity_restarts;
                if let Some(bus) = bus {
                    bus.extend(download.to_events(&record.router, clock0));
                }
                // Downloading → Verifying: parse + full SR1–SR4 install.
                let result = InstallationBundle::from_bytes(&download.bytes)
                    .map_err(|e| SdmmonError::MalformedPackage(e.to_string()))
                    .and_then(|b| router.install_bundle(&b, &cores));
                match result {
                    Ok(report) => {
                        outcome = Some(report);
                        break;
                    }
                    // Verifying → (rolled back) Pending: install_bundle is
                    // atomic, so the router is exactly as before the cycle.
                    Err(e) => {
                        if let Some(bus) = bus {
                            bus.record(
                                Event::new("deploy.verify_failed", server.attempts())
                                    .field("router", record.router.as_str())
                                    .field("cycle", record.deploy_attempts)
                                    .field("error", e.to_string()),
                            );
                        }
                        record.error = Some(e.to_string());
                    }
                }
            }
            match outcome {
                Some(report) => {
                    record.phase = DeployPhase::Installed;
                    record.error = None;
                    router.set_supervisor_policy(config.supervisor);
                    routers.push(router);
                    reports.push(report);
                    metrics().inc(Counter::FleetRoutersInstalled);
                }
                None => {
                    // Quarantined: dropped from the fleet, kept on record.
                    metrics().inc(Counter::FleetRoutersQuarantined);
                }
            }
            if let Some(bus) = bus {
                let kind = match record.phase {
                    DeployPhase::Installed => "deploy.installed",
                    DeployPhase::Quarantined => "deploy.quarantined",
                };
                let mut event = Event::new(kind, server.attempts())
                    .field("router", record.router.as_str())
                    .field("cycles", record.deploy_attempts)
                    .field("transport_attempts", record.transport_attempts)
                    .field("integrity_restarts", record.integrity_restarts);
                if let Some(error) = &record.error {
                    event = event.field("error", error.as_str());
                }
                bus.record(event);
            }
            deployments.push(record);
        }
        Ok(ResilientFleet {
            fleet: Fleet { routers, reports },
            deployments,
        })
    }
}

/// Provisions, packages, and installs one fleet router from its derived
/// seed and pre-assigned package sequence (see [`Fleet::deploy`]).
#[allow(clippy::too_many_arguments)]
fn deploy_one(
    manufacturer: &Manufacturer,
    operator: &NetworkOperator,
    program: &Program,
    index: usize,
    cores_each: usize,
    key_bits: usize,
    seed: u64,
    sequence: u64,
) -> Result<(RouterDevice, InstallReport), SdmmonError> {
    let mut rng = sdmmon_rng::StdRng::seed_from_u64(seed);
    let mut router = manufacturer.provision_router(
        &format!("router-{index}"),
        cores_each,
        key_bits,
        &mut rng,
    )?;
    let bundle =
        operator.prepare_package_with_sequence(program, router.public_key(), sequence, &mut rng)?;
    let cores: Vec<usize> = (0..cores_each).collect();
    let report = router.install_bundle(&bundle, &cores)?;
    Ok((router, report))
}

/// An attack packet crafted to evade one specific router's monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvasiveAttack {
    /// The crafted packet bytes.
    pub packet: Vec<u8>,
    /// The attacker-chosen output port the hijacked core forwards to.
    pub port: u32,
    /// Tunable padding instructions the search inserted.
    pub nop_layers: usize,
    /// Monitor simulations the search spent.
    pub search_runs: u64,
}

/// Maximum mimicry-path length (padding instructions) the attacker tries.
const MAX_LAYERS: usize = 48;

/// Plays the paper's AC2 attacker against a *known* hash parameter:
/// constructs a stack-smashing packet (against the vulnerable forwarder)
/// whose injected instructions all hash-collide with a valid
/// monitoring-graph path, so the hijack completes without a violation.
///
/// The attack is the mimicry the paper's security analysis describes: the
/// injected code must "match a predetermined sequence of hash values".
/// With the parameter in hand, the attacker picks a walk through the
/// monitoring graph — starting at the indirect-jump successor set active
/// when the hijacked `jr $ra` retires, ending at a node whose hash equals
/// the hash of the one *fixed* payload instruction (the verdict-writing
/// `sw $t5, -16($s0)`; `$s0` still holds the packet ABI base at hijack
/// time) — and then tunes a free 16-bit immediate in every padding
/// instruction (`ori $zero, $zero, immᵢ`, an architectural no-op) plus the
/// attacker port in `addiu $t5, $zero, port` so each injected instruction
/// hashes exactly to its path node. Without the parameter (every other
/// router in the fleet), each of those collisions is a 2⁻⁴ lottery —
/// which is the SR2 experiment.
///
/// Returns `None` when no suitable graph walk of bounded length
/// exists or an immediate cannot be tuned (possible for degenerate
/// compression functions).
///
/// # Panics
///
/// Panics if `program` does not contain the vulnerable forwarder's
/// indirect return (no `jr`-style instruction to hijack).
pub fn craft_evasive_hijack(
    program: &Program,
    hash_param: u32,
    compression: Compression,
) -> Option<EvasiveAttack> {
    use sdmmon_isa::{ControlFlow, Inst};
    use sdmmon_monitor::hash::InstructionHash;

    let hash = MerkleTreeHash::with_compression(hash_param, compression);
    let graph = MonitoringGraph::extract(program, &hash).expect("program has a graph");
    let mut runs = 0u64;

    // The candidate set right after the hijacked `jr $ra` is the graph's
    // indirect-target set: the return site after every linking call.
    let mut start: Vec<u32> = Vec::new();
    for (i, &word) in program.words.iter().enumerate() {
        let pc = program.base + 4 * i as u32;
        if let Ok(inst) = Inst::decode(word) {
            let linking = match inst.control_flow() {
                ControlFlow::Jump { linking, .. }
                | ControlFlow::Indirect { linking }
                | ControlFlow::Branch { linking, .. } => linking,
                ControlFlow::Sequential => false,
            };
            if linking {
                start.push(pc + 4);
            }
        }
    }
    assert!(
        !start.is_empty(),
        "no indirect return to hijack in this program"
    );

    // The final observed injected instruction is the verdict write
    // (`break 0` traps before it is ever observed by the monitor). Its
    // word is fixed once chosen, but the attacker has many semantically
    // equivalent encodings to pick from: store width (the runtime zeroes
    // the verdict word, so a half or byte store of the port suffices),
    // temp register, and base register ($s0 holds the packet ABI base,
    // $s1 the packet data base, at hijack time). Each encoding has its own
    // hash, so at least one is almost always reachable in the graph.
    let finals = final_store_candidates();

    // BFS over the monitoring graph, keeping per-level parent maps for
    // path reconstruction. parents[d] maps a node first reached at depth
    // d+1 to its predecessor at depth d.
    let mut frontiers: Vec<Vec<u32>> = vec![start.clone()];
    let mut parents: Vec<std::collections::BTreeMap<u32, u32>> = Vec::new();
    for _ in 0..MAX_LAYERS {
        let frontier = frontiers.last().expect("seeded with the start set");
        let mut next: Vec<u32> = Vec::new();
        let mut level = std::collections::BTreeMap::new();
        for &node in frontier {
            let Some(n) = graph.node(node) else { continue };
            for &s in &n.successors {
                if let std::collections::btree_map::Entry::Vacant(e) = level.entry(s) {
                    e.insert(node);
                    next.push(s);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        parents.push(level);
        frontiers.push(next);
    }

    // The run ends with `break 0`, which also retires and is observed, so
    // the walk needs one more hop: a successor of the store's node whose
    // hash equals the break word's hash.
    let break_hash = hash.hash(Inst::Break { code: 0 }.encode());

    // Pick the shallowest goal over all final-store encodings: a node at
    // depth >= 1 (leaving room for the addiu hop) whose hash equals the
    // candidate store's hash and that can be followed by a break-hash node.
    let mut goal: Option<(usize, u32, &FinalStore)> = None;
    #[allow(clippy::needless_range_loop)] // `depth` is the BFS depth, not a mere index
    'outer: for depth in 1..frontiers.len() {
        for fin in &finals {
            let target_hash = hash.hash(fin.word);
            runs += 1;
            if let Some(&node) = frontiers[depth].iter().find(|&&n| {
                graph.node(n).is_some_and(|x| {
                    x.hash == target_hash
                        && x.successors
                            .iter()
                            .any(|&s| graph.node(s).map(|y| y.hash) == Some(break_hash))
                })
            }) {
                goal = Some((depth, node, fin));
                break 'outer;
            }
        }
    }
    let (depth, goal_node, fin) = goal?;

    // Reconstruct the walk: path[0] ∈ start, …, path[depth] = goal_node.
    let mut path = vec![goal_node];
    let mut cur = goal_node;
    for level in (0..depth).rev() {
        cur = parents[level][&cur];
        path.push(cur);
    }
    path.reverse();

    // Tune each injected instruction to its path node's hash. The walk has
    // depth+1 nodes: nodes 0..=depth-2 are matched by tunable `ori` nops,
    // node depth-1 by the tunable `addiu`, node depth by the final store.
    let node_hash = |addr: u32| graph.node(addr).expect("path stays in graph").hash;
    let mut imms: Vec<u16> = Vec::with_capacity(depth.saturating_sub(1));
    for &node in &path[..depth - 1] {
        let want = node_hash(node);
        let imm = (0..=u16::MAX).find(|&imm| {
            runs += 1;
            hash.hash(
                Inst::Ori {
                    rt: sdmmon_isa::Reg::ZERO,
                    rs: sdmmon_isa::Reg::ZERO,
                    imm,
                }
                .encode(),
            ) == want
        })?;
        imms.push(imm);
    }
    let want_addiu = node_hash(path[depth - 1]);
    let port = (1..=fin.max_port).find(|&port| {
        runs += 1;
        hash.hash(
            Inst::Addiu {
                rt: fin.rt,
                rs: sdmmon_isa::Reg::ZERO,
                imm: port as i16,
            }
            .encode(),
        ) == want_addiu
    })?;

    // Build and verify the packet against a replica of the victim.
    let payload = evasive_payload(&imms, port, fin);
    let packet = hijack_packet(&payload).expect("payload assembles");
    let mut core = Core::new();
    core.install(&program.to_bytes(), program.base);
    let mut monitor = HardwareMonitor::new(graph.clone(), hash);
    let out = core.process_packet(&packet, &mut monitor);
    runs += out.steps;
    if out.halt != HaltReason::Completed || out.verdict != Verdict::Forward(port as u32) {
        return None;
    }
    Some(EvasiveAttack {
        packet,
        port: port as u32,
        nop_layers: imms.len(),
        search_runs: runs,
    })
}

/// One way of writing the attacker's port into the verdict word.
#[derive(Debug, Clone)]
struct FinalStore {
    /// The exact instruction word the monitor will observe.
    word: u32,
    /// Assembly rendering with a `{}` placeholder-free form.
    asm: String,
    /// Register the port is staged in.
    rt: sdmmon_isa::Reg,
    /// Largest port value the store width can carry.
    max_port: u16,
}

/// Enumerates the semantically equivalent verdict writes available at
/// hijack time (see [`craft_evasive_hijack`]).
fn final_store_candidates() -> Vec<FinalStore> {
    use sdmmon_isa::{Inst, Reg};
    let temps = [
        Reg::T5,
        Reg::T0,
        Reg::T1,
        Reg::T2,
        Reg::T3,
        Reg::T4,
        Reg::T6,
        Reg::T7,
        Reg::T8,
        Reg::T9,
        Reg::V0,
        Reg::V1,
        Reg::AT,
    ];
    // (base register, offset of the verdict word relative to it)
    let bases = [(Reg::S0, -16i16), (Reg::S1, -20i16)];
    let mut out = Vec::new();
    for &(base, off) in &bases {
        for &rt in &temps {
            // Full-word store of the port.
            out.push(FinalStore {
                word: Inst::Sw {
                    rt,
                    base,
                    offset: off,
                }
                .encode(),
                asm: format!("sw {rt}, {off}({base})"),
                rt,
                max_port: i16::MAX as u16,
            });
            // The runtime zeroes the verdict slot before each run, so a
            // half-word store of the low half (big-endian: offset + 2) or a
            // byte store of the low byte (offset + 3) also sets it.
            out.push(FinalStore {
                word: Inst::Sh {
                    rt,
                    base,
                    offset: off + 2,
                }
                .encode(),
                asm: format!("sh {rt}, {}({base})", off + 2),
                rt,
                max_port: i16::MAX as u16,
            });
            out.push(FinalStore {
                word: Inst::Sb {
                    rt,
                    base,
                    offset: off + 3,
                }
                .encode(),
                asm: format!("sb {rt}, {}({base})", off + 3),
                rt,
                max_port: 255,
            });
        }
    }
    out
}

/// Renders the tunable attack payload (see [`craft_evasive_hijack`]).
fn evasive_payload(imms: &[u16], port: u16, fin: &FinalStore) -> String {
    use std::fmt::Write;
    let mut asm = String::new();
    for imm in imms {
        // Writes to $zero are architectural no-ops with 16 free bits.
        let _ = writeln!(asm, "ori $zero, $zero, 0x{imm:x}");
    }
    // Stage the port, write the verdict, halt. At hijack time $s0 still
    // holds PKT_LEN_ADDR and $s1 the packet data base.
    let _ = writeln!(asm, "addiu {}, $zero, {port}", fin.rt);
    let _ = writeln!(asm, "{}", fin.asm);
    let _ = writeln!(asm, "break 0");
    asm
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdmmon_npu::programs::{self, testing};
    use sdmmon_rng::SeedableRng;

    const KEY_BITS: usize = 512;

    fn setup(seed: u64) -> (Manufacturer, NetworkOperator, sdmmon_rng::StdRng) {
        let mut rng = sdmmon_rng::StdRng::seed_from_u64(seed);
        let manufacturer = Manufacturer::new("acme", KEY_BITS, &mut rng).unwrap();
        let mut operator = NetworkOperator::new("op", KEY_BITS, &mut rng).unwrap();
        operator.accept_certificate(manufacturer.certify_operator(operator.public_key(), "op"));
        (manufacturer, operator, rng)
    }

    #[test]
    fn deploy_over_file_server() {
        let (manufacturer, operator, mut rng) = setup(11);
        let mut router = manufacturer
            .provision_router("r", 2, KEY_BITS, &mut rng)
            .unwrap();
        let program = programs::ipv4_forward().unwrap();
        let mut server = FileServer::new();
        let channel = Channel::paper_testbed();
        let report = deploy(
            &operator,
            &program,
            &mut router,
            &[0, 1],
            &mut server,
            &channel,
            &mut rng,
        )
        .unwrap();
        assert!(report.download_time > Duration::ZERO);
        assert!(report.total_time() > report.download_time);
        assert_eq!(server.fetches(), 1);
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 4], 64, b"");
        let (_, out) = router.process(&packet);
        assert_eq!(out.verdict, Verdict::Forward(4));
    }

    #[test]
    fn fleet_routers_have_distinct_parameters() {
        let (manufacturer, operator, mut rng) = setup(12);
        let program = programs::ipv4_forward().unwrap();
        let fleet =
            Fleet::deploy(&manufacturer, &operator, &program, 5, 1, KEY_BITS, &mut rng).unwrap();
        assert_eq!(fleet.len(), 5);
        let params: Vec<u32> = fleet
            .routers()
            .iter()
            .map(|r| r.installed(0).unwrap().hash_param)
            .collect();
        let mut unique = params.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(
            unique.len(),
            params.len(),
            "SR2: parameters must differ: {params:?}"
        );
    }

    #[test]
    fn fleet_forwards_normal_traffic() {
        let (manufacturer, operator, mut rng) = setup(13);
        let program = programs::ipv4_forward().unwrap();
        let mut fleet =
            Fleet::deploy(&manufacturer, &operator, &program, 3, 1, KEY_BITS, &mut rng).unwrap();
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 7], 64, b"");
        for out in fleet.broadcast(&packet) {
            assert_eq!(out.verdict, Verdict::Forward(7));
        }
    }

    #[test]
    fn parallel_deploy_is_bit_identical_to_serial() {
        // Two identically seeded worlds: one deployed in parallel, one
        // serially. Thread scheduling must not leak into any observable
        // output — router identity, key material, hash parameters, or the
        // install reports.
        let program = programs::ipv4_forward().unwrap();
        let (m_par, o_par, mut rng_par) = setup(16);
        let (m_ser, o_ser, mut rng_ser) = setup(16);
        let parallel =
            Fleet::deploy(&m_par, &o_par, &program, 4, 2, KEY_BITS, &mut rng_par).unwrap();
        let serial =
            Fleet::deploy_serial(&m_ser, &o_ser, &program, 4, 2, KEY_BITS, &mut rng_ser).unwrap();

        assert_eq!(parallel.len(), serial.len());
        assert_eq!(parallel.reports(), serial.reports());
        for (a, b) in parallel.routers().iter().zip(serial.routers()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(
                a.public_key().modulus_bytes(),
                b.public_key().modulus_bytes()
            );
            assert_eq!(a.installed(0), b.installed(0));
            assert_eq!(a.installed(1), b.installed(1));
        }
        // Both deployments leave the caller's rng in the same state.
        assert_eq!(rng_par.next_u64(), rng_ser.next_u64());
    }

    fn hostile_world() -> (FlakyServer, ResilientConfig) {
        // Lossy, corrupting, stalling link; one five-attempt server outage
        // early on; router-2's package path is blackholed (unreachable).
        let mut server = FlakyServer::new(FileServer::new(), 0xf1ee7);
        server.schedule_outage(sdmmon_net::resilience::OutageWindow { from: 2, len: 5 });
        server.blackhole("pkg/router-2.sdmmon");
        let config = ResilientConfig {
            link: LossyChannel::clean(Channel::ideal_gigabit())
                .with_loss(0.2)
                .with_corrupt(0.05)
                .with_stall(0.05),
            retry: RetryPolicy::default()
                .with_chunk_bytes(16 * 1024)
                .with_max_attempts(60),
            max_deploy_attempts: 3,
            supervisor: SupervisorPolicy::default(),
        };
        (server, config)
    }

    fn resilient_run(seed: u64) -> (ResilientFleet, u64) {
        let (manufacturer, operator, mut rng) = setup(seed);
        let (mut server, config) = hostile_world();
        let program = programs::ipv4_forward().unwrap();
        let result = Fleet::deploy_resilient(
            &manufacturer,
            &operator,
            &program,
            4,
            2,
            KEY_BITS,
            &mut server,
            &config,
            &mut rng,
        )
        .unwrap();
        (result, server.stats().attempts)
    }

    #[test]
    fn resilient_deploy_converges_under_faults() {
        // The acceptance-criteria scenario: seeded loss + corruption +
        // stalls + one server outage + one unreachable router. Every
        // reachable router must install; only the unreachable one may be
        // quarantined.
        let (result, _) = resilient_run(17);
        assert_eq!(result.deployments.len(), 4);
        assert_eq!(result.installed(), 3);
        assert_eq!(result.quarantined(), 1);
        assert_eq!(result.fleet.len(), 3);
        for (i, d) in result.deployments.iter().enumerate() {
            if i == 2 {
                assert_eq!(d.phase, DeployPhase::Quarantined, "{d:?}");
                assert!(d.error.is_some());
                assert_eq!(d.deploy_attempts, 3, "budget fully spent");
            } else {
                assert_eq!(d.phase, DeployPhase::Installed, "{d:?}");
                assert!(d.error.is_none());
                assert!(d.transport_attempts > 0);
            }
        }
        // Partial-fleet success: the survivors forward traffic and carry
        // distinct SR2 parameters.
        let mut fleet = result.fleet;
        let params: Vec<u32> = fleet
            .routers()
            .iter()
            .map(|r| r.installed(0).unwrap().hash_param)
            .collect();
        let mut unique = params.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), params.len(), "SR2 held: {params:?}");
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 6], 64, b"");
        for out in fleet.broadcast(&packet) {
            assert_eq!(out.verdict, Verdict::Forward(6));
        }

        // Degraded dispatch: quarantine core 0 of a deployed router and a
        // quarantined core never receives a packet again.
        let router = &mut fleet.routers_mut()[0];
        router.quarantine_core(0);
        assert_eq!(router.active_cores(), vec![1]);
        for _ in 0..8 {
            let (core, out) = router.process(&packet);
            assert_eq!(core, 1, "quarantined core 0 got a packet");
            assert_eq!(out.verdict, Verdict::Forward(6));
        }
        assert_eq!(router.stats().quarantined_cores, 1);
    }

    #[test]
    fn resilient_deploy_replays_byte_identically() {
        let (a, a_attempts) = resilient_run(17);
        let (b, b_attempts) = resilient_run(17);
        assert_eq!(a.deployments, b.deployments);
        assert_eq!(a.fleet.reports(), b.fleet.reports());
        assert_eq!(a_attempts, b_attempts, "same server-side fault clock");
        for (x, y) in a.fleet.routers().iter().zip(b.fleet.routers()) {
            assert_eq!(x.name(), y.name());
            assert_eq!(x.installed(0), y.installed(0));
            assert_eq!(
                x.public_key().modulus_bytes(),
                y.public_key().modulus_bytes()
            );
        }
        // A different seed takes a different path through the faults.
        let (c, _) = resilient_run(18);
        assert_ne!(
            a.deployments, c.deployments,
            "distinct seeds should differ somewhere in the timeline"
        );
    }

    #[test]
    fn clean_transport_deploys_first_try() {
        let (manufacturer, operator, mut rng) = setup(19);
        let mut server = FlakyServer::new(FileServer::new(), 9);
        let config = ResilientConfig::default();
        let program = programs::ipv4_forward().unwrap();
        let result = Fleet::deploy_resilient(
            &manufacturer,
            &operator,
            &program,
            3,
            1,
            KEY_BITS,
            &mut server,
            &config,
            &mut rng,
        )
        .unwrap();
        assert_eq!(result.installed(), 3);
        assert_eq!(result.quarantined(), 0);
        for d in &result.deployments {
            assert_eq!(d.deploy_attempts, 1, "no faults, no retries: {d:?}");
            assert_eq!(d.integrity_restarts, 0);
            assert_eq!(d.backoff_time, Duration::ZERO);
        }
    }

    #[test]
    fn evasive_attack_compromises_only_the_targeted_router() {
        // The SR2 experiment end to end: the attacker knows router 0's
        // parameter (AC2 / brute-force success) and crafts an evading
        // packet; the rest of the fleet still detects it.
        let (manufacturer, operator, mut rng) = setup(14);
        let program = programs::vulnerable_forward().unwrap();
        let mut fleet =
            Fleet::deploy(&manufacturer, &operator, &program, 4, 1, KEY_BITS, &mut rng).unwrap();
        let leaked_param = fleet.routers()[0].installed(0).unwrap().hash_param;

        let attack = craft_evasive_hijack(&program, leaked_param, Compression::SBox)
            .expect("search should find an evading packet for the leaked parameter");
        let outcomes = fleet.broadcast(&attack.packet);

        // Router 0 is silently compromised: the hijack completes and
        // forwards to the attacker's port.
        assert_eq!(outcomes[0].halt, HaltReason::Completed, "victim evaded");
        assert_eq!(outcomes[0].verdict, Verdict::Forward(attack.port));

        // The same packet against differently parameterized monitors must
        // be caught (each escape needs a fresh chain of 4-bit collisions).
        let detected = outcomes[1..]
            .iter()
            .filter(|o| o.halt == HaltReason::MonitorViolation)
            .count();
        assert!(
            detected >= 2,
            "at least 2 of 3 other routers detect; outcomes: {outcomes:?}"
        );
    }

    #[test]
    fn evasive_search_reports_effort() {
        let program = programs::vulnerable_forward().unwrap();
        let attack = craft_evasive_hijack(&program, 0x1234_5678, Compression::SBox).unwrap();
        assert!(attack.search_runs > 0);
        assert!(attack.port > 0);
    }

    #[test]
    fn paper_sum_compression_lets_attacks_transfer() {
        // The reproduction finding: with the paper's sum-mod-16 compression,
        // hash collisions are parameter-independent, so the evasive packet
        // crafted against one router compromises EVERY router. This is why
        // the protocol layer defaults to the S-box compression.
        let (manufacturer, mut operator, mut rng) = {
            let (m, mut o, r) = setup(15);
            o.set_compression(Compression::SumMod16);
            (m, o, r)
        };
        let _ = &mut operator;
        let program = programs::vulnerable_forward().unwrap();
        let mut fleet =
            Fleet::deploy(&manufacturer, &operator, &program, 4, 1, KEY_BITS, &mut rng).unwrap();
        let leaked = fleet.routers()[0].installed(0).unwrap().hash_param;
        let attack = craft_evasive_hijack(&program, leaked, Compression::SumMod16).unwrap();
        let outcomes = fleet.broadcast(&attack.packet);
        for (i, out) in outcomes.iter().enumerate() {
            assert_eq!(
                out.halt,
                HaltReason::Completed,
                "router {i} should be compromised under the linear compression"
            );
            assert_eq!(out.verdict, Verdict::Forward(attack.port));
        }
    }
}
