//! The SDMMon installation package and its encrypted transport bundle.
//!
//! Plaintext payload (paper §3.1, "at programming time"):
//! `binary ‖ monitoring graph ‖ 32-bit hash parameter`, plus the load
//! address our runtime needs. The payload is signed with the operator's
//! private key and encrypted under a fresh AES key; the AES key is RSA-
//! encrypted to one specific router.

use crate::cert::Certificate;
use crate::wire::{Reader, WireError, Writer};

/// Magic bytes of the plaintext package payload.
const PKG_MAGIC: &[u8; 4] = b"SDMP";

/// The plaintext installation payload.
///
/// # Examples
///
/// ```
/// use sdmmon_core::package::Package;
/// use sdmmon_monitor::hash::Compression;
///
/// let pkg = Package {
///     binary: vec![0x24, 0x08, 0x00, 0x05],
///     base: 0,
///     graph: vec![1, 2, 3],
///     hash_param: 0xdead_beef,
///     compression: Compression::SBox,
///     sequence: 1,
/// };
/// let restored = Package::from_bytes(&pkg.to_bytes()).unwrap();
/// assert_eq!(restored, pkg);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Package {
    /// The processing binary image.
    pub binary: Vec<u8>,
    /// Load address / entry point.
    pub base: u32,
    /// Serialized monitoring graph (see `sdmmon_monitor::graph`).
    pub graph: Vec<u8>,
    /// The router-specific secret hash parameter (SR2).
    pub hash_param: u32,
    /// Merkle-tree compression function the graph was extracted with.
    pub compression: sdmmon_monitor::hash::Compression,
    /// Monotonic anti-replay counter (reproduction extension: the paper's
    /// protocol accepts replays of old signed packages — e.g. a binary
    /// later found vulnerable — because nothing orders packages in time).
    pub sequence: u64,
}

impl Package {
    /// Serializes the payload (the bytes that get signed and encrypted).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(PKG_MAGIC);
        w.u32(self.base);
        w.bytes(&self.binary);
        w.bytes(&self.graph);
        w.u32(self.hash_param);
        w.u8(self.compression.to_id());
        w.u32((self.sequence >> 32) as u32);
        w.u32(self.sequence as u32);
        w.finish()
    }

    /// Parses a decrypted payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for bad magic, truncation, an unknown
    /// compression id, or trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Package, WireError> {
        let mut r = Reader::new(bytes);
        if r.bytes()? != PKG_MAGIC {
            return Err(WireError::new("bad package magic"));
        }
        let base = r.u32()?;
        let binary = r.bytes()?.to_vec();
        let graph = r.bytes()?.to_vec();
        let hash_param = r.u32()?;
        let compression = sdmmon_monitor::hash::Compression::from_id(r.u8()?)
            .ok_or_else(|| WireError::new("unknown compression id"))?;
        let sequence = ((r.u32()? as u64) << 32) | r.u32()? as u64;
        r.done()?;
        Ok(Package {
            binary,
            base,
            graph,
            hash_param,
            compression,
            sequence,
        })
    }
}

/// The encrypted, signed bundle that travels over the network:
/// `{ E_Ksym(package), E_K_R⁺(Ksym), Sig_K_O⁻(package), cert }` —
/// exactly the four elements Figure 2/3 of the paper transmit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstallationBundle {
    /// AES-CBC ciphertext of the package payload (IV-prefixed).
    pub ciphertext: Vec<u8>,
    /// The AES key, RSA-encrypted to the target router (SR4).
    pub wrapped_key: Vec<u8>,
    /// Operator signature over the *plaintext* payload (SR1).
    pub signature: Vec<u8>,
    /// The operator's manufacturer-issued certificate.
    pub certificate: Certificate,
}

impl InstallationBundle {
    /// Serializes for publication on the operator's file server.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&self.ciphertext);
        w.bytes(&self.wrapped_key);
        w.bytes(&self.signature);
        w.bytes(&self.certificate.to_bytes());
        w.finish()
    }

    /// Parses a downloaded bundle.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on any structural damage.
    pub fn from_bytes(bytes: &[u8]) -> Result<InstallationBundle, WireError> {
        let mut r = Reader::new(bytes);
        let ciphertext = r.bytes()?.to_vec();
        let wrapped_key = r.bytes()?.to_vec();
        let signature = r.bytes()?.to_vec();
        let certificate = Certificate::from_bytes(r.bytes()?)?;
        r.done()?;
        Ok(InstallationBundle {
            ciphertext,
            wrapped_key,
            signature,
            certificate,
        })
    }

    /// Total transport size in bytes (drives the download-time model).
    pub fn transport_size(&self) -> usize {
        self.to_bytes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdmmon_crypto::rsa::RsaKeyPair;
    use sdmmon_rng::SeedableRng;

    #[test]
    fn package_round_trip() {
        let pkg = Package {
            binary: (0..=255).collect(),
            base: 0x400,
            graph: vec![7; 100],
            hash_param: 42,
            compression: sdmmon_monitor::hash::Compression::SBox,
            sequence: u64::MAX - 1,
        };
        assert_eq!(Package::from_bytes(&pkg.to_bytes()).unwrap(), pkg);
    }

    #[test]
    fn package_rejects_garbage() {
        assert!(Package::from_bytes(b"").is_err());
        assert!(
            Package::from_bytes(b"\x00\x00\x00\x04XXXX").is_err(),
            "bad magic"
        );
        let pkg = Package {
            binary: vec![1],
            base: 0,
            graph: vec![],
            hash_param: 0,
            compression: sdmmon_monitor::hash::Compression::SumMod16,
            sequence: 0,
        };
        let mut bytes = pkg.to_bytes();
        bytes.pop();
        assert!(Package::from_bytes(&bytes).is_err());
        let mut bytes = pkg.to_bytes();
        bytes.push(9);
        assert!(Package::from_bytes(&bytes).is_err());
    }

    #[test]
    fn bundle_round_trip() {
        let mut rng = sdmmon_rng::StdRng::seed_from_u64(8);
        let keys = RsaKeyPair::generate(512, &mut rng).unwrap();
        let cert = crate::cert::Certificate::issue("op", &keys.public, &keys.private);
        let bundle = InstallationBundle {
            ciphertext: vec![1; 48],
            wrapped_key: vec![2; 64],
            signature: vec![3; 64],
            certificate: cert,
        };
        let restored = InstallationBundle::from_bytes(&bundle.to_bytes()).unwrap();
        assert_eq!(restored, bundle);
        assert_eq!(bundle.transport_size(), bundle.to_bytes().len());
    }
}
