//! # sdmmon-core — Secure Dynamic Multicore hardware Monitoring (SDMMon)
//!
//! The primary contribution of the DAC 2014 paper: a system-level security
//! architecture that lets network operators **dynamically and securely
//! install** processing binaries *and their monitoring graphs* on network
//! processors, while keeping a homogeneous router fleet diverse through
//! per-router hash parameters.
//!
//! Three entities cooperate (paper §2.2, Figure 3):
//!
//! * the [`entities::Manufacturer`] provisions each router with a key pair
//!   and its own public key (the root of trust), and certifies network
//!   operators;
//! * the [`entities::NetworkOperator`] prepares installation packages:
//!   binary ‖ monitoring graph ‖ random 32-bit hash parameter, signed with
//!   the operator's key, AES-encrypted under a fresh symmetric key that is
//!   itself RSA-encrypted to one specific router (SR4);
//! * the [`entities::RouterDevice`] downloads, decrypts, verifies, and
//!   programs its cores and monitors — rejecting anything tampered,
//!   replayed from another device, or signed by an uncertified party
//!   (SR1–SR4).
//!
//! Supporting modules: [`wire`] (the length-prefixed package encoding),
//! [`cert`] (certificates), [`package`] (payload format and bundles),
//! [`timing`] (the Nios II cycle model that regenerates Table 2), and
//! [`system`] (full secure-install flow plus fleet experiments for SR2).
//!
//! # Examples
//!
//! ```
//! use sdmmon_rng::SeedableRng;
//! use sdmmon_core::entities::{Manufacturer, NetworkOperator};
//! use sdmmon_npu::{programs, runtime::Verdict};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = sdmmon_rng::StdRng::seed_from_u64(1);
//! // Small keys keep doctests fast; the paper (and our defaults) use 2048.
//! let manufacturer = Manufacturer::new("acme-networks", 512, &mut rng)?;
//! let mut operator = NetworkOperator::new("backbone-op", 512, &mut rng)?;
//! operator.accept_certificate(
//!     manufacturer.certify_operator(operator.public_key(), "backbone-op"),
//! );
//! let mut router = manufacturer.provision_router("edge-router-1", 4, 512, &mut rng)?;
//!
//! let program = programs::ipv4_forward()?;
//! let bundle = operator.prepare_package(&program, router.public_key(), &mut rng)?;
//! let report = router.install_bundle(&bundle, &[0, 1, 2, 3])?;
//! assert!(report.package_bytes > 0);
//!
//! let packet = programs::testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"x");
//! let (_, outcome) = router.process(&packet);
//! assert_eq!(outcome.verdict, Verdict::Forward(2));
//! # Ok(())
//! # }
//! ```

pub mod cert;
pub mod distrib;
pub mod entities;
pub mod package;
pub mod system;
pub mod timing;
pub mod wire;
pub mod wire2;
pub mod workload;

use std::fmt;

/// Errors raised while preparing or installing SDMMon packages.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SdmmonError {
    /// A cryptographic operation failed (key generation, encryption).
    Crypto(sdmmon_crypto::CryptoError),
    /// The certificate chain to the manufacturer did not verify (SR1).
    CertificateInvalid,
    /// The operator has no manufacturer certificate yet.
    MissingCertificate,
    /// The symmetric key could not be unwrapped — the package was built
    /// for a different router (SR4) or corrupted in transit.
    WrongDevice,
    /// The package ciphertext failed to decrypt (SR3 envelope damaged).
    DecryptionFailed,
    /// The package signature did not verify against the certified operator
    /// key (SR1).
    SignatureInvalid,
    /// The decrypted payload is not a well-formed package.
    MalformedPackage(String),
    /// Monitoring-graph extraction failed.
    Graph(String),
    /// The bundle could not be downloaded from the operator's server.
    Download(String),
    /// The package's anti-replay sequence did not advance (reproduction
    /// extension — see `package::Package::sequence`).
    ReplayedPackage {
        /// Sequence carried by the rejected package.
        got: u64,
        /// Device's current high-water mark.
        latest: u64,
    },
    /// An install targeted a core index the device does not have. Checked
    /// up front so a bad core list can never abort an install halfway
    /// through programming (atomicity).
    NoSuchCore {
        /// The offending core index.
        core: usize,
        /// Number of cores the device has.
        cores: usize,
    },
}

impl fmt::Display for SdmmonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdmmonError::Crypto(e) => write!(f, "cryptographic failure: {e}"),
            SdmmonError::CertificateInvalid => write!(f, "operator certificate is invalid"),
            SdmmonError::MissingCertificate => {
                write!(f, "operator holds no manufacturer certificate")
            }
            SdmmonError::WrongDevice => {
                write!(
                    f,
                    "package symmetric key cannot be unwrapped by this device"
                )
            }
            SdmmonError::DecryptionFailed => write!(f, "package decryption failed"),
            SdmmonError::SignatureInvalid => write!(f, "package signature is invalid"),
            SdmmonError::MalformedPackage(why) => write!(f, "malformed package: {why}"),
            SdmmonError::Graph(why) => write!(f, "monitoring graph error: {why}"),
            SdmmonError::Download(why) => write!(f, "bundle download failed: {why}"),
            SdmmonError::ReplayedPackage { got, latest } => write!(
                f,
                "replayed package: sequence {got} does not advance past {latest}"
            ),
            SdmmonError::NoSuchCore { core, cores } => {
                write!(f, "no such core: {core} (device has {cores})")
            }
        }
    }
}

impl std::error::Error for SdmmonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SdmmonError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<sdmmon_crypto::CryptoError> for SdmmonError {
    fn from(e: sdmmon_crypto::CryptoError) -> SdmmonError {
        SdmmonError::Crypto(e)
    }
}
