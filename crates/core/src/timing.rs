//! The control-processor cycle model behind Table 2.
//!
//! The paper measures its security steps on a 100 MHz Nios II soft core
//! running uClinux and the OpenSSL toolkit. This reproduction executes the
//! same cryptographic algorithms natively (orders of magnitude faster), so
//! wall-clock timing is meaningless; instead, each step's cost is modelled
//! analytically from the algorithm's operation counts:
//!
//! * RSA: square-and-multiply modular exponentiation ⇒
//!   `≈1.5 · exponent_bits` modular multiplications, each
//!   `2 · (modulus_bits / 32)²` 32×32 limb multiplications (multiply +
//!   reduce) on the 32-bit soft core;
//! * AES and SHA-256: cycles-per-byte over the package;
//! * a fixed per-invocation overhead capturing uClinux process spawn,
//!   flash I/O, and OpenSSL key parsing — the reason the paper's
//!   certificate check costs 3.33 s even though an `e = 65537` RSA verify
//!   is only a handful of multiplications.
//!
//! The four constants below are calibrated **once** against the paper's
//! Table 2 (see DESIGN.md); every derived number — including how the table
//! scales with key size or package size — then follows from algorithm
//! structure, which is what the reproduced *shape* rests on.

use std::time::Duration;

/// Cost model of the Nios II/uClinux/OpenSSL control processor.
///
/// # Examples
///
/// ```
/// use sdmmon_core::timing::NiosCycleModel;
///
/// let model = NiosCycleModel::paper();
/// // The paper's "Decrypt AES key using router's private key" row: 8.74 s.
/// let t = model.rsa_private_op(2048).as_secs_f64();
/// assert!((8.0..9.5).contains(&t), "{t}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NiosCycleModel {
    /// Core clock in Hz (100 MHz on the DE4 prototype).
    pub clock_hz: f64,
    /// Fixed cycles per security-tool invocation (process spawn, key file
    /// parsing, flash I/O under uClinux).
    pub invocation_overhead_cycles: f64,
    /// Cycles per 32×32→64 multiply-accumulate in the bignum inner loop.
    pub cycles_per_limb_mult: f64,
    /// Cycles per byte of AES-CBC (software tables on a soft core).
    pub aes_cycles_per_byte: f64,
    /// Cycles per byte of SHA-256.
    pub sha256_cycles_per_byte: f64,
}

impl NiosCycleModel {
    /// The calibrated model of the paper's prototype.
    pub fn paper() -> NiosCycleModel {
        NiosCycleModel {
            clock_hz: 100e6,
            invocation_overhead_cycles: 3.2e8, // 3.2 s of uClinux/OpenSSL overhead
            cycles_per_limb_mult: 22.0,
            aes_cycles_per_byte: 566.0,
            sha256_cycles_per_byte: 80.0,
        }
    }

    /// A model of the same algorithms on a modern application processor
    /// (for the ablation: how much of Table 2 is the soft core's fault).
    pub fn modern_cpu() -> NiosCycleModel {
        NiosCycleModel {
            clock_hz: 3e9,
            invocation_overhead_cycles: 2e6,
            cycles_per_limb_mult: 1.0,
            aes_cycles_per_byte: 2.0,
            sha256_cycles_per_byte: 8.0,
        }
    }

    fn seconds(&self, cycles: f64) -> Duration {
        Duration::from_secs_f64(cycles / self.clock_hz)
    }

    /// Cycles of one modular multiplication at `modulus_bits`.
    fn modmul_cycles(&self, modulus_bits: usize) -> f64 {
        let limbs = (modulus_bits as f64 / 32.0).ceil();
        // Multiply (limbs²) plus reduction (≈ limbs²).
        2.0 * limbs * limbs * self.cycles_per_limb_mult
    }

    /// Time of an RSA private-key operation (full-size exponent).
    pub fn rsa_private_op(&self, modulus_bits: usize) -> Duration {
        let modmuls = 1.5 * modulus_bits as f64; // squarings + ~50% multiplies
        self.seconds(self.invocation_overhead_cycles + modmuls * self.modmul_cycles(modulus_bits))
    }

    /// Time of an RSA public-key operation with `e = 65537` (17 modular
    /// multiplications), *excluding* any hashing of the message.
    pub fn rsa_public_op(&self, modulus_bits: usize) -> Duration {
        self.seconds(self.invocation_overhead_cycles + 17.0 * self.modmul_cycles(modulus_bits))
    }

    /// Time to AES-decrypt (or encrypt) `bytes` of payload.
    pub fn aes_cbc(&self, bytes: usize) -> Duration {
        self.seconds(self.invocation_overhead_cycles + bytes as f64 * self.aes_cycles_per_byte)
    }

    /// Time to SHA-256 `bytes` of payload.
    pub fn sha256(&self, bytes: usize) -> Duration {
        self.seconds(bytes as f64 * self.sha256_cycles_per_byte)
    }

    /// Signature verification = hash the payload + one public-key op.
    pub fn verify_signature(&self, modulus_bits: usize, payload_bytes: usize) -> Duration {
        self.rsa_public_op(modulus_bits) + self.sha256(payload_bytes)
    }

    /// Certificate check = hash the (small) certificate + one public-key op.
    pub fn check_certificate(&self, modulus_bits: usize, cert_bytes: usize) -> Duration {
        self.rsa_public_op(modulus_bits) + self.sha256(cert_bytes)
    }
}

/// One row of the Table 2 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct StepTiming {
    /// Step description (mirrors the paper's wording).
    pub step: &'static str,
    /// Modelled duration.
    pub time: Duration,
}

/// The five security steps of Table 2 for a given package/certificate size
/// and download time.
///
/// `download` comes from the channel model (`sdmmon_net::channel`); the
/// remaining rows come from the cycle model.
pub fn table2_rows(
    model: &NiosCycleModel,
    modulus_bits: usize,
    package_bytes: usize,
    cert_bytes: usize,
    download: Duration,
) -> Vec<StepTiming> {
    vec![
        StepTiming {
            step: "Download data from FTP server",
            time: download,
        },
        StepTiming {
            step: "Check manufacturer certificate of network operator's public key",
            time: model.check_certificate(modulus_bits, cert_bytes),
        },
        StepTiming {
            step: "Decrypt AES key using router's private key",
            time: model.rsa_private_op(modulus_bits),
        },
        StepTiming {
            step: "Decrypt package with AES key",
            time: model.aes_cbc(package_bytes),
        },
        StepTiming {
            step: "Verify package signature with network operator's public key",
            time: model.verify_signature(modulus_bits, package_bytes),
        },
    ]
}

/// Sum of all rows (the paper's "Total").
pub fn table2_total(rows: &[StepTiming]) -> Duration {
    rows.iter().map(|r| r.time).sum()
}

/// Total without networking and certificate check (the paper's second
/// total: the cert is checked once at boot, and download time depends on
/// server location).
pub fn table2_total_no_net_no_cert(rows: &[StepTiming]) -> Duration {
    rows.iter()
        .filter(|r| !r.step.starts_with("Download") && !r.step.starts_with("Check"))
        .map(|r| r.time)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's package scale: a production IPv4+CM binary plus
    /// monitoring graph (~800 KiB with crypto envelope).
    const PAPER_PKG: usize = 800 * 1024;
    const PAPER_CERT: usize = 1024;

    #[test]
    fn paper_rows_reproduce_table2_within_tolerance() {
        let m = NiosCycleModel::paper();
        let rows = table2_rows(
            &m,
            2048,
            PAPER_PKG,
            PAPER_CERT,
            Duration::from_secs_f64(1.90),
        );
        let paper = [1.90f64, 3.33, 8.74, 7.73, 3.92];
        for (row, &expect) in rows.iter().zip(paper.iter()) {
            let got = row.time.as_secs_f64();
            let rel = (got - expect).abs() / expect;
            assert!(
                rel < 0.15,
                "{}: modelled {got:.2} s vs paper {expect:.2} s",
                row.step
            );
        }
        let total = table2_total(&rows).as_secs_f64();
        assert!((total - 25.62).abs() / 25.62 < 0.10, "total {total:.2}");
        let reduced = table2_total_no_net_no_cert(&rows).as_secs_f64();
        assert!(
            (18.0..22.0).contains(&reduced),
            "reduced total {reduced:.2}"
        );
    }

    #[test]
    fn ordering_matches_paper() {
        // The structural claim: RSA private > AES package decrypt >
        // signature verify ≥ certificate check > (typical) download.
        let m = NiosCycleModel::paper();
        let rows = table2_rows(
            &m,
            2048,
            PAPER_PKG,
            PAPER_CERT,
            Duration::from_secs_f64(1.9),
        );
        let t: Vec<f64> = rows.iter().map(|r| r.time.as_secs_f64()).collect();
        assert!(t[2] > t[3], "RSA private ({}) > AES ({})", t[2], t[3]);
        assert!(t[3] > t[4], "AES ({}) > verify ({})", t[3], t[4]);
        assert!(t[4] >= t[1], "verify ({}) >= cert ({})", t[4], t[1]);
        assert!(t[1] > t[0], "cert ({}) > download ({})", t[1], t[0]);
    }

    #[test]
    fn rsa_private_scales_cubically_with_key_size() {
        let m = NiosCycleModel::paper();
        let overhead = m.seconds(m.invocation_overhead_cycles).as_secs_f64();
        let t1024 = m.rsa_private_op(1024).as_secs_f64() - overhead;
        let t2048 = m.rsa_private_op(2048).as_secs_f64() - overhead;
        let ratio = t2048 / t1024;
        assert!(
            (7.0..9.0).contains(&ratio),
            "expected ≈8× for doubled key, got {ratio}"
        );
    }

    #[test]
    fn aes_scales_linearly_with_package() {
        let m = NiosCycleModel::paper();
        let overhead = m.seconds(m.invocation_overhead_cycles).as_secs_f64();
        let t1 = m.aes_cbc(100_000).as_secs_f64() - overhead;
        let t2 = m.aes_cbc(200_000).as_secs_f64() - overhead;
        assert!((t2 / t1 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn modern_cpu_is_orders_of_magnitude_faster() {
        let paper = NiosCycleModel::paper();
        let modern = NiosCycleModel::modern_cpu();
        let slow = paper.rsa_private_op(2048).as_secs_f64();
        let fast = modern.rsa_private_op(2048).as_secs_f64();
        assert!(slow / fast > 500.0, "{slow} vs {fast}");
    }

    #[test]
    fn public_op_is_much_cheaper_than_private() {
        let m = NiosCycleModel::paper();
        let overhead = m.seconds(m.invocation_overhead_cycles).as_secs_f64();
        let public = m.rsa_public_op(2048).as_secs_f64() - overhead;
        let private = m.rsa_private_op(2048).as_secs_f64() - overhead;
        assert!(private / public > 100.0);
    }
}
