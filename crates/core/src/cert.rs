//! Operator certificates: the manufacturer-anchored chain of trust.
//!
//! "At installation time ... the manufacturer provides a certificate that
//! contains (at least) the network operator's public key signed with the
//! manufacturer's private key. Using this certificate, the network
//! processor can establish a chain of trust to the network operator."
//! (paper §3.1)

use crate::wire::{Reader, WireError, Writer};
use sdmmon_crypto::rsa::{RsaPrivateKey, RsaPublicKey};

/// Domain-separation tag mixed into every certificate signature so a
/// certificate can never be confused with a package signature.
const CERT_CONTEXT: &[u8] = b"SDMMON-CERT-V1";

/// A certificate binding an operator name to an RSA public key, signed by
/// the router manufacturer.
///
/// # Examples
///
/// ```
/// use sdmmon_rng::SeedableRng;
/// use sdmmon_core::cert::Certificate;
/// use sdmmon_crypto::rsa::RsaKeyPair;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = sdmmon_rng::StdRng::seed_from_u64(5);
/// let manufacturer = RsaKeyPair::generate(512, &mut rng)?;
/// let operator = RsaKeyPair::generate(512, &mut rng)?;
///
/// let cert = Certificate::issue("backbone-op", &operator.public, &manufacturer.private);
/// assert!(cert.verify(&manufacturer.public));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    subject: String,
    subject_modulus: Vec<u8>,
    subject_exponent: Vec<u8>,
    signature: Vec<u8>,
}

impl Certificate {
    /// Issues a certificate over `(subject, subject_key)` signed with the
    /// manufacturer's private key.
    pub fn issue(
        subject: &str,
        subject_key: &RsaPublicKey,
        manufacturer_key: &RsaPrivateKey,
    ) -> Certificate {
        let subject_modulus = subject_key.modulus_bytes();
        let subject_exponent = subject_key.exponent_bytes();
        let tbs = Certificate::to_be_signed(subject, &subject_modulus, &subject_exponent);
        let signature = manufacturer_key.sign(&tbs);
        Certificate {
            subject: subject.to_owned(),
            subject_modulus,
            subject_exponent,
            signature,
        }
    }

    fn to_be_signed(subject: &str, modulus: &[u8], exponent: &[u8]) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(CERT_CONTEXT);
        w.string(subject);
        w.bytes(modulus);
        w.bytes(exponent);
        w.finish()
    }

    /// Checks the manufacturer signature.
    pub fn verify(&self, manufacturer_key: &RsaPublicKey) -> bool {
        let tbs =
            Certificate::to_be_signed(&self.subject, &self.subject_modulus, &self.subject_exponent);
        manufacturer_key.verify(&tbs, &self.signature)
    }

    /// The certified operator name.
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// Reconstructs the certified public key.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the embedded key material is
    /// structurally invalid.
    pub fn subject_key(&self) -> Result<RsaPublicKey, sdmmon_crypto::CryptoError> {
        RsaPublicKey::from_parts(&self.subject_modulus, &self.subject_exponent)
    }

    /// Serializes for transport inside installation bundles.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.string(&self.subject);
        w.bytes(&self.subject_modulus);
        w.bytes(&self.subject_exponent);
        w.bytes(&self.signature);
        w.finish()
    }

    /// Deserializes a certificate.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation or trailing data.
    pub fn from_bytes(bytes: &[u8]) -> Result<Certificate, WireError> {
        let mut r = Reader::new(bytes);
        let cert = Certificate {
            subject: r.string()?,
            subject_modulus: r.bytes()?.to_vec(),
            subject_exponent: r.bytes()?.to_vec(),
            signature: r.bytes()?.to_vec(),
        };
        r.done()?;
        Ok(cert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdmmon_crypto::rsa::RsaKeyPair;
    use sdmmon_rng::SeedableRng;

    fn keys(seed: u64) -> RsaKeyPair {
        RsaKeyPair::generate(512, &mut sdmmon_rng::StdRng::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn issue_verify_round_trip() {
        let m = keys(1);
        let op = keys(2);
        let cert = Certificate::issue("op-1", &op.public, &m.private);
        assert!(cert.verify(&m.public));
        assert_eq!(cert.subject(), "op-1");
        assert_eq!(cert.subject_key().unwrap(), op.public);
    }

    #[test]
    fn wrong_manufacturer_rejected() {
        let m = keys(1);
        let rogue = keys(3);
        let op = keys(2);
        let cert = Certificate::issue("op-1", &op.public, &rogue.private);
        assert!(
            !cert.verify(&m.public),
            "self-issued certificate must not verify"
        );
    }

    #[test]
    fn tampered_fields_rejected() {
        let m = keys(1);
        let op = keys(2);
        let eve = keys(4);
        let cert = Certificate::issue("op-1", &op.public, &m.private);

        let mut renamed = cert.clone();
        renamed.subject = "evil-op".into();
        assert!(!renamed.verify(&m.public));

        let mut swapped = cert.clone();
        swapped.subject_modulus = eve.public.modulus_bytes();
        assert!(
            !swapped.verify(&m.public),
            "key substitution must break the signature"
        );
    }

    #[test]
    fn serialization_round_trip() {
        let m = keys(1);
        let op = keys(2);
        let cert = Certificate::issue("op-1", &op.public, &m.private);
        let restored = Certificate::from_bytes(&cert.to_bytes()).unwrap();
        assert_eq!(restored, cert);
        assert!(restored.verify(&m.public));
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert!(Certificate::from_bytes(&[1, 2, 3]).is_err());
        let m = keys(1);
        let cert = Certificate::issue("x", &m.public, &m.private);
        let mut bytes = cert.to_bytes();
        bytes.push(0);
        assert!(Certificate::from_bytes(&bytes).is_err(), "trailing byte");
    }
}
