//! Length-prefixed binary encoding shared by certificates, packages, and
//! bundles.
//!
//! This *is* part of the reproduced system: the control processor parses
//! exactly these bytes after decryption. The format is deliberately simple:
//! big-endian fixed-width integers and `u32`-length-prefixed byte strings.

use std::fmt;

/// Error raised when decoding malformed wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What went wrong.
    pub reason: String,
}

impl WireError {
    pub(crate) fn new(reason: impl Into<String>) -> WireError {
        WireError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.reason)
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder.
///
/// # Examples
///
/// ```
/// use sdmmon_core::wire::{Reader, Writer};
///
/// let mut w = Writer::new();
/// w.u32(7);
/// w.bytes(b"abc");
/// let buf = w.finish();
///
/// let mut r = Reader::new(&buf);
/// assert_eq!(r.u32().unwrap(), 7);
/// assert_eq!(r.bytes().unwrap(), b"abc");
/// assert!(r.done().is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty encoder.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Appends a byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a `u32` length prefix followed by the bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Returns the encoded buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a decoder at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::new(format!(
                "need {n} bytes at offset {}, only {} available",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] when the buffer is exhausted.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] when fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation or invalid UTF-8.
    pub fn string(&mut self) -> Result<String, WireError> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::new("invalid UTF-8 string"))
    }

    /// Asserts that all input has been consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if trailing bytes remain (a tampering signal).
    pub fn done(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::new(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.u32(0xDEAD_BEEF);
        w.bytes(&[1, 2, 3]);
        w.string("SDMMon");
        w.bytes(b"");
        let buf = w.finish();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.string().unwrap(), "SDMMon");
        assert_eq!(r.bytes().unwrap(), b"");
        r.done().unwrap();
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new();
        w.bytes(&[9; 10]);
        let buf = w.finish();
        let mut r = Reader::new(&buf[..8]);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn length_prefix_beyond_buffer_detected() {
        let mut r = Reader::new(&[0xff, 0xff, 0xff, 0xff, 1, 2]);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.u8(1);
        let mut buf = w.finish();
        buf.push(0);
        let mut r = Reader::new(&buf);
        r.u8().unwrap();
        assert!(r.done().is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = Writer::new();
        w.bytes(&[0xff, 0xfe]);
        let buf = w.finish();
        assert!(Reader::new(&buf).string().is_err());
    }
}
