//! Hierarchical fleet distribution: operator → regional relays → routers.
//!
//! The PR 3 deploy path serves every router from the operator's single
//! file server and re-prepares a full bundle per router — at 10k routers
//! the operator's egress and RSA bill both scale O(routers). This module
//! is the fleet-scale control plane built on the shared-package split of
//! [`FleetUpdate`](crate::entities::FleetUpdate) and wire-format v2
//! ([`crate::wire2`]):
//!
//! * the operator prepares **one** update (one graph extraction, one
//!   signature, one section-encryption pass) and publishes the shared
//!   document — `cert` + `sig` + `ciph` sections — exactly once;
//! * each **relay** syncs the shared document from the origin over a
//!   faulty link and re-serves it to its routers, so the origin's
//!   shared-payload egress is O(relays), not O(routers);
//! * each **router** fetches the shared sections from its relay and its
//!   tiny wrapped-key document from the origin (the only O(routers)
//!   traffic), splices them into a [`BundleV2`], and runs the full SR1–SR4
//!   install ladder;
//! * per-section checksums make every fetch independently verifiable: a
//!   corrupted section re-fetches alone, and a [`SectionCache`] carries
//!   verified sections across retry cycles and across update versions
//!   (delta downloads).
//!
//! Everything is deterministic per seed: entity keys, the fault streams of
//! origin and relays, per-router rng, and the serial relay-then-router
//! order. The whole run replays byte-identically — report, events, and
//! quarantine accounting.
//!
//! Memory note: a simulated NP core owns 1 MiB of packet memory, so 10k
//! live routers would need ~10 GB. [`deploy_fleet`] therefore *streams*
//! routers — provision, install, record, drop — keeping O(1) routers
//! alive regardless of fleet size ([`FleetDeployConfig::keep_routers`]
//! retains a prefix for traffic-level assertions in tests).

use crate::entities::{FleetUpdate, Manufacturer, NetworkOperator, RouterDevice};
use crate::system::Fleet;
use crate::wire2::{BundleV2, Section, SectionTag, TlvBundle, HEADER_LEN, TABLE_ENTRY_LEN};
use crate::SdmmonError;
use sdmmon_crypto::rsa::{RsaKeyPair, RsaPublicKey};
use sdmmon_isa::asm::Program;
use sdmmon_net::channel::{Channel, FileServer};
use sdmmon_net::download::{DownloadClient, DownloadError, RetryPolicy};
use sdmmon_net::resilience::{FlakyServer, LossyChannel, OutageWindow};
use sdmmon_obs::trace::{self, TraceContext};
use sdmmon_obs::{metrics, Counter, Event, EventBus};
use sdmmon_rng::{split_seed, RngCore, SeedableRng, StdRng};
use std::collections::BTreeMap;

/// Key size of the manufacturer and operator. Signatures carry a SHA-256
/// DigestInfo, so the signing modulus must be ≥ 496 bits.
const AUTHORITY_KEY_BITS: usize = 512;
/// Path of the shared ciphertext document on origin and relays.
pub const SHARED_PATH: &str = "fleet/shared.sdb2";
/// Full document re-fetch rounds before a fetch gives up (each range
/// inside a round has its own bounded retry budget underneath).
const DOC_ROUNDS: u32 = 3;

/// Path of one router's wrapped-key document on the origin server.
pub fn key_path(router: usize) -> String {
    format!("fleet/key-{router}.sdb2")
}

/// A cache of verified sections keyed by `(tag, checksum, len)` — the
/// delta-download mechanism. Entries only ever hold bytes that matched
/// their table checksum, so a hit both skips the fetch and heals over a
/// tampered copy upstream; the cache cannot be poisoned by the transport.
#[derive(Debug, Clone, Default)]
pub struct SectionCache {
    map: BTreeMap<(u8, u64, usize), Vec<u8>>,
}

impl SectionCache {
    /// An empty cache.
    pub fn new() -> SectionCache {
        SectionCache::default()
    }

    /// Number of cached sections.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn get(&self, tag: SectionTag, checksum: u64, len: usize) -> Option<Vec<u8>> {
        self.map.get(&(tag.id(), checksum, len)).cloned()
    }

    fn put(&mut self, tag: SectionTag, checksum: u64, bytes: Vec<u8>) {
        self.map.insert((tag.id(), checksum, bytes.len()), bytes);
    }
}

/// Accounting of one [`fetch_document`] call (merged across rounds).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Transport attempts spent.
    pub attempts: u64,
    /// Sections fetched over the wire (cache misses).
    pub sections_fetched: u64,
    /// Sections served from the cache (delta hits).
    pub sections_reused: u64,
    /// Goodput: verified section payload bytes fetched over the wire
    /// (header and table bytes excluded).
    pub bytes_fetched: u64,
    /// Extra transport attempts per section index beyond the minimum chunk
    /// count — the corruption-localization witness: a damaged section
    /// shows up here alone.
    pub retries_by_section: Vec<u64>,
}

impl FetchStats {
    fn note_section(&mut self, idx: usize, extra: u64) {
        if self.retries_by_section.len() <= idx {
            self.retries_by_section.resize(idx + 1, 0);
        }
        self.retries_by_section[idx] += extra;
    }
}

/// Fetches a TLV document section by section: fixed header, checksummed
/// table, then each section independently — reusing `cache` hits and
/// verifying every miss against its table checksum. Corruption re-fetches
/// only the damaged section; an unchanged section is never re-downloaded.
///
/// # Errors
///
/// [`SdmmonError::Download`] when the path is unpublished or the bounded
/// round/attempt budget runs out (e.g. a persistently tampered section).
pub fn fetch_document<R: RngCore>(
    client: &DownloadClient,
    server: &mut FlakyServer,
    path: &str,
    link: &LossyChannel,
    cache: &mut SectionCache,
    rng: &mut R,
) -> Result<(Vec<Section>, FetchStats), SdmmonError> {
    let mut stats = FetchStats::default();
    let mut last = String::from("no rounds attempted");
    let fail = |path: &str, last: &str| SdmmonError::Download(format!("document {path}: {last}"));
    let finish_metrics = |stats: &FetchStats| {
        metrics().add(Counter::FleetSectionsFetched, stats.sections_fetched);
        metrics().add(Counter::FleetSectionsReused, stats.sections_reused);
    };
    for _round in 0..DOC_ROUNDS {
        // 1. Fixed header. No a-priori checksum exists for it — a corrupted
        // header fails magic/version/count validation (or the table check
        // below, via the table checksum it carries) and burns the round.
        let header = match client.download_range(server, path, 0, HEADER_LEN, None, link, rng) {
            Ok(r) => r,
            Err(DownloadError::NotFound { .. }) => {
                finish_metrics(&stats);
                return Err(fail(path, "not published"));
            }
            Err(e) => {
                stats.attempts += attempts_of(&e);
                last = e.to_string();
                continue;
            }
        };
        stats.attempts += header.attempts.len() as u64;
        let count = match TlvBundle::parse_header(&header.bytes) {
            Ok(c) => c,
            Err(e) => {
                last = e.to_string();
                continue;
            }
        };
        // 2. Section table, verified against the checksum the header
        // carries. A lying header makes this range unobtainable; the
        // bounded range budget burns and the round retries from scratch.
        let table_sum = u64::from_be_bytes(header.bytes[9..17].try_into().expect("8 bytes"));
        let table_len = count * TABLE_ENTRY_LEN;
        let table = match client.download_range(
            server,
            path,
            HEADER_LEN,
            table_len,
            Some(table_sum),
            link,
            rng,
        ) {
            Ok(r) => r,
            Err(DownloadError::NotFound { .. }) => {
                finish_metrics(&stats);
                return Err(fail(path, "not published"));
            }
            Err(e) => {
                stats.attempts += attempts_of(&e);
                last = e.to_string();
                continue;
            }
        };
        stats.attempts += table.attempts.len() as u64;
        let mut prefix = header.bytes.clone();
        prefix.extend_from_slice(&table.bytes);
        let entries = match TlvBundle::parse_table(&prefix) {
            Ok(e) => e,
            Err(e) => {
                last = e.to_string();
                continue;
            }
        };
        // 3. Each section independently: cache hit or verified ranged
        // fetch. Verified bytes enter the cache immediately, so a later
        // round (or a later cycle reusing this cache) skips them.
        let mut sections = Vec::with_capacity(entries.len());
        let mut round_failed = false;
        for (idx, e) in entries.iter().enumerate() {
            if let Some(bytes) = cache.get(e.tag, e.checksum, e.len) {
                stats.sections_reused += 1;
                stats.note_section(idx, 0);
                sections.push(Section::new(e.tag, bytes));
                continue;
            }
            match client.download_range(server, path, e.offset, e.len, Some(e.checksum), link, rng)
            {
                Ok(r) => {
                    stats.attempts += r.attempts.len() as u64;
                    stats.sections_fetched += 1;
                    stats.bytes_fetched += r.bytes.len() as u64;
                    // Attempts a clean fetch of this range needs.
                    let min = e.len.div_ceil(client.policy().chunk_bytes).max(1) as u64;
                    stats.note_section(idx, (r.attempts.len() as u64).saturating_sub(min));
                    cache.put(e.tag, e.checksum, r.bytes.clone());
                    sections.push(Section::new(e.tag, r.bytes));
                }
                Err(DownloadError::NotFound { .. }) => {
                    finish_metrics(&stats);
                    return Err(fail(path, "not published"));
                }
                Err(e2) => {
                    let spent = attempts_of(&e2);
                    stats.attempts += spent;
                    stats.note_section(idx, spent);
                    last = e2.to_string();
                    round_failed = true;
                    break;
                }
            }
        }
        if round_failed {
            continue;
        }
        finish_metrics(&stats);
        return Ok((sections, stats));
    }
    finish_metrics(&stats);
    Err(fail(path, &last))
}

fn attempts_of(e: &DownloadError) -> u64 {
    match e {
        DownloadError::AttemptsExhausted { attempts, .. } => u64::from(*attempts),
        DownloadError::NotFound { .. } => 0,
    }
}

/// Knobs of [`deploy_fleet`] — the fleet-scale deployment campaign.
#[derive(Debug, Clone)]
pub struct FleetDeployConfig {
    /// Fleet size.
    pub routers: usize,
    /// Regional relays between operator and routers (≥ 1 enforced).
    pub relays: usize,
    /// NP cores per router.
    pub cores_each: usize,
    /// Router device key size. The 16-byte package key plus 11 bytes of
    /// PKCS#1 padding needs a ≥ 216-bit modulus; 256 is the campaign
    /// default (small enough to generate in bulk, large enough to wrap).
    pub key_bits: usize,
    /// Distinct device key pairs generated up front; routers cycle through
    /// the pool (`min(routers, key_pool)`), bounding key-generation cost
    /// at fleet scale. Set `>= routers` for fully distinct keys.
    pub key_pool: usize,
    /// Fault model of every link (origin ↔ relay and relay ↔ router).
    pub link: LossyChannel,
    /// Per-range transport retry policy.
    pub retry: RetryPolicy,
    /// Full fetch + assemble + install cycles per router before quarantine.
    pub max_deploy_attempts: u32,
    /// Origin outage window (in origin fetch attempts), if any.
    pub outage: Option<OutageWindow>,
    /// Router index whose key document the origin blackholes — the
    /// deterministic quarantine fixture.
    pub blackhole_router: Option<usize>,
    /// Keep the first N installed routers alive in the report so tests can
    /// drive traffic through them; everything else streams out of memory.
    pub keep_routers: usize,
}

impl Default for FleetDeployConfig {
    fn default() -> FleetDeployConfig {
        FleetDeployConfig {
            routers: 16,
            relays: 2,
            cores_each: 1,
            key_bits: 256,
            key_pool: 64,
            link: LossyChannel::clean(Channel::ideal_gigabit()),
            retry: RetryPolicy::default(),
            max_deploy_attempts: 3,
            outage: None,
            blackhole_router: None,
            keep_routers: 0,
        }
    }
}

/// Terminal record of one router's hierarchical deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterRow {
    /// Router index.
    pub router: usize,
    /// Relay that served its shared sections.
    pub relay: usize,
    /// Whether the install ladder completed.
    pub installed: bool,
    /// Fetch + install cycles spent.
    pub cycles: u32,
    /// Sections fetched over the wire across all cycles.
    pub sections_fetched: u64,
    /// Sections reused from this router's cache across all cycles.
    pub sections_reused: u64,
    /// Terminal error, for quarantined routers.
    pub error: Option<String>,
}

/// Result of [`deploy_fleet`]: totals, egress accounting, one row per
/// router. Byte-stable per seed — no wall-clock anywhere.
#[derive(Debug)]
pub struct FleetScaleReport {
    /// The seed the run derives everything from.
    pub seed: u64,
    /// Fleet size.
    pub routers: usize,
    /// Relay count.
    pub relays: usize,
    /// Cores per router.
    pub cores_each: usize,
    /// Router key size.
    pub key_bits: usize,
    /// Distinct device keys generated.
    pub key_pool: usize,
    /// Routers that completed the install ladder.
    pub installed: usize,
    /// Routers that ran out of cycles (or lost their relay).
    pub quarantined: usize,
    /// Relays that synced the shared document.
    pub relays_synced: usize,
    /// Size of the shared TLV document.
    pub shared_document_bytes: usize,
    /// Size of one wrapped-key TLV document (router 0's).
    pub key_document_bytes: usize,
    /// Plaintext package payload size.
    pub package_bytes: usize,
    /// Origin section bytes served syncing the shared document to relays —
    /// O(relays), the hierarchical egress win.
    pub origin_shared_egress_bytes: u64,
    /// Origin section bytes served as per-router key documents —
    /// O(routers) but tiny (one wrapped key each).
    pub origin_key_egress_bytes: u64,
    /// Relay section bytes served to routers (shared sections).
    pub relay_egress_bytes: u64,
    /// Total sections fetched over any link.
    pub sections_fetched: u64,
    /// Total sections served from caches.
    pub sections_reused: u64,
    /// Global transport attempts (origin + all relays) — the fault clock
    /// at the end of the run.
    pub transport_attempts: u64,
    /// Indices of quarantined routers, ascending.
    pub quarantined_routers: Vec<usize>,
    /// One row per router, in index order.
    pub rows: Vec<RouterRow>,
    /// The first [`FleetDeployConfig::keep_routers`] installed routers,
    /// alive for traffic-level assertions (never serialized).
    pub kept: Vec<RouterDevice>,
}

impl FleetScaleReport {
    /// Strict accounting: every router ends installed xor quarantined, and
    /// the rows agree with the totals.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn verify_accounting(&self) -> Result<(), String> {
        if self.installed + self.quarantined != self.routers {
            return Err(format!(
                "installed {} + quarantined {} != routers {}",
                self.installed, self.quarantined, self.routers
            ));
        }
        if self.rows.len() != self.routers {
            return Err(format!(
                "{} rows for {} routers",
                self.rows.len(),
                self.routers
            ));
        }
        let installed = self.rows.iter().filter(|r| r.installed).count();
        if installed != self.installed {
            return Err(format!(
                "rows say {installed} installed, report says {}",
                self.installed
            ));
        }
        let quarantined: Vec<usize> = self
            .rows
            .iter()
            .filter(|r| !r.installed)
            .map(|r| r.router)
            .collect();
        if quarantined != self.quarantined_routers {
            return Err("quarantined_routers disagrees with rows".to_owned());
        }
        for (i, row) in self.rows.iter().enumerate() {
            if row.router != i {
                return Err(format!("row {i} carries router index {}", row.router));
            }
            if !row.installed && row.error.is_none() {
                return Err(format!("quarantined router {i} has no error"));
            }
        }
        Ok(())
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "fleet seed {}: {}/{} installed via {} relays ({} quarantined), \
             origin egress {} B shared + {} B keys, relay egress {} B, \
             {} sections fetched / {} reused, {} transport attempts",
            self.seed,
            self.installed,
            self.routers,
            self.relays,
            self.quarantined,
            self.origin_shared_egress_bytes,
            self.origin_key_egress_bytes,
            self.relay_egress_bytes,
            self.sections_fetched,
            self.sections_reused,
            self.transport_attempts
        )
    }
}

/// Deploys one shared fleet update through the relay tree, streaming
/// routers so memory stays O(1) in fleet size. See the module docs for the
/// protocol and [`FleetDeployConfig`] for the knobs. Deterministic per
/// `seed` — a rerun replays the report and event stream byte-identically.
///
/// # Errors
///
/// Systemic failures only (key generation, packaging). Transport and
/// verification failures end in quarantine rows, never an error.
pub fn deploy_fleet(
    config: &FleetDeployConfig,
    program: &Program,
    seed: u64,
    bus: Option<&EventBus>,
) -> Result<FleetScaleReport, SdmmonError> {
    deploy_fleet_traced(config, program, seed, bus, None)
}

/// [`deploy_fleet`] with the causal span layer attached: alongside each
/// `fleet.*` event the run emits the control-plane span chain — one
/// `span.operator` root at clock 0, one `span.relay` per synced relay
/// (clock = cumulative transport attempts), and one `span.install` per
/// router whose trace id derives from [`trace::entity_flow`] — so
/// [`sdmmon_obs::assemble_traces`] links operator → relay → install per
/// router. Spans are only emitted when both `bus` and `trace` are present;
/// with `trace = None` this *is* `deploy_fleet`.
///
/// # Errors
///
/// Same contract as [`deploy_fleet`].
pub fn deploy_fleet_traced(
    config: &FleetDeployConfig,
    program: &Program,
    seed: u64,
    bus: Option<&EventBus>,
    tracing: Option<&TraceContext>,
) -> Result<FleetScaleReport, SdmmonError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let manufacturer = Manufacturer::new("fleet-acme", AUTHORITY_KEY_BITS, &mut rng)?;
    let mut operator = NetworkOperator::new("fleet-op", AUTHORITY_KEY_BITS, &mut rng)?;
    operator.accept_certificate(manufacturer.certify_operator(operator.public_key(), "fleet-op"));

    // Bounded provisioning pool: key generation is the one per-router cost
    // the protocol cannot amortize, so it is amortized by reuse instead.
    let pool_len = config.key_pool.clamp(1, config.routers.max(1));
    let pool: Vec<RsaKeyPair> = (0..pool_len)
        .map(|_| RsaKeyPair::generate(config.key_bits, &mut rng))
        .collect::<Result<_, _>>()?;

    // One shared update; one batched key-wrap pass over the whole fleet.
    let update = operator.prepare_fleet_update(program, &mut rng)?;
    let recipients: Vec<&RsaPublicKey> = (0..config.routers)
        .map(|i| &pool[i % pool_len].public)
        .collect();
    let wrapped = update.wrap_keys(&recipients, &mut rng)?;

    // Origin: the shared document once, plus one tiny key document per
    // router — the only O(routers) bytes the origin owns.
    let shared_doc = update.shared_document();
    let shared_document_bytes = shared_doc.len();
    let key_document_bytes = wrapped
        .first()
        .map_or(0, |w| FleetUpdate::key_document(w.clone()).len());
    let mut origin = FlakyServer::new(FileServer::new(), rng.next_u64());
    origin.server_mut().publish(SHARED_PATH, shared_doc);
    for (i, w) in wrapped.iter().enumerate() {
        origin
            .server_mut()
            .publish(key_path(i), FleetUpdate::key_document(w.clone()));
    }
    if let Some(window) = config.outage {
        origin.schedule_outage(window);
    }
    if let Some(victim) = config.blackhole_router {
        origin.blackhole(key_path(victim));
    }

    let relay_count = config.relays.max(1);
    let mut relays: Vec<FlakyServer> = (0..relay_count)
        .map(|_| FlakyServer::new(FileServer::new(), rng.next_u64()))
        .collect();
    let router_split = rng.next_u64();

    let client = DownloadClient::new(config.retry);
    metrics().inc(Counter::FleetUpdatesPrepared);
    if let Some(bus) = bus {
        bus.record(
            Event::new("fleet.update_prepared", 0)
                .field("sequence", update.sequence())
                .field("routers", config.routers)
                .field("relays", relay_count)
                .field("shared_bytes", shared_document_bytes)
                .field("package_bytes", update.package_bytes())
                .field("cipher_sections", update.cipher_sections().len()),
        );
        if tracing.is_some() {
            metrics().inc(Counter::TraceSpans);
            bus.record(
                Event::new(trace::KIND_SPAN_OPERATOR, 0).field("sequence", update.sequence()),
            );
        }
    }

    // Phase one — relay sync, serial in relay order. A relay that cannot
    // assemble the shared document is down for the whole run; its routers
    // quarantine with a relay error.
    let mut relay_alive = vec![false; relay_count];
    let mut origin_shared_egress_bytes = 0u64;
    let mut sections_fetched = 0u64;
    let mut sections_reused = 0u64;
    let mut relays_synced = 0usize;
    for r in 0..relay_count {
        let mut cache = SectionCache::new();
        let mut relay_rng = StdRng::seed_from_u64(split_seed(router_split, 0x5e1a_0000 + r as u64));
        let synced = fetch_document(
            &client,
            &mut origin,
            SHARED_PATH,
            &config.link,
            &mut cache,
            &mut relay_rng,
        );
        let clock = origin.attempts() + relays.iter().map(FlakyServer::attempts).sum::<u64>();
        match synced {
            Ok((sections, stats)) => {
                origin_shared_egress_bytes += stats.bytes_fetched;
                sections_fetched += stats.sections_fetched;
                sections_reused += stats.sections_reused;
                relays[r]
                    .server_mut()
                    .publish(SHARED_PATH, TlvBundle::new(sections).to_bytes());
                relay_alive[r] = true;
                relays_synced += 1;
                metrics().inc(Counter::FleetRelaySyncs);
                metrics().add(Counter::FleetOriginEgressBytes, stats.bytes_fetched);
                if let Some(bus) = bus {
                    bus.record(
                        Event::new("fleet.relay_synced", clock)
                            .field("relay", r)
                            .field("sections", stats.sections_fetched)
                            .field("attempts", stats.attempts)
                            .field("bytes", stats.bytes_fetched),
                    );
                    if tracing.is_some() {
                        metrics().inc(Counter::TraceSpans);
                        bus.record(
                            Event::new(trace::KIND_SPAN_RELAY, clock)
                                .field("relay", r)
                                .field("attempts", stats.attempts),
                        );
                    }
                }
            }
            Err(e) => {
                if let Some(bus) = bus {
                    bus.record(
                        Event::new("fleet.relay_failed", clock)
                            .field("relay", r)
                            .field("error", e.to_string()),
                    );
                }
            }
        }
    }

    // Phase two — routers, serial in index order, streamed: each router is
    // provisioned, deployed, recorded, and dropped before the next starts.
    let cores: Vec<usize> = (0..config.cores_each).collect();
    let mut rows: Vec<RouterRow> = Vec::with_capacity(config.routers);
    let mut kept: Vec<RouterDevice> = Vec::new();
    let mut installed = 0usize;
    let mut origin_key_egress_bytes = 0u64;
    let mut relay_egress_bytes = 0u64;
    for i in 0..config.routers {
        let relay = i * relay_count / config.routers.max(1);
        let mut row = RouterRow {
            router: i,
            relay,
            installed: false,
            cycles: 0,
            sections_fetched: 0,
            sections_reused: 0,
            error: None,
        };
        if !relay_alive[relay] {
            row.error = Some(format!("relay {relay} unreachable"));
        } else {
            let mut router_rng = StdRng::seed_from_u64(split_seed(router_split, i as u64));
            let mut router = manufacturer.provision_router_with_keys(
                &format!("router-{i}"),
                config.cores_each,
                pool[i % pool_len].clone(),
            );
            let mut cache = SectionCache::new();
            let mut outcome: Option<RouterDevice> = None;
            while row.cycles < config.max_deploy_attempts.max(1) {
                row.cycles += 1;
                metrics().inc(Counter::FleetDeployCycles);
                // Shared sections from the relay. Verified sections stay
                // in the router's cache across cycles, so a retry only
                // re-fetches what actually failed.
                let shared = match fetch_document(
                    &client,
                    &mut relays[relay],
                    SHARED_PATH,
                    &config.link,
                    &mut cache,
                    &mut router_rng,
                ) {
                    Ok((sections, stats)) => {
                        row.sections_fetched += stats.sections_fetched;
                        row.sections_reused += stats.sections_reused;
                        relay_egress_bytes += stats.bytes_fetched;
                        sections
                    }
                    Err(e) => {
                        row.error = Some(e.to_string());
                        continue;
                    }
                };
                // The wrapped key straight from the origin — tiny, and
                // per-router by design (SR4).
                let key_sections = match fetch_document(
                    &client,
                    &mut origin,
                    &key_path(i),
                    &config.link,
                    &mut cache,
                    &mut router_rng,
                ) {
                    Ok((sections, stats)) => {
                        row.sections_fetched += stats.sections_fetched;
                        row.sections_reused += stats.sections_reused;
                        origin_key_egress_bytes += stats.bytes_fetched;
                        sections
                    }
                    Err(e) => {
                        row.error = Some(e.to_string());
                        continue;
                    }
                };
                let wrapped_key = match key_sections.as_slice() {
                    [s] if s.tag == SectionTag::WrappedKey => s.bytes.clone(),
                    _ => {
                        row.error = Some("malformed key document".to_owned());
                        continue;
                    }
                };
                // Assemble + full SR1–SR4 install ladder. install_bundle_v2
                // is atomic, so a failed cycle leaves the router clean.
                let result = BundleV2::assemble(&shared, wrapped_key)
                    .map_err(|e| SdmmonError::MalformedPackage(e.to_string()))
                    .and_then(|b| router.install_bundle_v2(&b, &cores).map(|_| ()));
                match result {
                    Ok(()) => {
                        outcome = Some(router);
                        break;
                    }
                    Err(e) => {
                        row.error = Some(e.to_string());
                    }
                }
            }
            if let Some(router) = outcome {
                row.installed = true;
                row.error = None;
                if kept.len() < config.keep_routers {
                    kept.push(router);
                }
            }
        }
        sections_fetched += row.sections_fetched;
        sections_reused += row.sections_reused;
        let clock = origin.attempts() + relays.iter().map(FlakyServer::attempts).sum::<u64>();
        if row.installed {
            installed += 1;
            metrics().inc(Counter::FleetRoutersInstalled);
        } else {
            metrics().inc(Counter::FleetRoutersQuarantined);
        }
        if let Some(bus) = bus {
            let kind = if row.installed {
                "fleet.router_installed"
            } else {
                "fleet.router_quarantined"
            };
            let mut event = Event::new(kind, clock)
                .field("router", i)
                .field("relay", relay)
                .field("cycles", row.cycles)
                .field("sections_fetched", row.sections_fetched)
                .field("sections_reused", row.sections_reused);
            if let Some(error) = &row.error {
                event = event.field("error", error.as_str());
            }
            bus.record(event);
            if let Some(tc) = tracing {
                metrics().inc(Counter::TraceSpans);
                bus.record(
                    Event::new(trace::KIND_SPAN_INSTALL, clock)
                        .field("trace", tc.trace_id(trace::entity_flow("router", i as u64)))
                        .field("router", i)
                        .field("relay", relay)
                        .field("cycles", row.cycles)
                        .field("installed", row.installed),
                );
            }
        }
        rows.push(row);
    }

    metrics().add(Counter::FleetRelayEgressBytes, relay_egress_bytes);
    metrics().add(Counter::FleetOriginEgressBytes, origin_key_egress_bytes);
    let transport_attempts =
        origin.attempts() + relays.iter().map(FlakyServer::attempts).sum::<u64>();
    let quarantined_routers: Vec<usize> = rows
        .iter()
        .filter(|r| !r.installed)
        .map(|r| r.router)
        .collect();
    let report = FleetScaleReport {
        seed,
        routers: config.routers,
        relays: relay_count,
        cores_each: config.cores_each,
        key_bits: config.key_bits,
        key_pool: pool_len,
        installed,
        quarantined: config.routers - installed,
        relays_synced,
        shared_document_bytes,
        key_document_bytes,
        package_bytes: update.package_bytes(),
        origin_shared_egress_bytes,
        origin_key_egress_bytes,
        relay_egress_bytes,
        sections_fetched,
        sections_reused,
        transport_attempts,
        quarantined_routers,
        rows,
        kept,
    };
    if let Some(bus) = bus {
        bus.record(
            Event::new("fleet.deploy_done", transport_attempts)
                .field("installed", report.installed)
                .field("quarantined", report.quarantined)
                .field("origin_shared_egress", report.origin_shared_egress_bytes)
                .field("origin_key_egress", report.origin_key_egress_bytes)
                .field("relay_egress", report.relay_egress_bytes),
        );
    }
    Ok(report)
}

impl Fleet {
    /// Drives the hierarchical operator → relay → router tree — the
    /// fleet-scale counterpart of [`Fleet::deploy_resilient`], which
    /// serves every router from one origin. Delegates to [`deploy_fleet`];
    /// deterministic per `seed`.
    ///
    /// # Errors
    ///
    /// Same contract as [`deploy_fleet`].
    pub fn deploy_resilient_tree(
        config: &FleetDeployConfig,
        program: &Program,
        seed: u64,
        bus: Option<&EventBus>,
    ) -> Result<FleetScaleReport, SdmmonError> {
        deploy_fleet(config, program, seed, bus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdmmon_npu::programs;

    fn base_config(routers: usize, relays: usize) -> FleetDeployConfig {
        FleetDeployConfig {
            routers,
            relays,
            key_pool: 8,
            ..FleetDeployConfig::default()
        }
    }

    #[test]
    fn clean_fleet_installs_everyone() {
        let program = programs::ipv4_forward().unwrap();
        let report = deploy_fleet(&base_config(12, 3), &program, 0xF1EE7, None).unwrap();
        report.verify_accounting().unwrap();
        assert_eq!(report.installed, 12);
        assert_eq!(report.quarantined, 0);
        assert_eq!(report.relays_synced, 3);
        // Routers pull the shared payload from relays, not the origin.
        assert!(report.relay_egress_bytes > report.origin_shared_egress_bytes);
    }

    #[test]
    fn origin_shared_egress_is_o_relays() {
        let program = programs::ipv4_forward().unwrap();
        let two = deploy_fleet(&base_config(24, 2), &program, 7, None).unwrap();
        let eight = deploy_fleet(&base_config(24, 8), &program, 7, None).unwrap();
        // Shared egress scales with relays (4x), not routers (fixed count).
        assert_eq!(
            eight.origin_shared_egress_bytes,
            4 * two.origin_shared_egress_bytes
        );
        // Relay egress scales with routers and is invariant in relay count.
        assert_eq!(two.relay_egress_bytes, eight.relay_egress_bytes);
    }

    #[test]
    fn blackholed_key_quarantines_exactly_that_router() {
        let program = programs::ipv4_forward().unwrap();
        let mut config = base_config(10, 2);
        config.blackhole_router = Some(4);
        let report = deploy_fleet(&config, &program, 99, None).unwrap();
        report.verify_accounting().unwrap();
        assert_eq!(report.quarantined_routers, vec![4]);
        assert_eq!(report.installed, 9);
        assert!(report.rows[4].error.is_some());
    }

    #[test]
    fn replay_is_byte_identical_per_seed() {
        let program = programs::ipv4_forward().unwrap();
        let mut config = base_config(8, 2);
        config.link = config.link.with_loss(0.1).with_corrupt(0.1);
        let a = deploy_fleet(&config, &program, 1234, None).unwrap();
        let b = deploy_fleet(&config, &program, 1234, None).unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.transport_attempts, b.transport_attempts);
        assert_eq!(a.origin_shared_egress_bytes, b.origin_shared_egress_bytes);
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn kept_routers_forward_traffic() {
        use sdmmon_npu::runtime::Verdict;
        let program = programs::ipv4_forward().unwrap();
        let mut config = base_config(4, 1);
        config.keep_routers = 2;
        let report = deploy_fleet(&config, &program, 11, None).unwrap();
        let mut kept = report.kept;
        assert_eq!(kept.len(), 2);
        let packet = programs::testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"x");
        for router in &mut kept {
            assert_eq!(router.process_on(0, &packet).verdict, Verdict::Forward(2));
        }
    }
}
