//! Runtime workload management for multicore network processors — the
//! paper's "Dynamics" requirement.
//!
//! "Multiple processor cores and their monitors need to be managed and
//! reprogrammed at runtime as network traffic and network functionality
//! change" (paper §1). The paper defers the *when* to prior work on
//! runtime task allocation (Wu & Wolf, TPDS 2012) and solves the *how*
//! (secure installation). This module supplies a minimal version of the
//! missing substrate: a [`WorkloadManager`] that tracks per-application
//! demand, computes a proportional core allocation (largest-remainder
//! method), plans minimal reassignments, and drives the secure
//! installation path for every core whose application changes.

use crate::entities::{NetworkOperator, RouterDevice};
use crate::SdmmonError;
use sdmmon_isa::asm::Program;
use sdmmon_rng::RngCore;
use std::collections::BTreeMap;

/// A registered packet-processing application.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Unique application name.
    pub name: String,
    /// The application binary (assembled program).
    pub program: Program,
}

/// Demand-driven core allocator + reprogramming driver.
///
/// # Examples
///
/// ```
/// use sdmmon_core::workload::WorkloadManager;
/// use sdmmon_npu::programs;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut manager = WorkloadManager::new();
/// manager.register("ipv4", programs::ipv4_forward()?)?;
/// manager.register("ipv4cm", programs::ipv4_cm()?)?;
/// manager.record_demand("ipv4", 300)?;
/// manager.record_demand("ipv4cm", 100)?;
/// // 4 cores split 3:1 by observed demand.
/// assert_eq!(manager.allocation(4), vec!["ipv4", "ipv4", "ipv4", "ipv4cm"]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct WorkloadManager {
    apps: Vec<AppSpec>,
    demand: BTreeMap<String, u64>,
    /// The manager's view of what runs on each core of the managed router.
    assigned: Vec<Option<String>>,
}

impl WorkloadManager {
    /// Creates an empty manager.
    pub fn new() -> WorkloadManager {
        WorkloadManager::default()
    }

    /// Registers an application.
    ///
    /// # Errors
    ///
    /// Returns [`SdmmonError::MalformedPackage`] (reused as a validation
    /// error) when the name is already taken or the program is empty.
    pub fn register(&mut self, name: &str, program: Program) -> Result<(), SdmmonError> {
        if self.apps.iter().any(|a| a.name == name) {
            return Err(SdmmonError::MalformedPackage(format!(
                "application `{name}` already registered"
            )));
        }
        if program.words.is_empty() {
            return Err(SdmmonError::MalformedPackage(format!(
                "application `{name}` has an empty binary"
            )));
        }
        self.demand.insert(name.to_owned(), 0);
        self.apps.push(AppSpec {
            name: name.to_owned(),
            program,
        });
        Ok(())
    }

    /// Registered application names, in registration order.
    pub fn apps(&self) -> impl Iterator<Item = &str> {
        self.apps.iter().map(|a| a.name.as_str())
    }

    /// Adds observed traffic demand (e.g. packets seen) for an application.
    ///
    /// # Errors
    ///
    /// Returns an error for unregistered applications.
    pub fn record_demand(&mut self, name: &str, packets: u64) -> Result<(), SdmmonError> {
        match self.demand.get_mut(name) {
            Some(d) => {
                *d += packets;
                Ok(())
            }
            None => Err(SdmmonError::MalformedPackage(format!(
                "unknown application `{name}`"
            ))),
        }
    }

    /// Exponentially decays all recorded demand (call once per epoch so
    /// the allocation tracks *recent* traffic).
    pub fn decay_demand(&mut self) {
        for d in self.demand.values_mut() {
            *d /= 2;
        }
    }

    /// Computes the target allocation for `cores` cores: proportional to
    /// demand by the largest-remainder method, deterministic, and sorted so
    /// equal-demand ties go to the earlier-registered application. With no
    /// demand at all, every core runs the first registered application.
    ///
    /// # Panics
    ///
    /// Panics if no application is registered or `cores == 0`.
    pub fn allocation(&self, cores: usize) -> Vec<&str> {
        assert!(!self.apps.is_empty(), "no applications registered");
        assert!(cores > 0, "need at least one core");
        let total: u64 = self.demand.values().sum();
        if total == 0 {
            return vec![self.apps[0].name.as_str(); cores];
        }
        // Largest remainder (Hamilton): floor shares, then distribute the
        // remaining cores by descending fractional part.
        let mut shares: Vec<(usize, u64, u64)> = self
            .apps
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let d = self.demand[&a.name];
                let num = d * cores as u64;
                (i, num / total, num % total)
            })
            .collect();
        let allocated: u64 = shares.iter().map(|&(_, f, _)| f).sum();
        let mut leftover = cores as u64 - allocated;
        // Order by remainder desc, then registration order for stability.
        let mut by_remainder: Vec<usize> = (0..shares.len()).collect();
        by_remainder.sort_by(|&x, &y| shares[y].2.cmp(&shares[x].2).then(x.cmp(&y)));
        for &idx in &by_remainder {
            if leftover == 0 {
                break;
            }
            if shares[idx].2 > 0 {
                shares[idx].1 += 1;
                leftover -= 1;
            }
        }
        // If rounding still left cores (all remainders zero), give them to
        // the highest-demand app.
        if leftover > 0 {
            let top = shares
                .iter()
                .enumerate()
                .max_by_key(|(_, &(i, f, _))| (self.demand[&self.apps[i].name], f, usize::MAX - i))
                .map(|(pos, _)| pos)
                .expect("apps non-empty");
            shares[top].1 += leftover;
        }
        let mut out = Vec::with_capacity(cores);
        for &(i, count, _) in &shares {
            for _ in 0..count {
                out.push(self.apps[i].name.as_str());
            }
        }
        debug_assert_eq!(out.len(), cores);
        out
    }

    /// The manager's current view of per-core assignments.
    pub fn assignments(&self) -> &[Option<String>] {
        &self.assigned
    }

    /// Plans the minimal set of `(core, app)` changes to move from the
    /// current assignment to the target allocation for `cores` cores.
    pub fn plan(&self, cores: usize) -> Vec<(usize, String)> {
        let target = self.allocation(cores);
        // Count how many cores each app should run vs currently runs.
        let mut need: BTreeMap<&str, i64> = BTreeMap::new();
        for app in &target {
            *need.entry(app).or_insert(0) += 1;
        }
        let mut current = self.assigned.clone();
        current.resize(cores, None);
        // Keep cores already running an app that still needs instances.
        let mut keep = vec![false; cores];
        for (core, assigned) in current.iter().enumerate() {
            if let Some(app) = assigned {
                if let Some(n) = need.get_mut(app.as_str()) {
                    if *n > 0 {
                        *n -= 1;
                        keep[core] = true;
                    }
                }
            }
        }
        // Assign remaining requirements to the freed cores in order.
        let mut changes = Vec::new();
        let mut free: Vec<usize> = (0..cores).filter(|&c| !keep[c]).collect();
        free.reverse(); // pop from the front
        for (app, n) in need {
            for _ in 0..n {
                let core = free.pop().expect("free cores match remaining need");
                changes.push((core, app.to_owned()));
            }
        }
        changes.sort_unstable();
        changes
    }

    /// Applies the plan to a real router through the secure installation
    /// path: one freshly parameterized package per application that gains
    /// cores. Returns the performed `(core, app)` changes.
    ///
    /// # Errors
    ///
    /// Propagates packaging/installation failures; the manager's view is
    /// only updated for cores whose installation succeeded.
    pub fn reconcile<R: RngCore + ?Sized>(
        &mut self,
        operator: &NetworkOperator,
        router: &mut RouterDevice,
        rng: &mut R,
    ) -> Result<Vec<(usize, String)>, SdmmonError> {
        let cores = router.num_cores();
        let changes = self.plan(cores);
        self.assigned.resize(cores, None);
        // Group changed cores per app so one package programs all of them.
        let mut per_app: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (core, app) in &changes {
            per_app.entry(app.as_str()).or_default().push(*core);
        }
        for (app, cores) in per_app {
            let spec = self
                .apps
                .iter()
                .find(|a| a.name == app)
                .expect("plan only names registered apps");
            let bundle = operator.prepare_package(&spec.program, router.public_key(), rng)?;
            router.install_bundle(&bundle, &cores)?;
            for &core in &cores {
                self.assigned[core] = Some(app.to_owned());
            }
        }
        Ok(changes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::Manufacturer;
    use sdmmon_npu::programs::{self, testing};
    use sdmmon_npu::runtime::Verdict;
    use sdmmon_rng::SeedableRng;

    fn manager() -> WorkloadManager {
        let mut m = WorkloadManager::new();
        m.register("ipv4", programs::ipv4_forward().unwrap())
            .unwrap();
        m.register("ipv4cm", programs::ipv4_cm().unwrap()).unwrap();
        m
    }

    #[test]
    fn registration_validates() {
        let mut m = manager();
        assert!(
            m.register("ipv4", programs::ipv4_forward().unwrap())
                .is_err(),
            "duplicate"
        );
        assert!(m.record_demand("nope", 1).is_err(), "unknown app");
        assert_eq!(m.apps().collect::<Vec<_>>(), vec!["ipv4", "ipv4cm"]);
    }

    #[test]
    fn no_demand_defaults_to_first_app() {
        let m = manager();
        assert_eq!(m.allocation(3), vec!["ipv4"; 3]);
    }

    #[test]
    fn allocation_is_proportional() {
        let mut m = manager();
        m.record_demand("ipv4", 750).unwrap();
        m.record_demand("ipv4cm", 250).unwrap();
        let alloc = m.allocation(4);
        assert_eq!(alloc.iter().filter(|a| **a == "ipv4").count(), 3);
        assert_eq!(alloc.iter().filter(|a| **a == "ipv4cm").count(), 1);
    }

    #[test]
    fn largest_remainder_rounds_sensibly() {
        let mut m = manager();
        m.register("third", programs::vulnerable_forward().unwrap())
            .unwrap();
        m.record_demand("ipv4", 100).unwrap();
        m.record_demand("ipv4cm", 100).unwrap();
        m.record_demand("third", 100).unwrap();
        // 4 cores for 3 equal apps: 1 each + 1 by remainder (earliest app).
        let alloc = m.allocation(4);
        for app in ["ipv4", "ipv4cm", "third"] {
            assert!(
                alloc.iter().filter(|a| **a == app).count() >= 1,
                "{app} starved"
            );
        }
        assert_eq!(alloc.len(), 4);
    }

    #[test]
    fn tiny_demand_does_not_starve_total_allocation() {
        let mut m = manager();
        m.record_demand("ipv4", 1_000_000).unwrap();
        m.record_demand("ipv4cm", 1).unwrap();
        let alloc = m.allocation(2);
        assert_eq!(alloc.len(), 2);
        assert_eq!(alloc.iter().filter(|a| **a == "ipv4").count(), 2);
    }

    #[test]
    fn decay_halves_demand() {
        let mut m = manager();
        m.record_demand("ipv4", 100).unwrap();
        m.decay_demand();
        m.record_demand("ipv4cm", 50).unwrap();
        // Equal now: 50 vs 50 → split 1/1 on two cores.
        let alloc = m.allocation(2);
        assert_eq!(alloc.iter().filter(|a| **a == "ipv4").count(), 1);
    }

    #[test]
    fn plan_minimizes_churn() {
        let mut m = manager();
        m.record_demand("ipv4", 300).unwrap();
        m.record_demand("ipv4cm", 100).unwrap();
        // Pretend all 4 cores already run ipv4.
        m.assigned = vec![Some("ipv4".into()); 4];
        let plan = m.plan(4);
        // Target is 3x ipv4 + 1x ipv4cm: exactly one core changes.
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].1, "ipv4cm");
    }

    #[test]
    fn reconcile_drives_secure_reprogramming() {
        let mut rng = sdmmon_rng::StdRng::seed_from_u64(0xD17);
        let manufacturer = Manufacturer::new("m", 512, &mut rng).unwrap();
        let mut operator = crate::entities::NetworkOperator::new("op", 512, &mut rng).unwrap();
        operator.accept_certificate(manufacturer.certify_operator(operator.public_key(), "op"));
        let mut router = manufacturer
            .provision_router("r", 4, 512, &mut rng)
            .unwrap();
        let mut m = manager();

        // Epoch 1: all traffic is plain IPv4.
        m.record_demand("ipv4", 1000).unwrap();
        let changes = m.reconcile(&operator, &mut router, &mut rng).unwrap();
        assert_eq!(changes.len(), 4, "all cores programmed initially");
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"x");
        assert_eq!(router.process(&packet).1.verdict, Verdict::Forward(2));

        // Epoch 2: CM traffic appears; half the cores move over.
        m.decay_demand();
        m.record_demand("ipv4cm", 500).unwrap();
        let changes = m.reconcile(&operator, &mut router, &mut rng).unwrap();
        assert_eq!(
            changes.len(),
            2,
            "minimal churn: two cores switch, got {changes:?}"
        );
        for (_, app) in &changes {
            assert_eq!(app, "ipv4cm");
        }
        // Every core still forwards correctly under its monitor.
        for core in 0..4 {
            assert_eq!(
                router.process_on(core, &packet).verdict,
                Verdict::Forward(2)
            );
        }
        assert_eq!(router.stats().violations, 0);

        // Re-reconciling without demand change is a no-op.
        let changes = m.reconcile(&operator, &mut router, &mut rng).unwrap();
        assert!(changes.is_empty(), "steady state: {changes:?}");
    }
}
