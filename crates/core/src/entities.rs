//! The three entities of the SDMMon security model: manufacturer, network
//! operator, and network-processor device (paper §2.2 and §3.1).

use crate::cert::Certificate;
use crate::package::{InstallationBundle, Package};
use crate::timing::NiosCycleModel;
use crate::wire2::{BundleV2, Section, SectionTag, TlvBundle, SEGMENT_BYTES};
use crate::SdmmonError;
use sdmmon_crypto::aes::Aes;
use sdmmon_crypto::hmac::hmac_sha256;
use sdmmon_crypto::rsa::{wrap_key_batch, RsaKeyPair, RsaPublicKey};
use sdmmon_isa::asm::Program;
use sdmmon_monitor::hash::Compression;
use sdmmon_monitor::{HardwareMonitor, MerkleTreeHash, MonitoringGraph};
use sdmmon_npu::np::{NetworkProcessor, NpStats};
use sdmmon_npu::runtime::PacketOutcome;
use sdmmon_rng::RngCore;
use std::time::Duration;

/// AES key length for package encryption (AES-128, the OpenSSL default of
/// the paper's era).
const SYM_KEY_BYTES: usize = 16;

/// The router/network-processor manufacturer: the root of trust.
///
/// "At manufacturing time ... the manufacturer configures the device with
/// a public/private key pair ... \[and\] installs the manufacturer's public
/// key into the device so that a root of trust can be established."
#[derive(Debug)]
pub struct Manufacturer {
    name: String,
    keys: RsaKeyPair,
}

impl Manufacturer {
    /// Creates a manufacturer with a fresh `key_bits` RSA key pair.
    ///
    /// # Errors
    ///
    /// Propagates key-generation failures.
    pub fn new<R: RngCore + ?Sized>(
        name: &str,
        key_bits: usize,
        rng: &mut R,
    ) -> Result<Manufacturer, SdmmonError> {
        Ok(Manufacturer {
            name: name.to_owned(),
            keys: RsaKeyPair::generate(key_bits, rng)?,
        })
    }

    /// The manufacturer's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The manufacturer's public key (pre-installed in every router).
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.keys.public
    }

    /// Issues the certificate that lets routers trust `operator_key`
    /// ("at installation time").
    pub fn certify_operator(
        &self,
        operator_key: &RsaPublicKey,
        operator_name: &str,
    ) -> Certificate {
        Certificate::issue(operator_name, operator_key, &self.keys.private)
    }

    /// Manufactures a router: generates its device key pair, burns in the
    /// manufacturer public key, and attaches a `cores`-core NP
    /// ("at manufacturing time").
    ///
    /// # Errors
    ///
    /// Propagates key-generation failures.
    pub fn provision_router<R: RngCore + ?Sized>(
        &self,
        name: &str,
        cores: usize,
        key_bits: usize,
        rng: &mut R,
    ) -> Result<RouterDevice, SdmmonError> {
        Ok(self.provision_router_with_keys(name, cores, RsaKeyPair::generate(key_bits, rng)?))
    }

    /// [`Manufacturer::provision_router`] with a caller-supplied device key
    /// pair.
    ///
    /// This is the fleet-scale provisioning path: a bounded pool of
    /// pre-generated key pairs caps key-generation cost when manufacturing
    /// tens of thousands of simulated routers, while the install protocol
    /// itself stays strictly per-key.
    pub fn provision_router_with_keys(
        &self,
        name: &str,
        cores: usize,
        keys: RsaKeyPair,
    ) -> RouterDevice {
        RouterDevice {
            name: name.to_owned(),
            keys,
            manufacturer_key: self.keys.public.clone(),
            np: NetworkProcessor::new(cores),
            installed: vec![None; cores],
            timing_model: NiosCycleModel::paper(),
            last_sequence: 0,
        }
    }
}

/// The network operator: prepares and signs installation packages.
#[derive(Debug)]
pub struct NetworkOperator {
    name: String,
    keys: RsaKeyPair,
    certificate: Option<Certificate>,
    compression: Compression,
    /// Monotonic package counter (anti-replay extension; see
    /// `Package::sequence`). Atomic so package preparation stays `&self`
    /// and parallel deployments can reserve sequence blocks concurrently.
    next_sequence: std::sync::atomic::AtomicU64,
}

impl NetworkOperator {
    /// Creates an operator with a fresh key pair (no certificate yet).
    ///
    /// # Errors
    ///
    /// Propagates key-generation failures.
    pub fn new<R: RngCore + ?Sized>(
        name: &str,
        key_bits: usize,
        rng: &mut R,
    ) -> Result<NetworkOperator, SdmmonError> {
        Ok(NetworkOperator {
            name: name.to_owned(),
            keys: RsaKeyPair::generate(key_bits, rng)?,
            certificate: None,
            // Reproduction deviation (documented in EXPERIMENTS.md): the
            // paper's sum compression makes hash collisions parameter-
            // independent, which would void the fleet-diversity goal; the
            // protocol layer therefore defaults to the S-box compression.
            compression: Compression::SBox,
            next_sequence: std::sync::atomic::AtomicU64::new(1),
        })
    }

    /// Overrides the Merkle-tree compression used for new packages (e.g.
    /// [`Compression::SumMod16`] for paper-faithful ablations).
    pub fn set_compression(&mut self, compression: Compression) {
        self.compression = compression;
    }

    /// The compression new packages will use.
    pub fn compression(&self) -> Compression {
        self.compression
    }

    /// The operator's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operator's public key (to be certified by the manufacturer).
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.keys.public
    }

    /// Stores the manufacturer-issued certificate.
    pub fn accept_certificate(&mut self, certificate: Certificate) {
        self.certificate = Some(certificate);
    }

    /// Builds the installation bundle for one specific router
    /// ("at programming time"):
    ///
    /// 1. extract the monitoring graph from `program` under a freshly drawn
    ///    random 32-bit hash parameter (SR2),
    /// 2. sign `binary ‖ graph ‖ parameter` with the operator key (SR1),
    /// 3. encrypt the payload under a random AES key (SR3),
    /// 4. wrap the AES key with the router's public key (SR4).
    ///
    /// # Errors
    ///
    /// Returns [`SdmmonError::MissingCertificate`] before certification and
    /// propagates graph/crypto failures.
    pub fn prepare_package<R: RngCore + ?Sized>(
        &self,
        program: &Program,
        router_key: &RsaPublicKey,
        rng: &mut R,
    ) -> Result<InstallationBundle, SdmmonError> {
        let sequence = self.reserve_sequences(1);
        self.prepare_package_with_sequence(program, router_key, sequence, rng)
    }

    /// Reserves a contiguous block of `count` package sequence numbers,
    /// returning the first.
    ///
    /// Parallel fleet deployments reserve one block up front and assign
    /// `first + i` to router `i`, so the sequence a router receives does
    /// not depend on thread scheduling.
    pub fn reserve_sequences(&self, count: u64) -> u64 {
        self.next_sequence
            .fetch_add(count, std::sync::atomic::Ordering::Relaxed)
    }

    /// [`NetworkOperator::prepare_package`] with a caller-assigned sequence
    /// number (obtained from [`NetworkOperator::reserve_sequences`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`NetworkOperator::prepare_package`].
    pub fn prepare_package_with_sequence<R: RngCore + ?Sized>(
        &self,
        program: &Program,
        router_key: &RsaPublicKey,
        sequence: u64,
        rng: &mut R,
    ) -> Result<InstallationBundle, SdmmonError> {
        let certificate = self
            .certificate
            .clone()
            .ok_or(SdmmonError::MissingCertificate)?;
        let hash_param = rng.next_u32();
        let hash = MerkleTreeHash::with_compression(hash_param, self.compression);
        let graph = MonitoringGraph::extract(program, &hash)
            .map_err(|e| SdmmonError::Graph(e.to_string()))?;
        let package = Package {
            binary: program.to_bytes(),
            base: program.base,
            graph: graph.to_bytes(),
            hash_param,
            compression: self.compression,
            sequence,
        };
        let payload = package.to_bytes();
        let signature = self.keys.private.sign(&payload);

        let mut sym_key = [0u8; SYM_KEY_BYTES];
        rng.fill_bytes(&mut sym_key);
        let aes = Aes::new(&sym_key)?;
        let ciphertext = aes.encrypt_cbc(&payload, rng);
        let wrapped_key = router_key.encrypt(&sym_key, rng)?;

        Ok(InstallationBundle {
            ciphertext,
            wrapped_key,
            signature,
            certificate,
        })
    }

    /// Prepares one **shared fleet update**: the expensive per-package work
    /// — graph extraction, signing, and payload encryption — happens *once*
    /// here, leaving only the cheap per-router RSA key-wrap
    /// ([`FleetUpdate::wrap_keys`]) to scale with fleet size. This is the
    /// amortization the paper's structure permits: SR1/SR3 cover the shared
    /// payload, SR4 stays per-router via the wrap.
    ///
    /// The payload is encrypted per [`SEGMENT_BYTES`]-sized section with a
    /// plaintext-derived IV, so successor updates
    /// ([`NetworkOperator::prepare_fleet_successor`]) re-encrypt unchanged
    /// sections to identical ciphertext — the delta-update contract.
    ///
    /// Note the SR2 tradeoff: every router installing one fleet update
    /// shares a hash parameter (diversity is *across updates*, not across
    /// routers within one update). Operators wanting per-router diversity
    /// keep using [`NetworkOperator::prepare_package`].
    ///
    /// # Errors
    ///
    /// Same contract as [`NetworkOperator::prepare_package`].
    pub fn prepare_fleet_update<R: RngCore + ?Sized>(
        &self,
        program: &Program,
        rng: &mut R,
    ) -> Result<FleetUpdate, SdmmonError> {
        let sequence = self.reserve_sequences(1);
        self.prepare_fleet_update_with_sequence(program, sequence, rng)
    }

    /// [`NetworkOperator::prepare_fleet_update`] with a caller-assigned
    /// sequence number.
    ///
    /// # Errors
    ///
    /// Same contract as [`NetworkOperator::prepare_package`].
    pub fn prepare_fleet_update_with_sequence<R: RngCore + ?Sized>(
        &self,
        program: &Program,
        sequence: u64,
        rng: &mut R,
    ) -> Result<FleetUpdate, SdmmonError> {
        let hash_param = rng.next_u32();
        let mut sym_key = [0u8; SYM_KEY_BYTES];
        rng.fill_bytes(&mut sym_key);
        self.build_fleet_update(program, hash_param, sym_key, sequence)
    }

    /// Prepares the **successor version** of a fleet update: same package
    /// key and hash parameter as `prev`, fresh sequence number. Unchanged
    /// payload sections re-encrypt to byte-identical ciphertext, so routers
    /// holding `prev` download only the sections that differ (for a pure
    /// sequence bump: the final section, which carries the sequence field).
    ///
    /// Reusing the hash parameter is the documented delta-vs-rotation
    /// choice: a successor keeps monitors parameter-compatible across the
    /// fleet but does not re-diversify (SR2 across versions); preparing a
    /// fresh [`NetworkOperator::prepare_fleet_update`] rotates both and
    /// forces a full download. Entirely deterministic — no rng.
    ///
    /// # Errors
    ///
    /// Same contract as [`NetworkOperator::prepare_package`].
    pub fn prepare_fleet_successor(
        &self,
        prev: &FleetUpdate,
        program: &Program,
    ) -> Result<FleetUpdate, SdmmonError> {
        let sequence = self.reserve_sequences(1);
        self.build_fleet_update(program, prev.hash_param, prev.sym_key, sequence)
    }

    fn build_fleet_update(
        &self,
        program: &Program,
        hash_param: u32,
        sym_key: [u8; SYM_KEY_BYTES],
        sequence: u64,
    ) -> Result<FleetUpdate, SdmmonError> {
        let certificate = self
            .certificate
            .clone()
            .ok_or(SdmmonError::MissingCertificate)?;
        let hash = MerkleTreeHash::with_compression(hash_param, self.compression);
        let graph = MonitoringGraph::extract(program, &hash)
            .map_err(|e| SdmmonError::Graph(e.to_string()))?;
        let package = Package {
            binary: program.to_bytes(),
            base: program.base,
            graph: graph.to_bytes(),
            hash_param,
            compression: self.compression,
            sequence,
        };
        let payload = package.to_bytes();
        let signature = self.keys.private.sign(&payload);
        let cipher_sections = encrypt_segments(&sym_key, &payload)?;
        sdmmon_obs::metrics().inc(sdmmon_obs::Counter::FleetUpdatesPrepared);
        Ok(FleetUpdate {
            certificate,
            payload,
            signature,
            sym_key,
            cipher_sections,
            sequence,
            hash_param,
        })
    }
}

/// Splits `payload` into fixed-size segments and CBC-encrypts each under a
/// deterministic plaintext-derived IV (SIV-style):
/// `IV = HMAC-SHA256(sym_key, segment)[..16]`.
///
/// Determinism is the point — same key, same plaintext section, same
/// ciphertext — which is what lets a delta download skip unchanged sections
/// of a successor update. The tradeoff is the standard encrypted-dedup one:
/// an observer learns *which* sections changed between versions (never
/// their contents); rotating the package key restores full unlinkability at
/// the price of a full download. See docs/RESILIENCE.md.
fn encrypt_segments(
    sym_key: &[u8; SYM_KEY_BYTES],
    payload: &[u8],
) -> Result<Vec<Vec<u8>>, SdmmonError> {
    let aes = Aes::new(sym_key)?;
    Ok(payload
        .chunks(SEGMENT_BYTES)
        .map(|seg| {
            let tag = hmac_sha256(sym_key, seg);
            let iv: [u8; 16] = tag[..16].try_into().expect("16 bytes");
            aes.encrypt_cbc_with_iv(seg, iv)
        })
        .collect())
}

/// One fleet-wide update: the package payload extracted, signed, and
/// section-encrypted **once**, with only the per-router key-wrap left to
/// do. Produced by [`NetworkOperator::prepare_fleet_update`]; rendered
/// per router as a [`BundleV2`] (or a v1 [`InstallationBundle`] for the
/// differential path).
#[derive(Debug, Clone)]
pub struct FleetUpdate {
    certificate: Certificate,
    /// Plaintext package payload — operator-side only, never transported.
    payload: Vec<u8>,
    signature: Vec<u8>,
    sym_key: [u8; SYM_KEY_BYTES],
    cipher_sections: Vec<Vec<u8>>,
    sequence: u64,
    hash_param: u32,
}

impl FleetUpdate {
    /// The anti-replay sequence number this update carries.
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// The fleet-wide hash parameter of this update (SR2 note on
    /// [`NetworkOperator::prepare_fleet_update`]).
    pub fn hash_param(&self) -> u32 {
        self.hash_param
    }

    /// The operator's certificate embedded in every rendering.
    pub fn certificate(&self) -> &Certificate {
        &self.certificate
    }

    /// Plaintext package payload size in bytes.
    pub fn package_bytes(&self) -> usize {
        self.payload.len()
    }

    /// The encrypted payload sections, in order.
    pub fn cipher_sections(&self) -> &[Vec<u8>] {
        &self.cipher_sections
    }

    /// The sections every router shares: `cert`, `sig`, then each `ciph`
    /// segment — everything except the per-router `key`.
    pub fn shared_sections(&self) -> Vec<Section> {
        let mut out = Vec::with_capacity(2 + self.cipher_sections.len());
        out.push(Section::new(
            SectionTag::Certificate,
            self.certificate.to_bytes(),
        ));
        out.push(Section::new(SectionTag::Signature, self.signature.clone()));
        for seg in &self.cipher_sections {
            out.push(Section::new(SectionTag::Ciphertext, seg.clone()));
        }
        out
    }

    /// Serializes the shared sections as one TLV document — what the
    /// operator publishes once and relays cache.
    pub fn shared_document(&self) -> Vec<u8> {
        TlvBundle::new(self.shared_sections()).to_bytes()
    }

    /// Serializes one router's wrapped key as a single-section TLV
    /// document — the only per-router bytes on the wire.
    pub fn key_document(wrapped_key: Vec<u8>) -> Vec<u8> {
        TlvBundle::new(vec![Section::new(SectionTag::WrappedKey, wrapped_key)]).to_bytes()
    }

    /// Wraps the package key for one router (SR4).
    ///
    /// # Errors
    ///
    /// Propagates RSA failures (e.g. a modulus too small for the key).
    pub fn wrap_key_for<R: RngCore + ?Sized>(
        &self,
        router_key: &RsaPublicKey,
        rng: &mut R,
    ) -> Result<Vec<u8>, SdmmonError> {
        sdmmon_obs::metrics().inc(sdmmon_obs::Counter::FleetKeyWraps);
        Ok(router_key.encrypt(&self.sym_key, rng)?)
    }

    /// Wraps the package key for a whole fleet in one batched pass —
    /// byte-identical to calling [`FleetUpdate::wrap_key_for`] per router
    /// with the same rng, but amortizing Montgomery context setup across
    /// routers that share pool keys (see
    /// [`wrap_key_batch`](sdmmon_crypto::rsa::wrap_key_batch)).
    ///
    /// # Errors
    ///
    /// Propagates RSA failures; a failed batch consumes no randomness.
    pub fn wrap_keys<R: RngCore + ?Sized>(
        &self,
        recipients: &[&RsaPublicKey],
        rng: &mut R,
    ) -> Result<Vec<Vec<u8>>, SdmmonError> {
        sdmmon_obs::metrics().add(sdmmon_obs::Counter::FleetKeyWraps, recipients.len() as u64);
        Ok(wrap_key_batch(&self.sym_key, recipients, rng)?)
    }

    /// Renders the complete v2 bundle for one router.
    ///
    /// # Errors
    ///
    /// Propagates RSA failures from the key-wrap.
    pub fn bundle_v2_for<R: RngCore + ?Sized>(
        &self,
        router_key: &RsaPublicKey,
        rng: &mut R,
    ) -> Result<BundleV2, SdmmonError> {
        Ok(BundleV2 {
            certificate: self.certificate.clone(),
            signature: self.signature.clone(),
            wrapped_key: self.wrap_key_for(router_key, rng)?,
            cipher_sections: self.cipher_sections.clone(),
        })
    }

    /// Renders this update as a v1 [`InstallationBundle`] for one router:
    /// the same payload, signature, and certificate, with the payload
    /// re-encrypted as one random-IV CBC blob. This is the differential
    /// anchor — a router installing either rendering must end up in a
    /// byte-identical state.
    ///
    /// # Errors
    ///
    /// Propagates RSA failures from the key-wrap.
    pub fn bundle_v1_for<R: RngCore + ?Sized>(
        &self,
        router_key: &RsaPublicKey,
        rng: &mut R,
    ) -> Result<InstallationBundle, SdmmonError> {
        let aes = Aes::new(&self.sym_key)?;
        let ciphertext = aes.encrypt_cbc(&self.payload, rng);
        Ok(InstallationBundle {
            ciphertext,
            wrapped_key: self.wrap_key_for(router_key, rng)?,
            signature: self.signature.clone(),
            certificate: self.certificate.clone(),
        })
    }
}

/// What a router remembers about an application installed on one core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstalledApp {
    /// The secret hash parameter in use on this core.
    pub hash_param: u32,
    /// Binary size in bytes.
    pub binary_bytes: usize,
    /// Serialized monitoring-graph size in bytes.
    pub graph_bytes: usize,
}

/// Timing breakdown of one installation, from the control-processor model.
#[derive(Debug, Clone, PartialEq)]
pub struct InstallTiming {
    /// Certificate check (once per operator, cacheable).
    pub check_certificate: Duration,
    /// RSA unwrap of the AES key.
    pub unwrap_key: Duration,
    /// AES decryption of the package.
    pub decrypt_package: Duration,
    /// Signature verification over the payload.
    pub verify_signature: Duration,
}

impl InstallTiming {
    /// Total modelled control-processor time (excluding download).
    pub fn total(&self) -> Duration {
        self.check_certificate + self.unwrap_key + self.decrypt_package + self.verify_signature
    }
}

/// Report returned by a successful installation.
#[derive(Debug, Clone, PartialEq)]
pub struct InstallReport {
    /// Cores that were (re)programmed.
    pub cores: Vec<usize>,
    /// Size of the encrypted transport bundle.
    pub bundle_bytes: usize,
    /// Size of the plaintext package payload.
    pub package_bytes: usize,
    /// Modelled Nios II timing of the security steps.
    pub timing: InstallTiming,
}

/// A deployed router: device key pair, manufacturer root of trust, and a
/// multicore NP whose cores run monitored workloads.
#[derive(Debug)]
pub struct RouterDevice {
    name: String,
    keys: RsaKeyPair,
    manufacturer_key: RsaPublicKey,
    np: NetworkProcessor,
    installed: Vec<Option<InstalledApp>>,
    timing_model: NiosCycleModel,
    /// Highest package sequence accepted so far (anti-replay extension).
    last_sequence: u64,
}

impl RouterDevice {
    /// The router's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The router's public key (targets for [`NetworkOperator::prepare_package`]).
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.keys.public
    }

    /// Number of NP cores.
    pub fn num_cores(&self) -> usize {
        self.np.num_cores()
    }

    /// Installation record for a core, if programmed.
    pub fn installed(&self, core: usize) -> Option<&InstalledApp> {
        self.installed[core].as_ref()
    }

    /// Replaces the timing model (e.g. [`NiosCycleModel::modern_cpu`]).
    pub fn set_timing_model(&mut self, model: NiosCycleModel) {
        self.timing_model = model;
    }

    /// The full secure-installation sequence of the paper's control
    /// processor: certificate check → AES-key unwrap → package decrypt →
    /// signature verify → program cores and monitors.
    ///
    /// # Errors
    ///
    /// Each verification failure maps to the security requirement it
    /// enforces — see [`SdmmonError`]. Nothing is installed on any error.
    pub fn install_bundle(
        &mut self,
        bundle: &InstallationBundle,
        cores: &[usize],
    ) -> Result<InstallReport, SdmmonError> {
        // Atomicity: validate the core list before anything else. Every
        // later failure mode also precedes the programming loop, so an
        // install either programs all requested cores or touches none.
        if let Some(&bad) = cores.iter().find(|&&c| c >= self.installed.len()) {
            return Err(SdmmonError::NoSuchCore {
                core: bad,
                cores: self.installed.len(),
            });
        }
        // SR1 (chain of trust): the certificate must be manufacturer-signed.
        if !bundle.certificate.verify(&self.manufacturer_key) {
            return Err(SdmmonError::CertificateInvalid);
        }
        let operator_key = bundle
            .certificate
            .subject_key()
            .map_err(|_| SdmmonError::CertificateInvalid)?;

        // SR4: only this router's private key can unwrap the AES key.
        let sym_key = self
            .keys
            .private
            .decrypt(&bundle.wrapped_key)
            .map_err(|_| SdmmonError::WrongDevice)?;

        // SR3: decrypt the confidential payload.
        let aes = Aes::new(&sym_key).map_err(|_| SdmmonError::DecryptionFailed)?;
        let payload = aes
            .decrypt_cbc(&bundle.ciphertext)
            .map_err(|_| SdmmonError::DecryptionFailed)?;

        self.finish_install(
            &operator_key,
            &bundle.certificate,
            &payload,
            &bundle.signature,
            cores,
            bundle.ciphertext.len(),
            bundle.transport_size(),
        )
    }

    /// [`RouterDevice::install_bundle`] for a wire-format-v2 bundle: the
    /// same check ladder with the shared-package envelope — unwrap the
    /// fleet key (SR4), decrypt each ciphertext section independently
    /// (SR3), then verify and program exactly as v1 (SR1, anti-replay).
    ///
    /// # Errors
    ///
    /// Identical error mapping to [`RouterDevice::install_bundle`]; nothing
    /// is installed on any error.
    pub fn install_bundle_v2(
        &mut self,
        bundle: &BundleV2,
        cores: &[usize],
    ) -> Result<InstallReport, SdmmonError> {
        if let Some(&bad) = cores.iter().find(|&&c| c >= self.installed.len()) {
            return Err(SdmmonError::NoSuchCore {
                core: bad,
                cores: self.installed.len(),
            });
        }
        // SR1 (chain of trust): the certificate must be manufacturer-signed.
        if !bundle.certificate.verify(&self.manufacturer_key) {
            return Err(SdmmonError::CertificateInvalid);
        }
        let operator_key = bundle
            .certificate
            .subject_key()
            .map_err(|_| SdmmonError::CertificateInvalid)?;

        // SR4: only this router's private key can unwrap the fleet key.
        let sym_key = self
            .keys
            .private
            .decrypt(&bundle.wrapped_key)
            .map_err(|_| SdmmonError::WrongDevice)?;

        // SR3: decrypt each payload section; any damaged section fails the
        // whole install (the transport layer's per-section checksums exist
        // so it rarely gets this far with a bad section).
        let aes = Aes::new(&sym_key).map_err(|_| SdmmonError::DecryptionFailed)?;
        let mut payload = Vec::new();
        for section in &bundle.cipher_sections {
            payload.extend_from_slice(
                &aes.decrypt_cbc(section)
                    .map_err(|_| SdmmonError::DecryptionFailed)?,
            );
        }

        let ciphertext_bytes = bundle.cipher_sections.iter().map(Vec::len).sum();
        self.finish_install(
            &operator_key,
            &bundle.certificate,
            &payload,
            &bundle.signature,
            cores,
            ciphertext_bytes,
            bundle.transport_size(),
        )
    }

    /// The envelope-independent back half of an install: signature verify
    /// (SR1), package parse, anti-replay, graph parse, core programming,
    /// and the timing report. Shared by the v1 and v2 paths so the check
    /// ladder cannot drift between them.
    #[allow(clippy::too_many_arguments)]
    fn finish_install(
        &mut self,
        operator_key: &RsaPublicKey,
        certificate: &Certificate,
        payload: &[u8],
        signature: &[u8],
        cores: &[usize],
        ciphertext_bytes: usize,
        transport_bytes: usize,
    ) -> Result<InstallReport, SdmmonError> {
        // SR1: the payload must carry a valid operator signature.
        if !operator_key.verify(payload, signature) {
            return Err(SdmmonError::SignatureInvalid);
        }

        let package = Package::from_bytes(payload)
            .map_err(|e| SdmmonError::MalformedPackage(e.to_string()))?;
        // Anti-replay (reproduction extension): reject packages that do not
        // advance the device's sequence high-water mark — otherwise a
        // recorded old package (say, a binary later found vulnerable) could
        // be re-fed to the device and would verify perfectly.
        if package.sequence <= self.last_sequence {
            return Err(SdmmonError::ReplayedPackage {
                got: package.sequence,
                latest: self.last_sequence,
            });
        }
        let graph = MonitoringGraph::from_bytes(&package.graph)
            .map_err(|e| SdmmonError::MalformedPackage(e.to_string()))?;

        // Program the requested cores: binary + monitor(graph, param).
        let hash = MerkleTreeHash::with_compression(package.hash_param, package.compression);
        for &core in cores {
            let monitor = HardwareMonitor::new(graph.clone(), hash);
            self.np
                .install(core, &package.binary, package.base, Box::new(monitor));
            self.installed[core] = Some(InstalledApp {
                hash_param: package.hash_param,
                binary_bytes: package.binary.len(),
                graph_bytes: package.graph.len(),
            });
        }

        self.last_sequence = package.sequence;
        let m = &self.timing_model;
        let modulus_bits = self.keys.public.modulus_bits();
        let timing = InstallTiming {
            check_certificate: m.check_certificate(modulus_bits, certificate.to_bytes().len()),
            unwrap_key: m.rsa_private_op(modulus_bits),
            decrypt_package: m.aes_cbc(ciphertext_bytes),
            verify_signature: m.verify_signature(modulus_bits, payload.len()),
        };
        Ok(InstallReport {
            cores: cores.to_vec(),
            bundle_bytes: transport_bytes,
            package_bytes: payload.len(),
            timing,
        })
    }

    /// Processes a data-plane packet on the next round-robin core.
    ///
    /// # Panics
    ///
    /// Panics if the selected core has no installed program.
    pub fn process(&mut self, packet: &[u8]) -> (usize, PacketOutcome) {
        self.np.process(packet)
    }

    /// Processes a packet on a specific core.
    pub fn process_on(&mut self, core: usize, packet: &[u8]) -> PacketOutcome {
        self.np.process_on(core, packet)
    }

    /// Immutable access to one NP core (inspection in tests/benches).
    pub fn core(&self, core: usize) -> &sdmmon_npu::core::Core {
        self.np.core(core)
    }

    /// Mutable access to one NP core — the hook the fault-injection
    /// harness uses to flip bits in a live core's instruction memory.
    pub fn core_mut(&mut self, core: usize) -> &mut sdmmon_npu::core::Core {
        self.np.core_mut(core)
    }

    /// Forces a mid-run recovery reset of one core (fault-injection /
    /// operator-commanded recovery; counted as a recovery cycle).
    pub fn reset_core(&mut self, core: usize) {
        self.np.reset_core(core)
    }

    /// Replaces the NP's supervisor policy (escalating recovery — see
    /// `sdmmon_npu::supervisor`). Routers come up with the paper's
    /// reset-only recovery; the resilient deployment path enables the
    /// ladder.
    pub fn set_supervisor_policy(&mut self, policy: sdmmon_npu::supervisor::SupervisorPolicy) {
        self.np.set_policy(policy);
    }

    /// Whether the NP has quarantined a core out of dispatch.
    pub fn is_quarantined(&self, core: usize) -> bool {
        self.np.is_quarantined(core)
    }

    /// Quarantines a core by operator decree (reversed by installing a
    /// bundle on it).
    pub fn quarantine_core(&mut self, core: usize) {
        self.np.quarantine_core(core);
    }

    /// The supervisor ledger of one NP core.
    pub fn core_health(&self, core: usize) -> sdmmon_npu::supervisor::CoreHealth {
        self.np.core_health(core)
    }

    /// Indices of the cores still in dispatch.
    pub fn active_cores(&self) -> Vec<usize> {
        self.np.active_cores()
    }

    /// NP-wide statistics (violations, recoveries, forwarding counts).
    pub fn stats(&self) -> NpStats {
        self.np.stats()
    }

    /// Attaches (or detaches) a deterministic event bus to the NP — the
    /// `supervisor.*` / `np.batch` stream the frontier harness consumes.
    pub fn set_event_bus(&mut self, bus: Option<std::sync::Arc<sdmmon_obs::EventBus>>) {
        self.np.set_event_bus(bus);
    }

    /// Processes a batch on the NP's sharded engine, then executes any
    /// zeroize orders the graded supervisor issued during the batch: a
    /// zeroized core's installation record — including its wrapped secret
    /// hash parameter — is destroyed and the core decommissioned (fresh
    /// blank core, quarantined out of dispatch) until an operator installs
    /// a new bundle on it.
    pub fn process_batch(&mut self, packets: &[Vec<u8>]) -> Vec<(usize, PacketOutcome)> {
        let outcomes = self.np.process_batch(packets);
        for core in self.np.take_zeroize_orders() {
            self.installed[core] = None;
            self.np.decommission(core);
        }
        outcomes
    }

    /// The core a flow-dispatched packet would land on right now (the
    /// weighted table the graded supervisor maintains).
    pub fn dispatch_core(&self, packet: &[u8]) -> usize {
        self.np.core_for(packet)
    }

    /// Whether the graded supervisor has halved this core's dispatch share.
    pub fn is_throttled(&self, core: usize) -> bool {
        self.np.is_throttled(core)
    }

    /// Whether a zeroize escalation latched the device into lockdown
    /// (cleared when every zeroized core has been reinstalled).
    pub fn is_locked_down(&self) -> bool {
        self.np.is_locked_down()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdmmon_npu::programs::{self, testing};
    use sdmmon_npu::runtime::{HaltReason, Verdict};
    use sdmmon_rng::SeedableRng;

    const KEY_BITS: usize = 512; // small keys for fast tests; protocol is size-agnostic

    struct World {
        manufacturer: Manufacturer,
        operator: NetworkOperator,
        router: RouterDevice,
        rng: sdmmon_rng::StdRng,
    }

    fn world(seed: u64) -> World {
        let mut rng = sdmmon_rng::StdRng::seed_from_u64(seed);
        let manufacturer = Manufacturer::new("acme", KEY_BITS, &mut rng).unwrap();
        let mut operator = NetworkOperator::new("op-1", KEY_BITS, &mut rng).unwrap();
        operator.accept_certificate(manufacturer.certify_operator(operator.public_key(), "op-1"));
        let router = manufacturer
            .provision_router("r-1", 2, KEY_BITS, &mut rng)
            .unwrap();
        World {
            manufacturer,
            operator,
            router,
            rng,
        }
    }

    #[test]
    fn end_to_end_install_and_forward() {
        let mut w = world(1);
        let program = programs::ipv4_forward().unwrap();
        let bundle = w
            .operator
            .prepare_package(&program, w.router.public_key(), &mut w.rng)
            .unwrap();
        let report = w.router.install_bundle(&bundle, &[0, 1]).unwrap();
        assert_eq!(report.cores, vec![0, 1]);
        assert!(report.package_bytes > program.to_bytes().len());
        assert!(
            report.bundle_bytes > report.package_bytes,
            "envelope adds overhead"
        );
        let app = w.router.installed(0).unwrap().clone();
        assert_eq!(w.router.installed(1), Some(&app));

        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 3], 64, b"p");
        let (_, out) = w.router.process(&packet);
        assert_eq!(out.verdict, Verdict::Forward(3));
        assert_eq!(out.halt, HaltReason::Completed);
    }

    #[test]
    fn operator_without_certificate_cannot_package() {
        let mut rng = sdmmon_rng::StdRng::seed_from_u64(2);
        let operator = NetworkOperator::new("op", KEY_BITS, &mut rng).unwrap();
        let manufacturer = Manufacturer::new("m", KEY_BITS, &mut rng).unwrap();
        let router = manufacturer
            .provision_router("r", 1, KEY_BITS, &mut rng)
            .unwrap();
        let program = programs::ipv4_forward().unwrap();
        assert_eq!(
            operator
                .prepare_package(&program, router.public_key(), &mut rng)
                .unwrap_err(),
            SdmmonError::MissingCertificate
        );
    }

    #[test]
    fn sr1_uncertified_operator_rejected() {
        // An attacker with their own key pair and a self-made certificate
        // cannot get a package accepted.
        let mut w = world(3);
        let mut rng = sdmmon_rng::StdRng::seed_from_u64(99);
        let attacker_keys = RsaKeyPair::generate(KEY_BITS, &mut rng).unwrap();
        let mut attacker = NetworkOperator::new("evil", KEY_BITS, &mut rng).unwrap();
        // Self-signed "certificate": signed by the attacker, not the
        // manufacturer.
        attacker.accept_certificate(Certificate::issue(
            "evil",
            attacker.public_key(),
            &attacker_keys.private,
        ));
        let program = programs::ipv4_forward().unwrap();
        let bundle = attacker
            .prepare_package(&program, w.router.public_key(), &mut rng)
            .unwrap();
        assert_eq!(
            w.router.install_bundle(&bundle, &[0]).unwrap_err(),
            SdmmonError::CertificateInvalid
        );
    }

    #[test]
    fn sr1_tampered_payload_rejected() {
        let mut w = world(4);
        let program = programs::ipv4_forward().unwrap();
        let mut bundle = w
            .operator
            .prepare_package(&program, w.router.public_key(), &mut w.rng)
            .unwrap();
        // Flip a ciphertext bit: decryption either fails padding or yields
        // a payload whose signature no longer verifies.
        let mid = bundle.ciphertext.len() / 2;
        bundle.ciphertext[mid] ^= 0x01;
        let err = w.router.install_bundle(&bundle, &[0]).unwrap_err();
        assert!(
            matches!(
                err,
                SdmmonError::DecryptionFailed
                    | SdmmonError::SignatureInvalid
                    | SdmmonError::MalformedPackage(_)
            ),
            "{err}"
        );
        assert!(
            w.router.installed(0).is_none(),
            "nothing installed on failure"
        );
    }

    #[test]
    fn sr4_bundle_for_other_router_rejected() {
        let mut w = world(5);
        let other = w
            .manufacturer
            .provision_router("r-2", 1, KEY_BITS, &mut w.rng)
            .unwrap();
        let program = programs::ipv4_forward().unwrap();
        // Package built for the *other* router's key...
        let bundle = w
            .operator
            .prepare_package(&program, other.public_key(), &mut w.rng)
            .unwrap();
        // ...replayed to our router.
        assert_eq!(
            w.router.install_bundle(&bundle, &[0]).unwrap_err(),
            SdmmonError::WrongDevice
        );
    }

    #[test]
    fn sr2_fresh_parameter_per_package() {
        let mut w = world(6);
        let program = programs::ipv4_forward().unwrap();
        let b1 = w
            .operator
            .prepare_package(&program, w.router.public_key(), &mut w.rng)
            .unwrap();
        let b2 = w
            .operator
            .prepare_package(&program, w.router.public_key(), &mut w.rng)
            .unwrap();
        w.router.install_bundle(&b1, &[0]).unwrap();
        let p1 = w.router.installed(0).unwrap().hash_param;
        w.router.install_bundle(&b2, &[0]).unwrap();
        let p2 = w.router.installed(0).unwrap().hash_param;
        assert_ne!(p1, p2, "every package draws a fresh parameter");
    }

    #[test]
    fn sr3_bundle_is_confidential() {
        // The transported bundle must not contain the plaintext binary,
        // graph, or parameter.
        let mut w = world(7);
        let program = programs::ipv4_forward().unwrap();
        let bundle = w
            .operator
            .prepare_package(&program, w.router.public_key(), &mut w.rng)
            .unwrap();
        let transport = bundle.to_bytes();
        let binary = program.to_bytes();
        assert!(
            !contains_subslice(&transport, &binary[..16.min(binary.len())]),
            "binary prefix leaked in transport bytes"
        );
    }

    fn contains_subslice(haystack: &[u8], needle: &[u8]) -> bool {
        haystack.windows(needle.len()).any(|w| w == needle)
    }

    #[test]
    fn dynamic_reprogramming_switches_workloads() {
        // The "Dynamics" requirement: reprogram a core at runtime.
        let mut w = world(8);
        let fwd = programs::ipv4_forward().unwrap();
        let cm = programs::ipv4_cm().unwrap();
        let b1 = w
            .operator
            .prepare_package(&fwd, w.router.public_key(), &mut w.rng)
            .unwrap();
        w.router.install_bundle(&b1, &[0, 1]).unwrap();
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"");
        assert_eq!(w.router.process_on(0, &packet).verdict, Verdict::Forward(2));

        let b2 = w
            .operator
            .prepare_package(&cm, w.router.public_key(), &mut w.rng)
            .unwrap();
        w.router.install_bundle(&b2, &[0]).unwrap();
        assert_eq!(w.router.process_on(0, &packet).verdict, Verdict::Forward(2));
        assert!(
            w.router.installed(0).unwrap().binary_bytes
                != w.router.installed(1).unwrap().binary_bytes,
            "core 0 now runs the CM binary, core 1 the old one"
        );
    }

    #[test]
    fn attack_detected_after_secure_install() {
        // Full stack: securely installed vulnerable binary + monitor still
        // detects the data-plane attack and recovers.
        let mut w = world(9);
        let program = programs::vulnerable_forward().unwrap();
        let bundle = w
            .operator
            .prepare_package(&program, w.router.public_key(), &mut w.rng)
            .unwrap();
        w.router.install_bundle(&bundle, &[0, 1]).unwrap();
        let attack =
            testing::hijack_packet("li $t4, 0x0007fff0\nli $t5, 15\nsw $t5, 0($t4)\nbreak 0")
                .unwrap();
        let out = w.router.process_on(0, &attack);
        assert_eq!(out.verdict, Verdict::Drop);
        assert_eq!(out.halt, HaltReason::MonitorViolation);
        assert_eq!(w.router.stats().violations, 1);
        assert_eq!(w.router.stats().recoveries, 1);
        // Service continues.
        let good = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"");
        assert_eq!(w.router.process_on(0, &good).verdict, Verdict::Forward(2));
    }

    #[test]
    fn install_failure_is_atomic() {
        // Regression: a bundle that fails verification partway — here a
        // core list pointing past the device, checked after a prior good
        // install — must leave previously installed apps, monitor state,
        // and the anti-replay high-water mark untouched. No partial
        // install, full rollback semantics.
        let mut w = world(20);
        let program = programs::vulnerable_forward().unwrap();
        let good = w
            .operator
            .prepare_package(&program, w.router.public_key(), &mut w.rng)
            .unwrap();
        w.router.install_bundle(&good, &[0, 1]).unwrap();
        let before: Vec<Option<InstalledApp>> =
            (0..2).map(|c| w.router.installed(c).cloned()).collect();

        // Failure mode 1: bad core index (caught before programming).
        let next = w
            .operator
            .prepare_package(&program, w.router.public_key(), &mut w.rng)
            .unwrap();
        assert_eq!(
            w.router.install_bundle(&next, &[0, 7]).unwrap_err(),
            SdmmonError::NoSuchCore { core: 7, cores: 2 }
        );

        // Failure mode 2: tampered ciphertext (caught in verification).
        let mut tampered = w
            .operator
            .prepare_package(&program, w.router.public_key(), &mut w.rng)
            .unwrap();
        let mid = tampered.ciphertext.len() / 2;
        tampered.ciphertext[mid] ^= 0x80;
        assert!(w.router.install_bundle(&tampered, &[0, 1]).is_err());

        // Failure mode 3: replayed bundle (caught after decrypt).
        assert!(matches!(
            w.router.install_bundle(&good, &[0, 1]).unwrap_err(),
            SdmmonError::ReplayedPackage { .. }
        ));

        // The previously installed apps survive every failure unchanged...
        let after: Vec<Option<InstalledApp>> =
            (0..2).map(|c| w.router.installed(c).cloned()).collect();
        assert_eq!(
            before, after,
            "failed installs must not touch installed state"
        );
        // ...and the monitors still work: the hijack is still detected.
        let attack =
            testing::hijack_packet("li $t4, 0x0007fff0\nli $t5, 15\nsw $t5, 0($t4)\nbreak 0")
                .unwrap();
        assert_eq!(
            w.router.process_on(0, &attack).halt,
            HaltReason::MonitorViolation
        );
        // A fresh valid bundle still installs (sequence not burned by the
        // failures).
        let fresh = w
            .operator
            .prepare_package(&program, w.router.public_key(), &mut w.rng)
            .unwrap();
        w.router.install_bundle(&fresh, &[0, 1]).unwrap();
    }

    #[test]
    fn install_timing_reported() {
        let mut w = world(10);
        let program = programs::ipv4_forward().unwrap();
        let bundle = w
            .operator
            .prepare_package(&program, w.router.public_key(), &mut w.rng)
            .unwrap();
        let report = w.router.install_bundle(&bundle, &[0]).unwrap();
        // With the paper model, every step includes the ~3.2 s invocation
        // overhead; the RSA private op dominates at small payload sizes.
        let t = &report.timing;
        assert!(t.unwrap_key > t.check_certificate);
        assert!(t.total() > t.unwrap_key);
    }

    #[test]
    fn fleet_v1_and_v2_renderings_install_identically() {
        // The differential anchor: one FleetUpdate rendered as a v1
        // envelope and as a v2 TLV bundle must leave two identically
        // provisioned routers in byte-identical states.
        let mut w = world(20);
        let keys = RsaKeyPair::generate(KEY_BITS, &mut w.rng).unwrap();
        let mut r1 = w
            .manufacturer
            .provision_router_with_keys("twin", 2, keys.clone());
        let mut r2 = w.manufacturer.provision_router_with_keys("twin", 2, keys);
        let program = programs::ipv4_forward().unwrap();
        let update = w
            .operator
            .prepare_fleet_update(&program, &mut w.rng)
            .unwrap();
        let v1 = update.bundle_v1_for(r1.public_key(), &mut w.rng).unwrap();
        let v2 = update.bundle_v2_for(r2.public_key(), &mut w.rng).unwrap();
        let rep1 = r1.install_bundle(&v1, &[0, 1]).unwrap();
        let rep2 = r2.install_bundle_v2(&v2, &[0, 1]).unwrap();
        assert_eq!(rep1.package_bytes, rep2.package_bytes);
        for core in 0..2 {
            assert_eq!(r1.installed(core), r2.installed(core));
        }
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 4], 64, b"d");
        assert_eq!(r1.process_on(0, &packet), r2.process_on(0, &packet));
        assert_eq!(r1.stats(), r2.stats());
    }

    #[test]
    fn fleet_successor_changes_only_trailing_sections() {
        // A pure sequence bump re-encrypts to identical ciphertext for
        // every section except the last (the sequence lives at the end of
        // the package payload) — the delta-download foundation.
        let mut w = world(21);
        // A padded workload whose package payload spans several 4 KiB
        // sections (ipv4_forward alone fits in one).
        let mut source = String::from(
            "    li   $t4, 0x0007fff0\n    li   $t3, 2\n    sw   $t3, 0($t4)\n    break 0\npad:\n",
        );
        for i in 0..2400 {
            source.push_str(&format!("    .word {i}\n"));
        }
        let program = sdmmon_isa::asm::Assembler::new().assemble(&source).unwrap();
        let first = w
            .operator
            .prepare_fleet_update(&program, &mut w.rng)
            .unwrap();
        let second = w
            .operator
            .prepare_fleet_successor(&first, &program)
            .unwrap();
        assert!(second.sequence() > first.sequence());
        assert_eq!(first.hash_param(), second.hash_param());
        let a = first.cipher_sections();
        let b = second.cipher_sections();
        assert_eq!(a.len(), b.len());
        assert!(a.len() >= 2, "package should span multiple sections");
        assert_eq!(a[..a.len() - 1], b[..b.len() - 1], "shared prefix intact");
        assert_ne!(a.last(), b.last(), "sequence bump changes the tail");
    }

    #[test]
    fn fleet_v2_install_enforces_sr_ladder() {
        let program = programs::ipv4_forward().unwrap();
        // SR4: a v2 bundle keyed to another router is rejected.
        let mut w = world(22);
        let other = w
            .manufacturer
            .provision_router("r-other", 1, KEY_BITS, &mut w.rng)
            .unwrap();
        let update = w
            .operator
            .prepare_fleet_update(&program, &mut w.rng)
            .unwrap();
        let foreign = update
            .bundle_v2_for(other.public_key(), &mut w.rng)
            .unwrap();
        assert_eq!(
            w.router.install_bundle_v2(&foreign, &[0]).unwrap_err(),
            SdmmonError::WrongDevice
        );
        // SR1/SR3: a flipped ciphertext section is caught by the ladder.
        let mut tampered = update
            .bundle_v2_for(w.router.public_key(), &mut w.rng)
            .unwrap();
        tampered.cipher_sections[0][7] ^= 0x40;
        let err = w.router.install_bundle_v2(&tampered, &[0]).unwrap_err();
        assert!(
            matches!(
                err,
                SdmmonError::DecryptionFailed
                    | SdmmonError::SignatureInvalid
                    | SdmmonError::MalformedPackage(_)
            ),
            "{err}"
        );
        assert!(w.router.installed(0).is_none());
        // Clean install succeeds, then the same sequence replays → rejected.
        let good = update
            .bundle_v2_for(w.router.public_key(), &mut w.rng)
            .unwrap();
        w.router.install_bundle_v2(&good, &[0]).unwrap();
        assert!(matches!(
            w.router.install_bundle_v2(&good, &[0]).unwrap_err(),
            SdmmonError::ReplayedPackage { .. }
        ));
    }
}
