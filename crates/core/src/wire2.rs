//! Wire-format v2: the TLV installation bundle with per-section checksums.
//!
//! The v1 [`InstallationBundle`](crate::package::InstallationBundle) is one
//! opaque blob — a single flipped bit re-fetches the whole file, and two
//! consecutive fleet updates share no transport bytes even when only the
//! sequence number changed. Wire-format v2 restructures the same four
//! logical fields into a self-describing TLV document:
//!
//! ```text
//! offset 0   magic        "SDB2"                      (4 bytes)
//!        4   version      0x02                        (1 byte)
//!        5   count        number of sections          (u32 BE)
//!        9   table sum    FNV-1a 64 over the table    (u64 BE)
//!       17   table        count x { tag u8, len u32 BE, checksum u64 BE }
//!       ...  payloads     section bytes, concatenated in table order
//! ```
//!
//! Every section carries its own FNV-1a transport checksum in the table, so
//! a reader that already holds the 17-byte header plus table can fetch each
//! section independently (`DownloadClient::download_range`), verify it in
//! isolation, and re-fetch *only* a damaged section. The same checksums key
//! the delta path: a cache of `(tag, checksum) -> bytes` lets a fleet
//! upgrade skip every section whose table entry is unchanged since the
//! installed version.
//!
//! Section tags:
//!
//! | tag | name | contents |
//! |-----|------|----------|
//! | 1 | `cert` | the operator's manufacturer-issued certificate |
//! | 2 | `sig`  | operator signature over the plaintext payload (SR1) |
//! | 3 | `key`  | the AES package key, RSA-wrapped to one router (SR4) |
//! | 4 | `ciph` | one encrypted payload segment (IV-prefixed CBC, SR3) |
//!
//! `cert`, `sig`, and `ciph` are identical for every router in a fleet
//! update — only `key` is per-router. The hierarchical distribution layer
//! ([`crate::distrib`]) therefore publishes one shared document holding
//! `cert`/`sig`/`ciph` and one tiny per-router `key` document.
//!
//! v1 and v2 reject each other automatically: v2 opens with the `SDB2`
//! magic where v1 expects a `u32` length prefix (0x53444232 ≈ 1.4 GB, an
//! immediate truncation error), and v1 bytes fail the v2 magic check.

use crate::cert::Certificate;
use crate::wire::WireError;
use sdmmon_net::resilience::transport_checksum;

/// The four magic bytes opening every v2 document.
pub const BUNDLE_V2_MAGIC: [u8; 4] = *b"SDB2";
/// Format version carried after the magic.
pub const BUNDLE_V2_VERSION: u8 = 2;
/// Fixed header length: magic + version + count + table checksum.
pub const HEADER_LEN: usize = 4 + 1 + 4 + 8;
/// Bytes per section-table entry: tag + length + checksum.
pub const TABLE_ENTRY_LEN: usize = 1 + 4 + 8;
/// Upper bound on sections per document (sanity cap for hostile headers).
pub const MAX_SECTIONS: usize = 65_536;
/// Plaintext segment size the package payload is sliced into before
/// per-section encryption (each segment becomes one `ciph` section).
pub const SEGMENT_BYTES: usize = 4096;

/// Section type tags of wire-format v2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SectionTag {
    /// The operator's manufacturer-issued certificate.
    Certificate = 1,
    /// Operator signature over the plaintext payload (SR1).
    Signature = 2,
    /// The AES package key, RSA-wrapped to one router (SR4).
    WrappedKey = 3,
    /// One encrypted payload segment (IV-prefixed CBC, SR3).
    Ciphertext = 4,
}

impl SectionTag {
    /// Decodes a wire tag byte.
    pub fn from_id(id: u8) -> Option<SectionTag> {
        match id {
            1 => Some(SectionTag::Certificate),
            2 => Some(SectionTag::Signature),
            3 => Some(SectionTag::WrappedKey),
            4 => Some(SectionTag::Ciphertext),
            _ => None,
        }
    }

    /// The wire tag byte.
    pub fn id(self) -> u8 {
        self as u8
    }

    /// Short lowercase name used in events and error messages.
    pub fn name(self) -> &'static str {
        match self {
            SectionTag::Certificate => "cert",
            SectionTag::Signature => "sig",
            SectionTag::WrappedKey => "key",
            SectionTag::Ciphertext => "ciph",
        }
    }
}

/// One tagged section: the unit of fetch, verify, and cache reuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// What the bytes are.
    pub tag: SectionTag,
    /// The section payload.
    pub bytes: Vec<u8>,
}

impl Section {
    /// Creates a section.
    pub fn new(tag: SectionTag, bytes: Vec<u8>) -> Section {
        Section { tag, bytes }
    }

    /// The section's FNV-1a transport checksum (what the table carries).
    pub fn checksum(&self) -> u64 {
        transport_checksum(&self.bytes)
    }
}

/// A parsed section-table entry, with the payload offset resolved against
/// the document layout. This is all a delta-capable fetcher needs to decide
/// whether a cached copy is still current.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// The section's type tag.
    pub tag: SectionTag,
    /// Absolute byte offset of the payload within the document.
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
    /// FNV-1a transport checksum of the payload.
    pub checksum: u64,
}

/// An ordered TLV document: the transport container of wire-format v2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlvBundle {
    /// Sections in table (= payload) order.
    pub sections: Vec<Section>,
}

impl TlvBundle {
    /// Wraps sections into a document.
    pub fn new(sections: Vec<Section>) -> TlvBundle {
        TlvBundle { sections }
    }

    /// Byte offset where payloads start for a `count`-section document.
    pub fn payload_offset(count: usize) -> usize {
        HEADER_LEN + count * TABLE_ENTRY_LEN
    }

    /// The raw section-table bytes (everything between header and payloads).
    fn table_bytes(&self) -> Vec<u8> {
        let mut table = Vec::with_capacity(self.sections.len() * TABLE_ENTRY_LEN);
        for s in &self.sections {
            table.push(s.tag.id());
            table.extend_from_slice(&(s.bytes.len() as u32).to_be_bytes());
            table.extend_from_slice(&s.checksum().to_be_bytes());
        }
        table
    }

    /// Serializes the document: header, checksummed table, payloads.
    pub fn to_bytes(&self) -> Vec<u8> {
        let table = self.table_bytes();
        let payload: usize = self.sections.iter().map(|s| s.bytes.len()).sum();
        let mut out = Vec::with_capacity(HEADER_LEN + table.len() + payload);
        out.extend_from_slice(&BUNDLE_V2_MAGIC);
        out.push(BUNDLE_V2_VERSION);
        out.extend_from_slice(&(self.sections.len() as u32).to_be_bytes());
        out.extend_from_slice(&transport_checksum(&table).to_be_bytes());
        out.extend_from_slice(&table);
        for s in &self.sections {
            out.extend_from_slice(&s.bytes);
        }
        out
    }

    /// Validates the fixed header and returns the section count.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation, wrong magic (including any v1
    /// bundle), wrong version, or an implausible section count.
    pub fn parse_header(bytes: &[u8]) -> Result<usize, WireError> {
        if bytes.len() < HEADER_LEN {
            return Err(WireError::new(format!(
                "v2 header needs {HEADER_LEN} bytes, got {}",
                bytes.len()
            )));
        }
        if bytes[0..4] != BUNDLE_V2_MAGIC {
            return Err(WireError::new("not a wire-format-v2 document (bad magic)"));
        }
        if bytes[4] != BUNDLE_V2_VERSION {
            return Err(WireError::new(format!(
                "unsupported wire-format version {}",
                bytes[4]
            )));
        }
        let count = u32::from_be_bytes(bytes[5..9].try_into().expect("4 bytes")) as usize;
        if count == 0 || count > MAX_SECTIONS {
            return Err(WireError::new(format!("implausible section count {count}")));
        }
        Ok(count)
    }

    /// Parses and verifies the section table from a prefix holding at least
    /// header + table bytes, resolving each entry's payload offset.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on a bad header, a truncated table, a table
    /// checksum mismatch (the header's own integrity guard), an unknown
    /// tag, or a total length overflowing `u32`.
    pub fn parse_table(bytes: &[u8]) -> Result<Vec<SectionEntry>, WireError> {
        let count = TlvBundle::parse_header(bytes)?;
        let table_end = TlvBundle::payload_offset(count);
        if bytes.len() < table_end {
            return Err(WireError::new(format!(
                "section table needs {table_end} bytes, got {}",
                bytes.len()
            )));
        }
        let want = u64::from_be_bytes(bytes[9..17].try_into().expect("8 bytes"));
        let table = &bytes[HEADER_LEN..table_end];
        if transport_checksum(table) != want {
            return Err(WireError::new("section-table checksum mismatch"));
        }
        let mut entries = Vec::with_capacity(count);
        let mut offset = table_end;
        for i in 0..count {
            let e = &table[i * TABLE_ENTRY_LEN..(i + 1) * TABLE_ENTRY_LEN];
            let tag = SectionTag::from_id(e[0])
                .ok_or_else(|| WireError::new(format!("unknown section tag {}", e[0])))?;
            let len = u32::from_be_bytes(e[1..5].try_into().expect("4 bytes")) as usize;
            let checksum = u64::from_be_bytes(e[5..13].try_into().expect("8 bytes"));
            entries.push(SectionEntry {
                tag,
                offset,
                len,
                checksum,
            });
            offset = offset
                .checked_add(len)
                .ok_or_else(|| WireError::new("section lengths overflow"))?;
        }
        Ok(entries)
    }

    /// Parses a complete document, verifying every per-section checksum and
    /// rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on any structural fault or checksum mismatch;
    /// the message names the first damaged section.
    pub fn from_bytes(bytes: &[u8]) -> Result<TlvBundle, WireError> {
        let entries = TlvBundle::parse_table(bytes)?;
        let end = entries.last().map_or(HEADER_LEN, |e| e.offset + e.len);
        if bytes.len() != end {
            return Err(WireError::new(format!(
                "document is {} bytes, table describes {end}",
                bytes.len()
            )));
        }
        let mut sections = Vec::with_capacity(entries.len());
        for (i, e) in entries.iter().enumerate() {
            let payload = &bytes[e.offset..e.offset + e.len];
            if transport_checksum(payload) != e.checksum {
                return Err(WireError::new(format!(
                    "checksum mismatch in section {i} ({})",
                    e.tag.name()
                )));
            }
            sections.push(Section::new(e.tag, payload.to_vec()));
        }
        Ok(TlvBundle { sections })
    }
}

/// The v2 installation bundle: the same four logical fields as v1, carried
/// as TLV sections with the ciphertext split into independently-verifiable
/// segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleV2 {
    /// The operator's manufacturer-issued certificate.
    pub certificate: Certificate,
    /// Operator signature over the *plaintext* payload (SR1).
    pub signature: Vec<u8>,
    /// The AES key, RSA-encrypted to the target router (SR4).
    pub wrapped_key: Vec<u8>,
    /// IV-prefixed CBC ciphertext of each payload segment, in order (SR3).
    pub cipher_sections: Vec<Vec<u8>>,
}

impl BundleV2 {
    /// The canonical section order: `cert`, `sig`, `key`, then every
    /// `ciph` segment.
    pub fn sections(&self) -> Vec<Section> {
        let mut out = Vec::with_capacity(3 + self.cipher_sections.len());
        out.push(Section::new(
            SectionTag::Certificate,
            self.certificate.to_bytes(),
        ));
        out.push(Section::new(SectionTag::Signature, self.signature.clone()));
        out.push(Section::new(
            SectionTag::WrappedKey,
            self.wrapped_key.clone(),
        ));
        for seg in &self.cipher_sections {
            out.push(Section::new(SectionTag::Ciphertext, seg.clone()));
        }
        out
    }

    /// Serializes as a TLV document.
    pub fn to_bytes(&self) -> Vec<u8> {
        TlvBundle::new(self.sections()).to_bytes()
    }

    /// Total transport size in bytes (drives the download-time model).
    pub fn transport_size(&self) -> usize {
        TlvBundle::payload_offset(3 + self.cipher_sections.len())
            + self.certificate.to_bytes().len()
            + self.signature.len()
            + self.wrapped_key.len()
            + self.cipher_sections.iter().map(Vec::len).sum::<usize>()
    }

    /// Reassembles a bundle from sections in canonical order — the shared
    /// document's sections with the router's `key` section spliced in.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] unless the sections are exactly one `cert`,
    /// one `sig`, one `key`, then one or more `ciph`, in that order.
    pub fn from_sections(sections: &[Section]) -> Result<BundleV2, WireError> {
        let bad = |why: &str| WireError::new(format!("malformed v2 bundle: {why}"));
        if sections.len() < 4 {
            return Err(bad("fewer than four sections"));
        }
        if sections[0].tag != SectionTag::Certificate {
            return Err(bad("first section is not cert"));
        }
        if sections[1].tag != SectionTag::Signature {
            return Err(bad("second section is not sig"));
        }
        if sections[2].tag != SectionTag::WrappedKey {
            return Err(bad("third section is not key"));
        }
        let mut cipher_sections = Vec::with_capacity(sections.len() - 3);
        for s in &sections[3..] {
            if s.tag != SectionTag::Ciphertext {
                return Err(bad("non-ciph section after key"));
            }
            cipher_sections.push(s.bytes.clone());
        }
        Ok(BundleV2 {
            certificate: Certificate::from_bytes(&sections[0].bytes)?,
            signature: sections[1].bytes.clone(),
            wrapped_key: sections[2].bytes.clone(),
            cipher_sections,
        })
    }

    /// Parses a complete v2 document.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on any TLV fault, checksum mismatch, or
    /// non-canonical section layout.
    pub fn from_bytes(bytes: &[u8]) -> Result<BundleV2, WireError> {
        BundleV2::from_sections(&TlvBundle::from_bytes(bytes)?.sections)
    }

    /// Splices a router's `key` section into the fleet's shared sections
    /// (`cert`, `sig`, `ciph`…) to form the canonical bundle — the last
    /// step of a hierarchical fetch, where the shared document came from a
    /// relay cache and the wrapped key from a per-router fetch.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] unless `shared` is exactly one `cert`, one
    /// `sig`, then one or more `ciph`.
    pub fn assemble(shared: &[Section], wrapped_key: Vec<u8>) -> Result<BundleV2, WireError> {
        if shared.len() < 3 {
            return Err(WireError::new("shared document has too few sections"));
        }
        let mut sections = Vec::with_capacity(shared.len() + 1);
        sections.push(shared[0].clone());
        sections.push(shared[1].clone());
        sections.push(Section::new(SectionTag::WrappedKey, wrapped_key));
        sections.extend(shared[2..].iter().cloned());
        BundleV2::from_sections(&sections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdmmon_rng::{RngCore, SeedableRng, StdRng};

    fn random_sections(rng: &mut StdRng) -> Vec<Section> {
        let tags = [
            SectionTag::Certificate,
            SectionTag::Signature,
            SectionTag::WrappedKey,
            SectionTag::Ciphertext,
        ];
        let count = 1 + (rng.next_u32() as usize % 12);
        (0..count)
            .map(|_| {
                let tag = tags[rng.next_u32() as usize % tags.len()];
                let len = rng.next_u32() as usize % 9000; // includes 0
                let mut bytes = vec![0u8; len];
                rng.fill_bytes(&mut bytes);
                Section::new(tag, bytes)
            })
            .collect()
    }

    #[test]
    fn round_trip_random_layouts() {
        let mut rng = StdRng::seed_from_u64(0x7177);
        for _ in 0..50 {
            let doc = TlvBundle::new(random_sections(&mut rng));
            let bytes = doc.to_bytes();
            assert_eq!(TlvBundle::from_bytes(&bytes).unwrap(), doc);
            let entries = TlvBundle::parse_table(&bytes).unwrap();
            assert_eq!(entries.len(), doc.sections.len());
            for (e, s) in entries.iter().zip(&doc.sections) {
                assert_eq!(e.tag, s.tag);
                assert_eq!(e.len, s.bytes.len());
                assert_eq!(e.checksum, s.checksum());
                assert_eq!(&bytes[e.offset..e.offset + e.len], &s.bytes[..]);
            }
        }
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let mut rng = StdRng::seed_from_u64(0x7178);
        let doc = TlvBundle::new(vec![
            Section::new(SectionTag::Certificate, vec![1; 40]),
            Section::new(SectionTag::Ciphertext, vec![2; 64]),
        ]);
        let clean = doc.to_bytes();
        for _ in 0..64 {
            let mut bytes = clean.clone();
            let i = rng.next_u32() as usize % bytes.len();
            bytes[i] ^= 1 + (rng.next_u32() % 255) as u8;
            assert!(TlvBundle::from_bytes(&bytes).is_err(), "flip at {i}");
        }
    }

    #[test]
    fn truncated_and_padded_documents_rejected() {
        let doc = TlvBundle::new(vec![Section::new(SectionTag::Signature, vec![7; 32])]);
        let clean = doc.to_bytes();
        for cut in [0, 3, HEADER_LEN - 1, HEADER_LEN, clean.len() - 1] {
            assert!(TlvBundle::from_bytes(&clean[..cut]).is_err(), "cut {cut}");
        }
        let mut padded = clean;
        padded.push(0);
        assert!(TlvBundle::from_bytes(&padded).is_err());
    }

    #[test]
    fn zero_sections_and_unknown_tags_rejected() {
        let empty = TlvBundle::new(Vec::new()).to_bytes();
        assert!(TlvBundle::from_bytes(&empty).is_err());
        let mut doc = TlvBundle::new(vec![Section::new(SectionTag::WrappedKey, vec![1; 8])]);
        let mut bytes = doc.to_bytes();
        bytes[HEADER_LEN] = 99; // unknown tag in the table
        assert!(TlvBundle::from_bytes(&bytes).is_err());
        // Rewriting the tag *and* fixing the table checksum still fails:
        // from_id rejects 99 after the checksum passes.
        let table_start = HEADER_LEN;
        let table_end = TlvBundle::payload_offset(1);
        let sum = transport_checksum(&bytes[table_start..table_end]);
        bytes[9..17].copy_from_slice(&sum.to_be_bytes());
        assert!(TlvBundle::from_bytes(&bytes).is_err());
        doc.sections.clear();
        assert!(TlvBundle::from_bytes(&doc.to_bytes()).is_err());
    }
}
