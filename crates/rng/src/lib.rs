//! # sdmmon-rng — self-contained seedable randomness
//!
//! The reproduction originally pulled in the `rand` crate, which cannot be
//! fetched in the offline build environment. Everything the workspace needs
//! from it is small: a seedable deterministic generator plus a handful of
//! sampling helpers. This crate provides exactly that surface — trait names
//! mirror `rand` ([`RngCore`], [`SeedableRng`], [`Rng`]) so call sites read
//! identically — with **zero external dependencies**.
//!
//! The generator is xoshiro256** (Blackman & Vigna), seeded through
//! SplitMix64. It is a *simulation* RNG: statistically strong and fast, but
//! not cryptographically secure. That matches how the workspace uses
//! randomness — deterministic experiment seeds, test-vector generation, and
//! key-generation candidates inside a model whose attacker (AC3/AC4)
//! explicitly excludes entropy-source attacks.
//!
//! # Examples
//!
//! ```
//! use sdmmon_rng::{Rng, RngCore, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let a: u32 = rng.gen();
//! let d = rng.gen_range(0..10usize);
//! assert!(d < 10);
//! let mut again = StdRng::seed_from_u64(7);
//! assert_eq!(again.gen::<u32>(), a, "same seed, same stream");
//! ```

/// Core randomness source: a stream of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of one 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — used to expand seeds and derive sub-seeds.
///
/// This is the seed-derivation primitive the deterministic parallel fleet
/// deployment relies on: `split_seed(master, index)` gives every worker an
/// independent, reproducible stream regardless of scheduling order.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the `index`-th sub-seed of `master` (order-independent, so
/// parallel and serial consumers agree byte-for-byte).
pub fn split_seed(master: u64, index: u64) -> u64 {
    let mut s = master ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
    // Two rounds decorrelate adjacent indices thoroughly.
    let first = splitmix64(&mut s);
    let mut s2 = first ^ master.rotate_left(32);
    splitmix64(&mut s2)
}

/// The workspace's standard generator: xoshiro256**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zeros from any seed, but keep the guard for clarity.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, bound)` by rejection (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(bound: u64, rng: &mut R) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(width, rng) as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(width + 1, rng) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = StdRng::seed_from_u64(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256** from the canonical C code with
        // state {1, 2, 3, 4}.
        let mut r = StdRng { s: [1, 2, 3, 4] };
        let got: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        assert_eq!(got, [11520, 0, 1509978240u64]);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(1);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 16 {
                assert!(buf.iter().any(|&b| b != 0), "len {len}");
            }
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = r.gen_range(3..=5usize);
            assert!((3..=5).contains(&w));
            let s = r.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        StdRng::seed_from_u64(0).gen_range(5..5u32);
    }

    #[test]
    fn gen_bool_edges_and_rate() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn split_seed_is_order_independent_and_distinct() {
        let forward: Vec<u64> = (0..32).map(|i| split_seed(99, i)).collect();
        let backward: Vec<u64> = (0..32).rev().map(|i| split_seed(99, i)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        let mut unique = forward.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), forward.len(), "collisions in sub-seeds");
    }

    #[test]
    fn trait_object_usable() {
        let mut r = StdRng::seed_from_u64(5);
        let dynr: &mut dyn RngCore = &mut r;
        let mut buf = [0u8; 4];
        dynr.fill_bytes(&mut buf);
        let _ = dynr.next_u32();
    }
}
