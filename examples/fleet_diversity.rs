//! The homogeneity experiment (security requirement SR2): a fleet of
//! identical routers runs the same binary, but every router's monitor uses
//! its own secret hash parameter. An attacker who defeats ONE router's
//! monitor — here by mimicry against a leaked parameter — gains nothing
//! against the rest of the fleet.
//!
//! Also demonstrates the reproduction finding: with the paper's sum-mod-16
//! compression, hash collisions are parameter-independent and the attack
//! transfers to every router; the S-box compression restores diversity.
//!
//! Run with: `cargo run --release --example fleet_diversity`

use sdmmon::core::entities::{Manufacturer, NetworkOperator};
use sdmmon::core::system::{craft_evasive_hijack, Fleet};
use sdmmon::monitor::hash::Compression;
use sdmmon::npu::programs;
use sdmmon::npu::runtime::HaltReason;
use sdmmon_rng::SeedableRng;

const KEY_BITS: usize = 512; // key size is irrelevant to this experiment
const FLEET_SIZE: usize = 8;

fn run_fleet(compression: Compression) -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = sdmmon_rng::StdRng::seed_from_u64(77);
    let manufacturer = Manufacturer::new("acme", KEY_BITS, &mut rng)?;
    let mut operator = NetworkOperator::new("op", KEY_BITS, &mut rng)?;
    operator.accept_certificate(manufacturer.certify_operator(operator.public_key(), "op"));
    operator.set_compression(compression);

    let program = programs::vulnerable_forward()?;
    let mut fleet = Fleet::deploy(
        &manufacturer,
        &operator,
        &program,
        FLEET_SIZE,
        1,
        KEY_BITS,
        &mut rng,
    )?;
    println!("\n=== {compression:?} compression, {FLEET_SIZE} routers ===");
    println!(
        "per-router parameters: {:x?}",
        fleet
            .routers()
            .iter()
            .map(|r| r.installed(0).unwrap().hash_param)
            .collect::<Vec<_>>()
    );

    // The attacker has router 0's parameter (brute force / compromise) and
    // crafts a mimicry packet evading that monitor.
    let leaked = fleet.routers()[0].installed(0).unwrap().hash_param;
    let attack = craft_evasive_hijack(&program, leaked, compression)
        .expect("mimicry search succeeds given the parameter");
    println!(
        "crafted evading packet: port {}, {} padding instructions, {} search evaluations",
        attack.port, attack.nop_layers, attack.search_runs
    );

    let outcomes = fleet.broadcast(&attack.packet);
    let mut compromised = 0;
    for (i, out) in outcomes.iter().enumerate() {
        let status = match out.halt {
            HaltReason::Completed => {
                compromised += 1;
                "COMPROMISED (hijack completed undetected)"
            }
            HaltReason::MonitorViolation => "detected -> packet dropped, core reset",
            _ => "halted abnormally",
        };
        println!("  router-{i}: {status}");
    }
    println!("compromised: {compromised}/{FLEET_SIZE}");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The sound configuration: nonlinear compression, diversity holds.
    run_fleet(Compression::SBox)?;
    // The paper-faithful sum compression: collisions are parameter-
    // independent, so the mimicry packet transfers to the whole fleet —
    // the reproduction finding documented in EXPERIMENTS.md.
    run_fleet(Compression::SumMod16)?;
    Ok(())
}
