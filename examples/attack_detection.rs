//! The data-plane attack experiment: a stack-smashing packet hijacks a
//! vulnerable packet-processing binary (Chasaki & Wolf's attack class).
//! Without a monitor the hijack silently rewrites the route table; with
//! monitors, it is detected, the packet dropped, and the core recovered.
//!
//! Run with: `cargo run --example attack_detection`

use sdmmon::monitor::{HardwareMonitor, MerkleTreeHash, MonitoringGraph};
use sdmmon::npu::cpu::NullObserver;
use sdmmon::npu::np::NetworkProcessor;
use sdmmon::npu::{programs, runtime::Verdict};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = programs::vulnerable_forward()?;
    let image = program.to_bytes();

    // The attack: overflow the option-parsing stack buffer, overwrite the
    // return address, and run packet-resident code that rewrites the route
    // table so future packets to .2 go to the attacker's port 15.
    let route_table = program
        .symbol("route_table")
        .expect("workload exports its table");
    let attack = programs::testing::hijack_packet(&format!(
        "li $t4, 0x{route_table:x}
         li $t5, 15
         sw $t5, 8($t4)      # route_table[2] = 15
         break 0"
    ))?;
    let good = programs::testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"legit");

    // --- Unmonitored NP: the attack silently succeeds ---------------------
    let mut unprotected = NetworkProcessor::new(1);
    unprotected.install_all(&image, program.base, |_| Box::new(NullObserver));
    let (_, before) = unprotected.process(&good);
    unprotected.process(&attack);
    let (_, after) = unprotected.process(&good);
    println!("unmonitored NP:");
    println!("  before attack: packet to .2 -> {}", before.verdict);
    println!(
        "  after attack:  packet to .2 -> {}   <- hijacked!",
        after.verdict
    );
    assert_eq!(before.verdict, Verdict::Forward(2));
    assert_eq!(after.verdict, Verdict::Forward(15));

    // --- Monitored NP: detection, drop, recovery --------------------------
    let mut protected = NetworkProcessor::new(2);
    protected.install_all(&image, program.base, |core| {
        let hash = MerkleTreeHash::new(0xD1BE_0000 + core as u32);
        let graph = MonitoringGraph::extract(&program, &hash).expect("graph extracts");
        Box::new(HardwareMonitor::new(graph, hash))
    });
    protected.process(&good);
    let (core, outcome) = protected.process(&attack);
    println!("\nmonitored NP:");
    println!(
        "  attack on core {core}: {} ({})",
        outcome.verdict, outcome.halt
    );
    let (_, after) = protected.process(&good);
    let (_, after2) = protected.process(&good);
    println!(
        "  next packets to .2 -> {} / {}   <- service intact",
        after.verdict, after2.verdict
    );
    println!("  stats: {}", protected.stats());
    assert_eq!(outcome.verdict, Verdict::Drop);
    assert_eq!(after.verdict, Verdict::Forward(2));
    assert_eq!(after2.verdict, Verdict::Forward(2));
    assert_eq!(protected.stats().violations, 1);
    assert_eq!(protected.stats().recoveries, 1);
    Ok(())
}
