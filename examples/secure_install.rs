//! The full SDMMon secure-installation flow (Figures 2, 3, and 5 of the
//! paper), with the modelled Nios II timing of every security step —
//! the live version of Table 2.
//!
//! Run with: `cargo run --release --example secure_install`
//! (release recommended: RSA-2048 key generation runs in seconds there).

use sdmmon::core::entities::{Manufacturer, NetworkOperator};
use sdmmon::core::system::deploy;
use sdmmon::net::channel::{Channel, FileServer};
use sdmmon::npu::programs;
use sdmmon_rng::SeedableRng;

/// The paper uses RSA-2048; debug builds of the from-scratch bignum are
/// slow at that size, so scale down when unoptimized.
const KEY_BITS: usize = if cfg!(debug_assertions) { 512 } else { 2048 };

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = sdmmon_rng::StdRng::seed_from_u64(2014);

    // --- At manufacturing time -------------------------------------------
    println!("generating {KEY_BITS}-bit RSA keys for all three entities...");
    let manufacturer = Manufacturer::new("acme-networks", KEY_BITS, &mut rng)?;
    let mut router = manufacturer.provision_router("edge-router-7", 4, KEY_BITS, &mut rng)?;

    // --- At installation time --------------------------------------------
    let mut operator = NetworkOperator::new("backbone-op", KEY_BITS, &mut rng)?;
    operator
        .accept_certificate(manufacturer.certify_operator(operator.public_key(), "backbone-op"));
    println!("operator certified by manufacturer (chain of trust established)");

    // --- At programming time ---------------------------------------------
    // The operator packages the IPv4+CM workload (the binary the paper's
    // prototype installs), publishes it, and the router pulls + verifies.
    let program = programs::ipv4_cm()?;
    let mut server = FileServer::new();
    let channel = Channel::paper_testbed();
    let report = deploy(
        &operator,
        &program,
        &mut router,
        &[0, 1, 2, 3],
        &mut server,
        &channel,
        &mut rng,
    )?;

    println!(
        "\npackage: {} plaintext bytes, {} transport bytes",
        report.install.package_bytes, report.install.bundle_bytes
    );
    println!("\nmodelled control-processor timing (Nios II @ 100 MHz, cf. Table 2):");
    let t = &report.install.timing;
    let rows = [
        ("Download data from FTP server", report.download_time),
        (
            "Check manufacturer certificate of operator key",
            t.check_certificate,
        ),
        ("Decrypt AES key using router's private key", t.unwrap_key),
        ("Decrypt package with AES key", t.decrypt_package),
        (
            "Verify package signature with operator key",
            t.verify_signature,
        ),
    ];
    for (step, time) in rows {
        println!("  {step:<50} {:>8.2} s", time.as_secs_f64());
    }
    println!(
        "  {:<50} {:>8.2} s",
        "Total",
        report.total_time().as_secs_f64()
    );

    // --- At runtime --------------------------------------------------------
    let packet = programs::testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 5], 64, b"payload");
    let (core, outcome) = router.process(&packet);
    println!(
        "\nfirst packet processed on core {core}: {}",
        outcome.verdict
    );
    println!(
        "installed app: parameter 0x{:08x}, binary {} B, graph {} B",
        router.installed(0).unwrap().hash_param,
        router.installed(0).unwrap().binary_bytes,
        router.installed(0).unwrap().graph_bytes,
    );
    Ok(())
}
