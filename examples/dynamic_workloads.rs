//! The paper's "Dynamics" challenge, live: traffic shifts over time, a
//! workload manager reallocates NP cores proportionally to demand, and
//! every reassignment goes through the full SDMMon secure-installation
//! path — fresh hash parameter, signed + encrypted package — while the
//! data plane keeps forwarding under monitor protection.
//!
//! Run with: `cargo run --example dynamic_workloads`

use sdmmon::core::entities::{Manufacturer, NetworkOperator};
use sdmmon::core::workload::WorkloadManager;
use sdmmon::npu::programs::{self, testing};
use sdmmon::npu::runtime::Verdict;
use sdmmon_rng::SeedableRng;

const KEY_BITS: usize = 512;
const CORES: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = sdmmon_rng::StdRng::seed_from_u64(0xD1CE);
    let manufacturer = Manufacturer::new("acme", KEY_BITS, &mut rng)?;
    let mut operator = NetworkOperator::new("op", KEY_BITS, &mut rng)?;
    operator.accept_certificate(manufacturer.certify_operator(operator.public_key(), "op"));
    let mut router = manufacturer.provision_router("edge", CORES, KEY_BITS, &mut rng)?;

    let mut manager = WorkloadManager::new();
    manager.register("ipv4", programs::ipv4_forward()?)?;
    manager.register("ipv4cm", programs::ipv4_cm()?)?;

    // Three traffic epochs with shifting demand.
    let epochs = [
        ("all plain IPv4", 1000u64, 0u64),
        ("congestion builds: CM demand appears", 500, 500),
        ("CM dominates", 100, 900),
    ];
    for (label, ipv4_demand, cm_demand) in epochs {
        manager.decay_demand();
        manager.record_demand("ipv4", ipv4_demand)?;
        manager.record_demand("ipv4cm", cm_demand)?;
        let changes = manager.reconcile(&operator, &mut router, &mut rng)?;
        println!("epoch: {label}");
        println!("  demand ipv4={ipv4_demand} ipv4cm={cm_demand}");
        if changes.is_empty() {
            println!("  no reprogramming needed");
        }
        for (core, app) in &changes {
            println!("  core {core} securely reprogrammed -> {app} (fresh hash parameter)");
        }
        let alloc: Vec<&str> = manager
            .assignments()
            .iter()
            .map(|a| a.as_deref().unwrap_or("-"))
            .collect();
        println!("  allocation: {alloc:?}");

        // The data plane never stops.
        let packet = testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"data");
        for _ in 0..CORES {
            let (_core, out) = router.process(&packet);
            assert_eq!(out.verdict, Verdict::Forward(2));
        }
        println!(
            "  traffic check: {} packets forwarded, 0 violations\n",
            CORES
        );
    }
    println!("router stats: {}", router.stats());
    Ok(())
}
