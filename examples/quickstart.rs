//! Quickstart: a monitored network-processor core in ~40 lines.
//!
//! Assembles the IPv4 forwarding workload, extracts its monitoring graph
//! under a secret parameter, runs legitimate traffic, then corrupts the
//! installed binary and watches the monitor flag the deviation.
//!
//! Run with: `cargo run --example quickstart`

use sdmmon::monitor::{HardwareMonitor, MerkleTreeHash, MonitoringGraph};
use sdmmon::npu::{core::Core, programs, runtime::HaltReason};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Offline analysis: binary -> monitoring graph (Figure 1 of the
    //    paper). The 32-bit parameter would be secret in deployment.
    let program = programs::ipv4_forward()?;
    let hash = MerkleTreeHash::new(0x5eed_cafe);
    let graph = MonitoringGraph::extract(&program, &hash)?;
    println!(
        "workload: {} instructions, graph: {} nodes / {} bits (binary is {} bits)",
        program.words.len(),
        graph.len(),
        graph.compact_size_bits(),
        program.words.len() * 32,
    );

    // 2. Program a core and attach the monitor.
    let mut core = Core::new();
    core.install(&program.to_bytes(), program.base);
    let mut monitor = HardwareMonitor::new(graph, hash);

    // 3. Legitimate traffic passes.
    for dst in 1u8..=4 {
        let packet = programs::testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, dst], 64, b"data");
        let outcome = core.process_packet(&packet, &mut monitor);
        println!(
            "packet to .{dst}: {} after {} instructions",
            outcome.verdict, outcome.steps
        );
        assert_eq!(outcome.halt, HaltReason::Completed);
    }

    // 4. Corrupt one instruction of the installed binary (as an attack
    //    that modifies processor behaviour would) and process again.
    let word = core.memory().load_u32(12)?;
    core.memory_mut().store_u32(12, word ^ 1)?;
    let packet = programs::testing::ipv4_packet([10, 0, 0, 1], [10, 0, 0, 2], 64, b"data");
    let outcome = core.process_packet(&packet, &mut monitor);
    println!("after corruption: {} ({})", outcome.verdict, outcome.halt);
    assert_eq!(outcome.halt, HaltReason::MonitorViolation);

    // 5. Recovery: reset restores the pristine image.
    core.reset();
    let outcome = core.process_packet(&packet, &mut monitor);
    println!("after reset: {} ({})", outcome.verdict, outcome.halt);
    assert_eq!(outcome.halt, HaltReason::Completed);
    println!(
        "monitor checked {} instructions total",
        monitor.stats().instructions_checked
    );
    Ok(())
}
